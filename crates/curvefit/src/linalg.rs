//! Minimal dense linear algebra: just enough to solve the (small) normal
//! equations of a polynomial least-squares fit.

use crate::FitError;

/// Solve `A x = b` in place for a small dense system using Gaussian
/// elimination with partial pivoting.
///
/// `a` is row-major `n × n`, `b` has length `n`. Returns the solution
/// vector. The matrices here are (degree+1)² with degree ≤ 4, so numerical
/// sophistication beyond partial pivoting is unnecessary — but the inputs
/// are centered/scaled by the caller to keep the systems well conditioned.
pub fn solve_linear_system(a: &mut [f64], b: &mut [f64], n: usize) -> Result<Vec<f64>, FitError> {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    assert_eq!(b.len(), n, "rhs must be length n");

    for col in 0..n {
        // Partial pivot: find the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return Err(FitError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }

        // Eliminate below the pivot.
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn solves_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, -2.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        assert_close(x[0], 3.0);
        assert_close(x[1], -2.0);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // First pivot is zero: forces a row swap.
        let mut a = vec![0.0, 2.0, 3.0, 1.0];
        let mut b = vec![4.0, 5.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        // 3x + y = 5 ; 2y = 4 -> y = 2, x = 1.
        assert_close(x[0], 1.0);
        assert_close(x[1], 2.0);
    }

    #[test]
    fn solves_3x3() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] -> x = [6, 15, -23].
        let mut a = vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let mut b = vec![4.0, 5.0, 6.0];
        let x = solve_linear_system(&mut a, &mut b, 3).unwrap();
        assert_close(x[0], 6.0);
        assert_close(x[1], 15.0);
        assert_close(x[2], -23.0);
    }

    #[test]
    fn detects_singular_matrix() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        let mut b = vec![1.0, 2.0];
        assert_eq!(
            solve_linear_system(&mut a, &mut b, 2),
            Err(FitError::Singular)
        );
    }

    #[test]
    fn solves_1x1() {
        let mut a = vec![4.0];
        let mut b = vec![8.0];
        let x = solve_linear_system(&mut a, &mut b, 1).unwrap();
        assert_close(x[0], 2.0);
    }
}
