//! Polynomial representation and least-squares fitting.

use crate::linalg::solve_linear_system;
use crate::FitError;
use std::fmt;

/// A polynomial `c[0] + c[1]·x + c[2]·x² + …` over `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Construct from coefficients in ascending-power order.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "a polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// Coefficients in ascending-power order (`[intercept, linear, quad, …]`).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Polynomial degree (length − 1; trailing zeros are *not* trimmed, the
    /// degree reflects the fitted model, not the numerical result).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluate at every point of `xs`.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Coefficient of `x^k`, or 0 if beyond the stored degree.
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if first {
                match k {
                    0 => write!(f, "{c:.6e}")?,
                    1 => write!(f, "{c:.6e}·x")?,
                    _ => write!(f, "{c:.6e}·x^{k}")?,
                }
                first = false;
            } else {
                let sign = if c >= 0.0 { "+" } else { "-" };
                let mag = c.abs();
                match k {
                    0 => write!(f, " {sign} {mag:.6e}")?,
                    1 => write!(f, " {sign} {mag:.6e}·x")?,
                    _ => write!(f, " {sign} {mag:.6e}·x^{k}")?,
                }
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Fit a degree-`degree` polynomial to `(x, y)` by least squares.
///
/// Internally the x-values are centered and scaled to `[-1, 1]`-ish range
/// before forming the normal equations — for aircraft counts in the tens of
/// thousands, raw powers up to x⁴ would otherwise span ~18 orders of
/// magnitude and destroy the conditioning. The returned polynomial is mapped
/// back to the original x units.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Polynomial, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    let n = x.len();
    let m = degree + 1;
    if n < m {
        return Err(FitError::Underdetermined);
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }

    // Center/scale transform: u = (x - mean) / scale.
    let mean: f64 = x.iter().sum::<f64>() / n as f64;
    let scale = x
        .iter()
        .map(|&v| (v - mean).abs())
        .fold(0.0_f64, f64::max)
        .max(1e-30);
    let u: Vec<f64> = x.iter().map(|&v| (v - mean) / scale).collect();

    // Normal equations: (Vᵀ V) c = Vᵀ y, where V is the Vandermonde matrix
    // of `u`. Accumulate power sums directly to avoid materializing V.
    let mut power_sums = vec![0.0_f64; 2 * degree + 1];
    for &ui in &u {
        let mut p = 1.0;
        for s in power_sums.iter_mut() {
            *s += p;
            p *= ui;
        }
    }
    let mut rhs = vec![0.0_f64; m];
    for (ui, &yi) in u.iter().zip(y) {
        let mut p = 1.0;
        for r in rhs.iter_mut() {
            *r += p * yi;
            p *= ui;
        }
    }
    let mut a = vec![0.0_f64; m * m];
    for r in 0..m {
        for c in 0..m {
            a[r * m + c] = power_sums[r + c];
        }
    }

    let c_scaled = solve_linear_system(&mut a, &mut rhs, m)?;

    // Map coefficients of p(u) = Σ c_k u^k with u = (x - mean)/scale back to
    // powers of x by expanding the binomial. Degrees are ≤ 4 so the O(d²)
    // expansion is trivial.
    let mut coeffs = vec![0.0_f64; m];
    for (k, &ck) in c_scaled.iter().enumerate() {
        // ck * ((x - mean)/scale)^k = ck/scale^k * Σ_j C(k,j) x^j (-mean)^{k-j}
        let inv_scale_k = scale.powi(k as i32).recip();
        let mut binom = 1.0_f64; // C(k, 0)
        #[allow(clippy::needless_range_loop)] // binomial expansion over powers
        for j in 0..=k {
            if j > 0 {
                binom = binom * (k - j + 1) as f64 / j as f64;
            }
            coeffs[j] += ck * inv_scale_k * binom * (-mean).powi((k - j) as i32);
        }
    }

    Ok(Polynomial::new(coeffs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn fits_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v + 1.0).collect();
        let p = polyfit(&x, &y, 1).unwrap();
        assert_close(p.coeff(0), 1.0, 1e-9);
        assert_close(p.coeff(1), 2.5, 1e-9);
    }

    #[test]
    fn fits_exact_quadratic() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v * v - 3.0 * v + 7.0).collect();
        let p = polyfit(&x, &y, 2).unwrap();
        assert_close(p.coeff(0), 7.0, 1e-8);
        assert_close(p.coeff(1), -3.0, 1e-8);
        assert_close(p.coeff(2), 0.5, 1e-8);
    }

    #[test]
    fn fits_with_large_x_values() {
        // Aircraft-count-like domain: thousands to tens of thousands.
        let x: Vec<f64> = (1..=32).map(|i| (i * 1000) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1e-7 * v * v + 3e-3 * v + 0.2).collect();
        let p = polyfit(&x, &y, 2).unwrap();
        assert_close(p.coeff(2), 1e-7, 1e-6);
        assert_close(p.coeff(1), 3e-3, 1e-6);
        assert_close(p.coeff(0), 0.2, 1e-4);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic "noise" from a simple LCG so the test is stable.
        let mut state = 42u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.01
        };
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 4.0 * v + 2.0 + noise()).collect();
        let p = polyfit(&x, &y, 1).unwrap();
        assert_close(p.coeff(1), 4.0, 1e-3);
    }

    #[test]
    fn underdetermined_is_an_error() {
        assert_eq!(
            polyfit(&[1.0, 2.0], &[1.0, 2.0], 2),
            Err(FitError::Underdetermined)
        );
    }

    #[test]
    fn mismatched_lengths_error() {
        assert_eq!(
            polyfit(&[1.0], &[1.0, 2.0], 0),
            Err(FitError::LengthMismatch)
        );
    }

    #[test]
    fn nan_input_errors() {
        assert_eq!(
            polyfit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0], 1),
            Err(FitError::NonFinite)
        );
    }

    #[test]
    fn identical_x_is_singular_for_degree_one() {
        assert_eq!(
            polyfit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1),
            Err(FitError::Singular)
        );
    }

    #[test]
    fn horner_eval_matches_direct() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5]);
        for x in [-3.0, 0.0, 1.5, 10.0] {
            assert_close(p.eval(x), 1.0 - 2.0 * x + 0.5 * x * x, 1e-12);
        }
    }

    #[test]
    fn display_renders_terms() {
        let p = Polynomial::new(vec![1.0, 0.0, 2.0]);
        let s = p.to_string();
        assert!(s.contains("x^2"), "{s}");
        assert!(
            !s.contains("·x "),
            "zero linear term should be skipped: {s}"
        );
    }

    #[test]
    fn degree_zero_fits_mean() {
        let p = polyfit(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 30.0, 40.0], 0).unwrap();
        assert_close(p.coeff(0), 25.0, 1e-12);
    }
}
