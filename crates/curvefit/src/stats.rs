//! Goodness-of-fit statistics and the paper's linear-vs-quadratic judgement.

use crate::poly::{polyfit, Polynomial};
use crate::FitError;
use std::fmt;

/// MATLAB-style goodness-of-fit numbers for one fitted model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GoodnessOfFit {
    /// Sum of squared errors (residual sum of squares).
    pub sse: f64,
    /// Coefficient of determination, `1 - SSE/SST`.
    pub r_squared: f64,
    /// Degrees-of-freedom adjusted R².
    pub adj_r_squared: f64,
    /// Root mean squared error, `sqrt(SSE / (n - m))` (degrees-of-freedom
    /// normalized, as MATLAB reports it).
    pub rmse: f64,
}

impl GoodnessOfFit {
    /// Compute the statistics for predictions `yhat` of observations `y`
    /// from a model with `m` estimated coefficients.
    pub fn compute(y: &[f64], yhat: &[f64], m: usize) -> GoodnessOfFit {
        assert_eq!(y.len(), yhat.len());
        let n = y.len();
        assert!(n > 0);
        let mean = y.iter().sum::<f64>() / n as f64;
        let sse: f64 = y.iter().zip(yhat).map(|(&a, &b)| (a - b) * (a - b)).sum();
        let sst: f64 = y.iter().map(|&a| (a - mean) * (a - mean)).sum();
        let r_squared = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };
        let dof = n.saturating_sub(m);
        let adj_r_squared = if sst > 0.0 && dof > 0 && n > 1 {
            1.0 - (sse / dof as f64) / (sst / (n - 1) as f64)
        } else {
            r_squared
        };
        let rmse = if dof > 0 {
            (sse / dof as f64).sqrt()
        } else {
            0.0
        };
        GoodnessOfFit {
            sse,
            r_squared,
            adj_r_squared,
            rmse,
        }
    }
}

impl fmt::Display for GoodnessOfFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SSE={:.4e}  R²={:.6}  adjR²={:.6}  RMSE={:.4e}",
            self.sse, self.r_squared, self.adj_r_squared, self.rmse
        )
    }
}

/// A fitted polynomial together with its goodness-of-fit statistics.
#[derive(Clone, Debug)]
pub struct FitReport {
    /// The fitted polynomial (coefficients in original x units).
    pub poly: Polynomial,
    /// Goodness-of-fit numbers on the fitting data.
    pub gof: GoodnessOfFit,
}

impl fmt::Display for FitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f(x) = {}   [{}]", self.poly, self.gof)
    }
}

/// Fit a polynomial and compute its goodness of fit in one call.
pub fn fit_poly(x: &[f64], y: &[f64], degree: usize) -> Result<FitReport, FitError> {
    let poly = polyfit(x, y, degree)?;
    let yhat = poly.eval_many(x);
    let gof = GoodnessOfFit::compute(y, &yhat, degree + 1);
    Ok(FitReport { poly, gof })
}

/// The paper's verdict about the shape of a timing curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurveClass {
    /// Linear fit is adequate (quadratic adds nothing).
    Linear,
    /// Quadratic fits better, but the quadratic term contributes only a
    /// small fraction of the total over the sampled domain — the paper's
    /// "quadratic with a very small coefficient, i.e. near linear".
    NearLinearQuadratic,
    /// Quadratic fits better and its term is a substantial share of the
    /// curve over the sampled domain.
    Quadratic,
}

impl fmt::Display for CurveClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveClass::Linear => write!(f, "linear"),
            CurveClass::NearLinearQuadratic => write!(f, "near-linear (small quadratic term)"),
            CurveClass::Quadratic => write!(f, "quadratic"),
        }
    }
}

/// Classify a timing curve the way §6.2 of the paper does.
///
/// Fits linear and quadratic models. The quadratic model is preferred when
/// its adjusted R² improves on the linear one by more than a small margin;
/// in that case the quadratic-term share at the right edge of the domain
/// decides between "near-linear" (share < 25 %) and genuinely "quadratic".
/// Returns the class plus both fit reports so callers can print the same
/// four goodness-of-fit numbers the paper shows.
pub fn classify_curve(
    x: &[f64],
    y: &[f64],
) -> Result<(CurveClass, FitReport, FitReport), FitError> {
    let linear = fit_poly(x, y, 1)?;
    let quad = fit_poly(x, y, 2)?;

    let improvement = quad.gof.adj_r_squared - linear.gof.adj_r_squared;
    let class = if improvement <= 1e-4 {
        CurveClass::Linear
    } else {
        // Share of the quadratic term in the fitted value at max |x|.
        let xmax = x.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
        let quad_term = quad.poly.coeff(2) * xmax * xmax;
        let total = quad.poly.eval(xmax).abs().max(1e-30);
        if quad_term.abs() / total < 0.25 {
            CurveClass::NearLinearQuadratic
        } else {
            CurveClass::Quadratic
        }
    };
    Ok((class, linear, quad))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(state: &mut u64, amp: f64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * amp
    }

    #[test]
    fn perfect_fit_has_r2_one_and_zero_sse() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + 1.0).collect();
        let r = fit_poly(&x, &y, 1).unwrap();
        assert!(r.gof.sse < 1e-18);
        assert!((r.gof.r_squared - 1.0).abs() < 1e-12);
        assert!((r.gof.adj_r_squared - 1.0).abs() < 1e-12);
        assert!(r.gof.rmse < 1e-9);
    }

    #[test]
    fn gof_matches_hand_computation() {
        // y = [1, 2, 4], yhat = [1, 2, 3]: SSE = 1, mean = 7/3,
        // SST = (1-7/3)² + (2-7/3)² + (4-7/3)² = 16/9 + 1/9 + 25/9 = 42/9.
        let g = GoodnessOfFit::compute(&[1.0, 2.0, 4.0], &[1.0, 2.0, 3.0], 2);
        assert!((g.sse - 1.0).abs() < 1e-12);
        assert!((g.r_squared - (1.0 - 9.0 / 42.0)).abs() < 1e-12);
        // dof = 3 - 2 = 1, RMSE = sqrt(1/1) = 1.
        assert!((g.rmse - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classify_pure_line_as_linear() {
        let mut s = 7u64;
        let x: Vec<f64> = (1..=30).map(|i| (i * 500) as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 2e-3 * v + 0.5 + lcg_noise(&mut s, 1e-4))
            .collect();
        let (class, lin, _quad) = classify_curve(&x, &y).unwrap();
        assert_eq!(class, CurveClass::Linear);
        assert!(lin.gof.r_squared > 0.999);
    }

    #[test]
    fn classify_small_quadratic_as_near_linear() {
        // Quadratic contributes ~10% of the value at the right edge.
        let x: Vec<f64> = (1..=30).map(|i| (i * 1000) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1e-3 * v + 3.6e-9 * v * v).collect();
        let (class, _lin, quad) = classify_curve(&x, &y).unwrap();
        assert_eq!(class, CurveClass::NearLinearQuadratic);
        assert!(quad.poly.coeff(2) > 0.0);
    }

    #[test]
    fn classify_strong_quadratic() {
        let x: Vec<f64> = (1..=30).map(|i| (i * 1000) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1e-6 * v * v + 1e-3 * v).collect();
        let (class, ..) = classify_curve(&x, &y).unwrap();
        assert_eq!(class, CurveClass::Quadratic);
    }

    #[test]
    fn display_formats_report() {
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let y: Vec<f64> = x.to_vec();
        let r = fit_poly(&x, &y, 1).unwrap();
        let s = r.to_string();
        assert!(s.contains("R²="), "{s}");
        assert!(s.contains("f(x) = "), "{s}");
    }

    #[test]
    fn constant_y_yields_r2_one_by_convention() {
        let g = GoodnessOfFit::compute(&[5.0, 5.0, 5.0], &[5.0, 5.0, 5.0], 1);
        assert_eq!(g.r_squared, 1.0);
    }
}
