//! Least-squares curve fitting with MATLAB-style goodness-of-fit statistics.
//!
//! The reproduced paper examines its timing curves with MATLAB's curve-fitting
//! toolbox and reports four "goodness of fit" numbers per fit (SSE, R²,
//! adjusted R², RMSE), using them to argue that the NVIDIA timing curves are
//! linear or "quadratic with a very small quadratic coefficient". This crate
//! provides exactly that workflow:
//!
//! * [`polyfit`] — degree-d polynomial least squares (normal equations solved
//!   by Gaussian elimination with partial pivoting),
//! * [`GoodnessOfFit`] — SSE, R², adjusted R², RMSE,
//! * [`FitReport`] / [`fit_poly`] — a fit plus its statistics,
//! * [`classify_curve`] — the paper's linear-vs-quadratic judgement call,
//!   made reproducible: compares the two fits and checks whether the
//!   quadratic coefficient is "very small" relative to the linear term over
//!   the sampled domain.

//! # Example
//!
//! ```
//! use curvefit::{classify_curve, CurveClass};
//!
//! // A timing series with a tiny quadratic term, like the paper's GPUs.
//! let n: Vec<f64> = (1..=20).map(|i| (i * 1000) as f64).collect();
//! let ms: Vec<f64> = n.iter().map(|&v| 0.5 + 1e-3 * v + 2e-9 * v * v).collect();
//!
//! let (class, linear, quadratic) = classify_curve(&n, &ms).unwrap();
//! assert_eq!(class, CurveClass::NearLinearQuadratic);
//! assert!(quadratic.gof.r_squared >= linear.gof.r_squared);
//! ```

pub mod expfit;
pub mod linalg;
pub mod poly;
pub mod stats;

pub use expfit::{fit_exponential, ExpFitReport, Exponential};
pub use linalg::solve_linear_system;
pub use poly::{polyfit, Polynomial};
pub use stats::{classify_curve, fit_poly, CurveClass, FitReport, GoodnessOfFit};

/// Errors produced by the fitting routines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FitError {
    /// x and y slices differ in length.
    LengthMismatch,
    /// Fewer data points than coefficients to estimate.
    Underdetermined,
    /// The normal-equation matrix was singular (e.g. all x identical).
    Singular,
    /// Input contained a NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::LengthMismatch => write!(f, "x and y have different lengths"),
            FitError::Underdetermined => {
                write!(f, "not enough data points for the requested degree")
            }
            FitError::Singular => write!(f, "normal equations are singular"),
            FitError::NonFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for FitError {}
