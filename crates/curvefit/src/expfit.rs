//! Exponential model fitting.
//!
//! The paper asserts the multi-core timing curve "increases rapidly and
//! possibly exponentially in what is essentially certain to be an
//! exponential curve" [10]. To examine that claim quantitatively, this
//! module fits `y = a·exp(b·x)` by log-linear least squares and lets the
//! harness compare its goodness of fit against the polynomial models.

use crate::poly::polyfit;
use crate::stats::GoodnessOfFit;
use crate::FitError;
use std::fmt;

/// A fitted exponential `y = a·exp(b·x)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Scale factor `a` (> 0).
    pub a: f64,
    /// Growth rate `b` (per unit of x).
    pub b: f64,
}

impl Exponential {
    /// Evaluate at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * (self.b * x).exp()
    }

    /// The doubling interval `ln 2 / b` (infinite for non-growing fits).
    pub fn doubling_interval(&self) -> f64 {
        if self.b > 0.0 {
            std::f64::consts::LN_2 / self.b
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for Exponential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6e}·exp({:.6e}·x)", self.a, self.b)
    }
}

/// An exponential fit with its goodness of fit (computed in the original,
/// not the log, domain — comparable with the polynomial fits).
#[derive(Clone, Debug)]
pub struct ExpFitReport {
    /// The fitted model.
    pub model: Exponential,
    /// Goodness of fit on the original data.
    pub gof: GoodnessOfFit,
}

impl fmt::Display for ExpFitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f(x) = {}   [{}]", self.model, self.gof)
    }
}

/// Fit `y = a·exp(b·x)` by linear least squares on `ln y`.
///
/// Requires strictly positive `y` (timing data always is). Goodness of fit
/// is evaluated against the raw data so the numbers are directly
/// comparable with [`crate::fit_poly`] reports on the same series.
pub fn fit_exponential(x: &[f64], y: &[f64]) -> Result<ExpFitReport, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch);
    }
    if y.iter().any(|&v| v <= 0.0 || v.is_nan() || !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    let log_y: Vec<f64> = y.iter().map(|&v| v.ln()).collect();
    let line = polyfit(x, &log_y, 1)?;
    let model = Exponential {
        a: line.coeff(0).exp(),
        b: line.coeff(1),
    };
    let yhat: Vec<f64> = x.iter().map(|&v| model.eval(v)).collect();
    let gof = GoodnessOfFit::compute(y, &yhat, 2);
    Ok(ExpFitReport { model, gof })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_exponential() {
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 100.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * (0.002 * v).exp()).collect();
        let fit = fit_exponential(&x, &y).unwrap();
        assert!((fit.model.a - 2.5).abs() < 1e-6);
        assert!((fit.model.b - 0.002).abs() < 1e-9);
        assert!(fit.gof.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn doubling_interval_is_ln2_over_b() {
        let e = Exponential { a: 1.0, b: 0.01 };
        assert!((e.doubling_interval() - 69.31471805599453).abs() < 1e-9);
        let flat = Exponential { a: 1.0, b: 0.0 };
        assert!(flat.doubling_interval().is_infinite());
    }

    #[test]
    fn rejects_nonpositive_values() {
        assert_eq!(
            fit_exponential(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.0]).unwrap_err(),
            FitError::NonFinite
        );
        assert_eq!(
            fit_exponential(&[1.0, 2.0], &[1.0, -2.0]).unwrap_err(),
            FitError::NonFinite
        );
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            fit_exponential(&[1.0], &[1.0, 2.0]).unwrap_err(),
            FitError::LengthMismatch
        );
    }

    #[test]
    fn linear_data_fits_poly_better_than_exponential() {
        // A straight line with an offset: the polynomial wins on SSE.
        let x: Vec<f64> = (1..=20).map(|i| i as f64 * 500.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 10.0 + 0.01 * v).collect();
        let exp = fit_exponential(&x, &y).unwrap();
        let lin = crate::fit_poly(&x, &y, 1).unwrap();
        assert!(lin.gof.sse < exp.gof.sse);
    }

    #[test]
    fn display_shows_both_parameters() {
        let fit = fit_exponential(&[0.0, 1.0, 2.0, 3.0], &[1.0, 2.0, 4.0, 8.0]).unwrap();
        let s = fit.to_string();
        assert!(s.contains("exp("), "{s}");
        assert!(s.contains("R²="), "{s}");
    }
}
