//! The flight-record and radar-report data model.
//!
//! Field names and sentinel values follow §5 of the paper so the algorithms
//! read like its pseudocode. Positions are nautical miles on the 2-D
//! airfield plane; velocities are nautical miles **per half-second period**
//! (the paper divides per-hour values by 7200); time quantities in the
//! collision tasks are measured in periods.

/// Radar sentinel: the report has not matched any aircraft.
pub const RADAR_UNMATCHED: i32 = -1;
/// Radar sentinel: the report matched more than one aircraft and was
/// discarded.
pub const RADAR_DISCARDED: i32 = -2;

/// Aircraft correlation state: no radar has matched this aircraft yet.
pub const MATCH_NONE: i32 = 0;
/// Aircraft correlation state: exactly one radar has matched.
pub const MATCH_ONE: i32 = 1;
/// Aircraft correlation state: multiple radars matched; the aircraft is
/// dropped from correlation this period and keeps its expected position.
pub const MATCH_MULTIPLE: i32 = -1;

/// Collision sentinel: no colliding partner.
pub const NO_COLLISION: i32 = -1;

/// One aircraft's flight record (the paper's `drone` struct).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aircraft {
    /// Position east-west, nautical miles (±128 around the field center).
    pub x: f32,
    /// Position north-south, nautical miles.
    pub y: f32,
    /// Velocity along x, nm per period.
    pub dx: f32,
    /// Velocity along y, nm per period.
    pub dy: f32,
    /// Trial-path velocity along x during collision resolution (the
    /// paper's `batx`, named for Batcher's algorithm).
    pub batx: f32,
    /// Trial-path velocity along y during collision resolution.
    pub baty: f32,
    /// Altitude in feet.
    pub alt: f32,
    /// Whether a critical collision is currently anticipated (paper: `col`).
    pub col: bool,
    /// Periods until the earliest anticipated collision; initialized to the
    /// safe horizon each detection pass (paper: `time_till`, init 300).
    pub time_till: f32,
    /// Id of the aircraft this one is anticipated to collide with, or
    /// [`NO_COLLISION`] (paper: `colWith`).
    pub col_with: i32,
    /// Correlation state for the current tracking pass (paper: `rMatch`).
    pub r_match: i32,
    /// Expected position along x for the current period (`x + dx`).
    pub expected_x: f32,
    /// Expected position along y for the current period.
    pub expected_y: f32,
}

impl Aircraft {
    /// A parked aircraft at the origin (useful in tests).
    pub fn at(x: f32, y: f32) -> Aircraft {
        Aircraft {
            x,
            y,
            dx: 0.0,
            dy: 0.0,
            batx: 0.0,
            baty: 0.0,
            alt: 10_000.0,
            col: false,
            time_till: 0.0,
            col_with: NO_COLLISION,
            r_match: MATCH_NONE,
            expected_x: x,
            expected_y: y,
        }
    }

    /// Ground speed in nm per period.
    pub fn speed(&self) -> f32 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }

    /// Set velocity from nm-per-period components.
    pub fn with_velocity(mut self, dx: f32, dy: f32) -> Aircraft {
        self.dx = dx;
        self.dy = dy;
        self
    }

    /// Set altitude (feet).
    pub fn with_altitude(mut self, alt: f32) -> Aircraft {
        self.alt = alt;
        self
    }

    /// Bytes a device transfer of this record moves (the struct as a CUDA
    /// `float`/`int` record; padding-free packed size).
    pub const RECORD_BYTES: u64 = 13 * 4;

    /// Words the AP stages per record.
    pub const RECORD_WORDS: u32 = 13;
}

/// One simulated radar report (the paper's radar struct).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarReport {
    /// Reported position along x, nautical miles.
    pub rx: f32,
    /// Reported position along y, nautical miles.
    pub ry: f32,
    /// Id of the aircraft this report matched, or [`RADAR_UNMATCHED`] /
    /// [`RADAR_DISCARDED`] (paper: `rMatchWith`).
    pub r_match_with: i32,
}

impl RadarReport {
    /// A fresh, unmatched report at a position.
    pub fn at(rx: f32, ry: f32) -> RadarReport {
        RadarReport {
            rx,
            ry,
            r_match_with: RADAR_UNMATCHED,
        }
    }

    /// Whether the report still awaits a match.
    pub fn unmatched(&self) -> bool {
        self.r_match_with == RADAR_UNMATCHED
    }

    /// Whether the report matched a (single) aircraft.
    pub fn matched(&self) -> bool {
        self.r_match_with >= 0
    }

    /// Bytes a device transfer of this record moves.
    pub const RECORD_BYTES: u64 = 3 * 4;

    /// Words the AP stages per record.
    pub const RECORD_WORDS: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_aircraft_is_sane() {
        let a = Aircraft::at(3.0, -4.0);
        assert_eq!(a.x, 3.0);
        assert_eq!(a.y, -4.0);
        assert_eq!(a.speed(), 0.0);
        assert_eq!(a.col_with, NO_COLLISION);
        assert_eq!(a.r_match, MATCH_NONE);
    }

    #[test]
    fn speed_is_euclidean() {
        let a = Aircraft::at(0.0, 0.0).with_velocity(3.0, 4.0);
        assert!((a.speed() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn radar_state_predicates() {
        let mut r = RadarReport::at(1.0, 2.0);
        assert!(r.unmatched());
        assert!(!r.matched());
        r.r_match_with = 7;
        assert!(r.matched());
        r.r_match_with = RADAR_DISCARDED;
        assert!(!r.matched());
        assert!(!r.unmatched());
    }

    #[test]
    fn record_sizes_match_field_counts() {
        // 13 f32/i32 fields in Aircraft, 3 in RadarReport.
        assert_eq!(Aircraft::RECORD_BYTES, 52);
        assert_eq!(RadarReport::RECORD_BYTES, 12);
    }
}
