//! Sharded airfields: geographic partitioning of the fleet with a
//! cross-shard boundary (halo) scan and an exact parallel detect.
//!
//! The 256 nm × 256 nm field is cut into an S×S grid of shards
//! ([`AtmConfig::shards`]). Each aircraft is **owned** by exactly one shard
//! — the clamped floor cell of its position (the canonical shard-ownership
//! rule, so every aircraft is scanned by exactly one shard and straddling
//! pairs are examined exactly as often as in the unsharded pipeline). Each
//! shard additionally holds a **halo**: every foreign aircraft within the
//! critical-reach envelope of the shard's (measured) bounding box. A
//! shard-local scan over `own ∪ halo` therefore sees every aircraft that
//! could pass the pair gates against any of its owned aircraft
//! ([`ShardedIndex`]); the scan itself composes with every
//! [`crate::config::ScanMode`] by building the banded/grid index per shard.
//!
//! Like the banded and grid fast paths, sharding is a **wall-clock knob
//! only**: the sharded scan books skipped pairs in aggregate (DESIGN.md §8,
//! §9), so fleets, [`DetectStats`], booked op totals and every backend's
//! modeled time are bit-identical to the unsharded run — enforced by the
//! differential tests below, `tests/properties.rs` and `tests/golden.rs`.
//!
//! The wall-clock win comes from [`detect_resolve_parallel`]: an exact
//! parallelization of the sequential Tasks 2+3 cascade. The sequential
//! semantics are order-coupled (aircraft `i`'s scan must see the committed
//! velocities of aircraft `j < i` and the initial velocities of `j > i`),
//! but a turn's outcome can only depend on aircraft that pass the
//! position/altitude pair gates — and those are static during Tasks 2+3.
//! Building the gate-dependency DAG (edge `j → i` for `j < i` iff the pair
//! passes both gates) and processing aircraft in topological *waves* makes
//! every turn inside a wave a pure read of the live fleet: gate partners
//! are never in the same wave, so lower-indexed partners are already
//! committed and higher-indexed ones untouched, exactly as the sequential
//! cascade would present them. Wave members are grouped by owner shard and
//! fanned across worker threads; after each wave the resolved velocities
//! are committed serially, and a final serial replay applies all deferred
//! collision marks in the sequential write order — bit-for-bit.

use crate::airfield::Airfield;
use crate::batcher::{same_altitude_band, within_critical_reach};
use crate::config::{AtmConfig, ScanMode};
use crate::detect::{
    detect_resolve_all, rotate_velocity, scan_candidate_list_booked, AltitudeBands, ConflictGrid,
    DetectStats, IncrementalGrid, ScanResult,
};
use crate::track::{
    adopt_expected_phase, any_unmatched, apply_radar_phase, correlate_radar_pass,
    expected_position_phase, TrackStats,
};
use crate::types::{
    Aircraft, RadarReport, MATCH_MULTIPLE, MATCH_ONE, NO_COLLISION, RADAR_DISCARDED,
    RADAR_UNMATCHED,
};
use sim_clock::{CostSink, NullSink, OpCounter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The canonical shard-ownership rule: an S×S grid of equal cells over
/// `[-half_width, half_width]²`. An aircraft belongs to the clamped floor
/// cell of its position — a pure function of `(x, y)`, so ownership is
/// deterministic, total (non-finite coordinates fall into shard 0) and
/// unique: every aircraft is scanned by exactly one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    side: usize,
    half_width: f32,
    cell: f32,
}

impl ShardMap {
    /// An S×S map over a field of the given half-width.
    pub fn new(side: usize, half_width: f32) -> ShardMap {
        let side = side.max(1);
        ShardMap {
            side,
            half_width,
            cell: 2.0 * half_width / side as f32,
        }
    }

    fn axis(&self, v: f32) -> usize {
        if !v.is_finite() || self.cell.is_nan() || self.cell <= 0.0 {
            return 0;
        }
        let q = ((v + self.half_width) / self.cell).floor();
        if !q.is_finite() {
            return 0;
        }
        (q as i64).clamp(0, self.side as i64 - 1) as usize
    }

    /// Owner shard of a position (row-major cell id).
    pub fn shard_of(&self, x: f32, y: f32) -> usize {
        self.axis(y) * self.side + self.axis(x)
    }

    /// Cells per axis.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total shard count (`side²`).
    pub fn shard_count(&self) -> usize {
        self.side * self.side
    }

    /// Cell width, nm.
    pub fn cell_nm(&self) -> f32 {
        self.cell
    }
}

/// Per-shard candidate index: the shard's member list composed with the
/// scan-mode index built over the gathered member records.
#[derive(Clone, Debug)]
pub(crate) enum InnerIndex {
    /// [`ScanMode::Naive`]: every member is a candidate.
    All,
    /// [`ScanMode::Banded`]: altitude bands over the members.
    Banded(AltitudeBands),
    /// [`ScanMode::Grid`]: spatial grid × altitude bands over the members.
    Grid(ConflictGrid),
    /// [`ScanMode::Incremental`] under the stateless per-execution build: a
    /// fresh all-dirty incremental grid over the members,
    /// enumeration-equivalent to [`ScanMode::Grid`]. Cross-rescan
    /// persistence lives in [`crate::detect::IncrementalEngine`] /
    /// [`ShardedIncremental`], not here.
    Incremental(IncrementalGrid),
}

impl InnerIndex {
    /// Build the scan-mode index over one shard's gathered member records —
    /// the same build [`ShardedIndex::build`] performs in-process and a
    /// shard-worker process performs after a halo import. Identical record
    /// bits give identical indexes, which is what lets the serialized
    /// transport reproduce the in-process candidate supersets.
    pub(crate) fn build(recs: &[Aircraft], cfg: &AtmConfig) -> InnerIndex {
        match cfg.scan {
            ScanMode::Naive => InnerIndex::All,
            ScanMode::Banded => {
                InnerIndex::Banded(AltitudeBands::build(recs, cfg.alt_separation_ft))
            }
            ScanMode::Grid => InnerIndex::Grid(ConflictGrid::build(recs, cfg)),
            ScanMode::Incremental => InnerIndex::Incremental(IncrementalGrid::build(recs, cfg)),
        }
    }

    /// Local candidate ids (positions in the member list) for a track.
    pub(crate) fn candidates<'a>(
        &'a self,
        track: &'a Aircraft,
        n_local: usize,
    ) -> Box<dyn Iterator<Item = usize> + 'a> {
        match self {
            InnerIndex::All => Box::new(0..n_local),
            InnerIndex::Banded(b) => Box::new(b.candidates(track.alt)),
            InnerIndex::Grid(g) => Box::new(g.candidates(track)),
            InnerIndex::Incremental(g) => Box::new(g.candidates(track)),
        }
    }
}

/// One shard's slice of the fleet: owned aircraft plus the boundary halo.
#[derive(Clone, Debug)]
struct ShardCell {
    /// Global aircraft ids, ascending: the shard's owned aircraft plus
    /// every foreign aircraft within the padded critical-reach envelope of
    /// the shard's measured bounding box (the halo-export contract).
    members: Vec<u32>,
    /// Scan-mode index over the gathered member records; its candidate ids
    /// are *local* (positions in `members`).
    inner: InnerIndex,
}

/// The sharded candidate index: ownership map, per-aircraft owner, and one
/// [`ShardCell`] per shard. Built once per detect execution (positions and
/// altitudes never change during Tasks 2+3) by [`ScanIndex::for_config`]
/// when `cfg.shards > 1`.
///
/// Correctness (superset property): a gate-passing partner `j` of an
/// aircraft `i` owned by shard `s` satisfies `|Δx| ≤ reach ∧ |Δy| ≤ reach`;
/// `i` lies inside `s`'s measured bounding box, so `j` is within `reach` of
/// the box and the halo pad (`reach · (1 + 1e-6) + 1 nm`, dominating every
/// f32 rounding source in the gate's subtraction) admits it into
/// `members(s)`. The scan re-checks the real f32 gates per candidate, so a
/// generous halo can never change a result — only waste a visit.
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    map: ShardMap,
    /// Owner shard per aircraft.
    owner: Vec<u32>,
    cells: Vec<ShardCell>,
}

impl ShardedIndex {
    /// Build the index for one detect execution.
    pub fn build(aircraft: &[Aircraft], cfg: &AtmConfig) -> ShardedIndex {
        let map = ShardMap::new(cfg.shards, cfg.half_width);
        let n = aircraft.len();
        let shard_count = map.shard_count();
        let owner: Vec<u32> = aircraft
            .iter()
            .map(|a| map.shard_of(a.x, a.y) as u32)
            .collect();

        let reach = cfg.critical_reach_nm();
        let finite =
            reach.is_finite() && aircraft.iter().all(|a| a.x.is_finite() && a.y.is_finite());

        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        if finite {
            // Measured bounding box of each shard's owned aircraft
            // [lo_x, hi_x, lo_y, hi_y]; `None` for empty shards (which own
            // nothing and therefore never scan).
            let mut boxes: Vec<Option<[f32; 4]>> = vec![None; shard_count];
            for (i, a) in aircraft.iter().enumerate() {
                let b = boxes[owner[i] as usize].get_or_insert([a.x, a.x, a.y, a.y]);
                b[0] = b[0].min(a.x);
                b[1] = b[1].max(a.x);
                b[2] = b[2].min(a.y);
                b[3] = b[3].max(a.y);
            }
            let pad = reach * 1.000_001 + 1.0;
            for (t, bx) in boxes.iter().enumerate() {
                let Some(b) = bx else { continue };
                for (j, a) in aircraft.iter().enumerate() {
                    // Distance from the aircraft to the box, per axis.
                    let ex = (b[0] - a.x).max(a.x - b[1]).max(0.0);
                    let ey = (b[2] - a.y).max(a.y - b[3]).max(0.0);
                    if ex <= pad && ey <= pad {
                        members[t].push(j as u32);
                    }
                }
            }
        } else {
            // Degenerate geometry: every shard sees the whole fleet
            // (correct at unsharded cost, the same fallback posture as the
            // banded/grid indexes).
            for m in &mut members {
                *m = (0..n as u32).collect();
            }
        }

        let cells = members
            .into_iter()
            .map(|mem| {
                let recs: Vec<Aircraft> = mem.iter().map(|&j| aircraft[j as usize]).collect();
                let inner = InnerIndex::build(&recs, cfg);
                ShardCell {
                    members: mem,
                    inner,
                }
            })
            .collect();

        ShardedIndex { map, owner, cells }
    }

    /// The ownership map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Owner shard of aircraft `i`.
    pub fn owner_of(&self, i: usize) -> usize {
        self.owner[i] as usize
    }

    /// Total shard count.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Member ids (owned + halo, ascending) of one shard.
    pub fn members(&self, shard: usize) -> &[u32] {
        &self.cells[shard].members
    }

    /// Global candidate ids for track aircraft `i` (scanned by its owner
    /// shard): a superset of every aircraft that could pass both pair gates
    /// against `track` — callers re-check the real f32 gates. Used by the
    /// sharded scan and by the AP backend's candidate masks.
    pub fn candidates_for<'a>(
        &'a self,
        i: usize,
        track: &'a Aircraft,
    ) -> Box<dyn Iterator<Item = usize> + 'a> {
        let cell = &self.cells[self.owner[i] as usize];
        Box::new(
            cell.inner
                .candidates(track, cell.members.len())
                .map(move |l| cell.members[l] as usize),
        )
    }

    /// Halo size of one shard (members that are not owned by it).
    pub fn halo_len(&self, shard: usize) -> usize {
        self.cells[shard]
            .members
            .iter()
            .filter(|&&j| self.owner[j as usize] as usize != shard)
            .count()
    }
}

/// One shard's persistent slice under [`ShardedIncremental`]: the member
/// list, the gathered member records of the current rescan, and an inner
/// [`IncrementalGrid`] kept alive over those records.
#[derive(Debug, Default)]
struct IncShardCell {
    /// Global aircraft ids, ascending (owned + halo).
    members: Vec<u32>,
    /// Member records regathered each rescan (altitude and velocity bits
    /// can change without the position moving).
    recs: Vec<Aircraft>,
    /// Incremental grid over `recs`; candidate ids are *local* (positions
    /// in `members`).
    inner: IncrementalGrid,
}

/// The halo-export contract of [`ShardedIndex`] kept alive across rescans,
/// for [`crate::detect::IncrementalEngine`] under `cfg.shards > 1`.
///
/// Ownership and the measured per-shard bounding boxes are refreshed every
/// rescan (a departing aircraft can shrink a box, so there is no cheaper
/// exact maintenance), but a shard's **membership** is recomputed from
/// scratch only when its bounding-box *bits* move; while a box holds still,
/// only aircraft whose position bits changed are re-tested against the
/// padded box and spliced in or out. Inside each shard an
/// [`IncrementalGrid`] moves members between cells incrementally.
///
/// Membership is thereby maintained as the exact pure function of the
/// current boxes and positions that [`ShardedIndex::build`] computes, so
/// the superset argument — and with it bit-identity of every scan output —
/// carries over verbatim.
#[derive(Debug, Default)]
pub struct ShardedIncremental {
    map: Option<ShardMap>,
    /// Owner shard per aircraft.
    owner: Vec<u32>,
    /// Position bits per aircraft at last sighting.
    pos: Vec<[u32; 2]>,
    /// Measured bounding box per shard (`[lo_x, hi_x, lo_y, hi_y]`; `None`
    /// for shards that own nothing, which never scan).
    boxes: Vec<Option<[f32; 4]>>,
    cells: Vec<IncShardCell>,
    /// Degenerate geometry (non-finite reach or position): every shard
    /// holds the whole fleet, the same fallback posture as
    /// [`ShardedIndex::build`].
    degenerate: bool,
}

impl ShardedIncremental {
    /// An empty enumerator; the first [`ShardedIncremental::update`]
    /// populates it.
    pub fn new() -> ShardedIncremental {
        ShardedIncremental::default()
    }

    /// Bring ownership, boxes, membership and the per-shard inner grids up
    /// to date for this rescan's fleet snapshot.
    pub fn update(&mut self, aircraft: &[Aircraft], cfg: &AtmConfig) {
        let n = aircraft.len();
        let map = ShardMap::new(cfg.shards, cfg.half_width);
        let shard_count = map.shard_count();
        let fresh = self.owner.len() != n
            || self.map.is_none_or(|m| {
                m.side() != map.side() || m.cell_nm().to_bits() != map.cell_nm().to_bits()
            });
        self.map = Some(map);

        // Owners: recomputed only for aircraft whose position bits moved.
        let mut moved: Vec<u32> = Vec::new();
        if fresh {
            self.owner.clear();
            self.owner
                .extend(aircraft.iter().map(|a| map.shard_of(a.x, a.y) as u32));
            self.pos.clear();
            self.pos
                .extend(aircraft.iter().map(|a| [a.x.to_bits(), a.y.to_bits()]));
        } else {
            for (i, a) in aircraft.iter().enumerate() {
                let p = [a.x.to_bits(), a.y.to_bits()];
                if p != self.pos[i] {
                    self.pos[i] = p;
                    self.owner[i] = map.shard_of(a.x, a.y) as u32;
                    moved.push(i as u32);
                }
            }
        }

        let reach = cfg.critical_reach_nm();
        let finite =
            reach.is_finite() && aircraft.iter().all(|a| a.x.is_finite() && a.y.is_finite());
        let mut boxes: Vec<Option<[f32; 4]>> = vec![None; shard_count];
        if finite {
            for (i, a) in aircraft.iter().enumerate() {
                let b = boxes[self.owner[i] as usize].get_or_insert([a.x, a.x, a.y, a.y]);
                b[0] = b[0].min(a.x);
                b[1] = b[1].max(a.x);
                b[2] = b[2].min(a.y);
                b[3] = b[3].max(a.y);
            }
        }
        let was_degenerate = std::mem::replace(&mut self.degenerate, !finite);
        let boxes_were = std::mem::replace(&mut self.boxes, boxes);
        self.cells.truncate(shard_count);
        self.cells.resize_with(shard_count, IncShardCell::default);

        let pad = reach * 1.000_001 + 1.0;
        let box_bits = |b: &Option<[f32; 4]>| b.map(|b| b.map(f32::to_bits));
        for t in 0..shard_count {
            let cell = &mut self.cells[t];
            let box_moved =
                box_bits(boxes_were.get(t).unwrap_or(&None)) != box_bits(&self.boxes[t]);
            let re_export = fresh || was_degenerate != self.degenerate || box_moved;
            if !finite {
                if re_export {
                    cell.members.clear();
                    cell.members.extend(0..n as u32);
                }
            } else if re_export {
                // Full halo re-export against the moved box.
                cell.members.clear();
                if let Some(b) = self.boxes[t] {
                    for (j, a) in aircraft.iter().enumerate() {
                        let ex = (b[0] - a.x).max(a.x - b[1]).max(0.0);
                        let ey = (b[2] - a.y).max(a.y - b[3]).max(0.0);
                        if ex <= pad && ey <= pad {
                            cell.members.push(j as u32);
                        }
                    }
                }
            } else if let Some(b) = self.boxes[t] {
                // Box bits unchanged: only moved aircraft can cross the
                // membership predicate.
                for &j in &moved {
                    let a = &aircraft[j as usize];
                    let ex = (b[0] - a.x).max(a.x - b[1]).max(0.0);
                    let ey = (b[2] - a.y).max(a.y - b[3]).max(0.0);
                    let inside = ex <= pad && ey <= pad;
                    match (cell.members.binary_search(&j), inside) {
                        (Ok(_), true) | (Err(_), false) => {}
                        (Ok(at), false) => {
                            cell.members.remove(at);
                        }
                        (Err(at), true) => {
                            cell.members.insert(at, j);
                        }
                    }
                }
            }

            cell.recs.clear();
            cell.recs
                .extend(cell.members.iter().map(|&j| aircraft[j as usize]));
            cell.inner.update(&cell.recs, cfg);
        }
    }

    /// Global candidate ids for track aircraft `i` (scanned by its owner
    /// shard) gathered into a reusable buffer: the same gate-passer
    /// superset [`ShardedIndex::candidates_for`] enumerates.
    pub fn candidates_into(&self, i: usize, track: &Aircraft, out: &mut Vec<u32>) {
        out.clear();
        let cell = &self.cells[self.owner[i] as usize];
        for l in cell.inner.candidates(track) {
            out.push(cell.members[l]);
        }
    }
}

/// How one aircraft's fused Tasks 2+3 turn ended.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TurnOutcome {
    /// No critical conflict on the committed path: only the horizon reset
    /// is written; incoming collision marks are preserved.
    Clean,
    /// A conflict-free trial path was committed (`chk > 0`).
    Resolved {
        /// The committed trial velocity.
        vel: (f32, f32),
    },
    /// The rotation sequence was exhausted: original path kept, conflict
    /// left flagged with the last partner.
    Unresolved {
        /// The last critical partner (global id).
        partner: u32,
        /// Its conflict-start time.
        tmin: f32,
    },
}

/// The condensed effect of one aircraft's turn, recorded by the read-only
/// simulation [`simulate_turn_scanned`] and applied by the coordinator's
/// serial replay: partner marks in scan order, the turn outcome, and the
/// turn's stats and booked op totals. All ids are global, so a record is
/// meaningful outside the shard that produced it — the unit the wire
/// codec's `turns` frames carry between processes.
#[derive(Clone, Debug, PartialEq)]
pub struct TurnRecord {
    /// `(partner, tmin)` per critical conflict, in encounter order.
    pub events: Vec<(u32, f32)>,
    /// How the turn ended.
    pub outcome: TurnOutcome,
    /// The turn's detect stats.
    pub stats: DetectStats,
    /// The op totals the turn booked.
    pub ops: OpCounter,
}

/// Read-only mirror of [`crate::detect::check_collision_path_scanned`]:
/// runs one aircraft's full rotation-loop turn with committed velocity
/// `base` against a caller-supplied scanner, recording every write it
/// *would* perform instead of mutating. Bookings (stores, branches, scans,
/// rotations) follow the mutating routine call-for-call, so the merged
/// per-turn [`OpCounter`]s total exactly what the sequential cascade books.
///
/// `scan` must return what [`crate::detect::scan_pairs`] would for the same
/// `(track, vel)` — the in-process transport scans the live fleet through
/// the sharded index, a shard-worker process scans its imported member
/// records ([`crate::detect::scan_member_list_booked`]). Sound inside a
/// wave because a turn reads only static fields (positions, altitudes) plus
/// the velocities of its *gate passers* — and gate passers are never in the
/// same wave.
pub fn simulate_turn_scanned(
    base: (f32, f32),
    cfg: &AtmConfig,
    mut scan: impl FnMut((f32, f32), &mut OpCounter) -> ScanResult,
) -> TurnRecord {
    let mut ops = OpCounter::new();
    let mut stats = DetectStats::default();
    let mut events: Vec<(u32, f32)> = Vec::new();

    // Horizon reset (deferred write): time_till, batx, baty.
    ops.store(12);

    let rotations = cfg.rotation_sequence();
    let mut next_rotation = 0usize;
    let mut vel = base;
    let mut chk = 0u32;

    loop {
        let scan = scan(vel, &mut ops);
        stats.pair_checks += scan.checks;

        let Some((partner, tmin)) = scan.critical else {
            break;
        };
        stats.critical_conflicts += 1;

        // Mark both aircraft (deferred).
        events.push((partner as u32, tmin));
        ops.store(24);

        ops.branch(false);
        if next_rotation >= rotations.len() {
            stats.unresolved += 1;
            ops.store(8);
            return TurnRecord {
                events,
                outcome: TurnOutcome::Unresolved {
                    partner: partner as u32,
                    tmin,
                },
                stats,
                ops,
            };
        }

        vel = rotate_velocity(base, rotations[next_rotation], &mut ops);
        next_rotation += 1;
        chk += 1;
        stats.rotations += 1;
        ops.store(8);
    }

    ops.branch(false);
    let outcome = if chk > 0 {
        ops.store(20);
        stats.resolved += 1;
        TurnOutcome::Resolved { vel }
    } else {
        TurnOutcome::Clean
    };
    TurnRecord {
        events,
        outcome,
        stats,
        ops,
    }
}

/// One aircraft's read-only turn against the live fleet through the sharded
/// index: the in-process scanner. Candidates are gathered once per turn —
/// they depend only on the track's position and altitude, which are static
/// across the rotation rescans — and every rescan books the full aggregate
/// mix via [`scan_candidate_list_booked`], exactly as the sequential
/// cascade's pruning scan does.
fn turn_for(fleet: &[Aircraft], index: &ShardedIndex, i: usize, cfg: &AtmConfig) -> TurnRecord {
    let track = &fleet[i];
    let cands: Vec<u32> = index.candidates_for(i, track).map(|p| p as u32).collect();
    simulate_turn_scanned((track.dx, track.dy), cfg, |vel, ops| {
        scan_candidate_list_booked(fleet, i, vel, cfg, &cands, ops)
    })
}

/// A transport-layer failure: the only error the halo-exchange seam can
/// surface. In-process transports never fail; socket transports wrap every
/// I/O and protocol error in one of these, tagged with the shard link it
/// happened on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError {
    msg: String,
}

impl TransportError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> TransportError {
        TransportError { msg: msg.into() }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TransportError {}

/// One wave's work for one shard: `(owner shard, aircraft ids ascending)` —
/// the unit a worker (thread or process) claims.
pub type WaveGroup = (u32, Vec<u32>);

/// The halo-exchange seam of the parallel detect: who simulates a wave's
/// turns and how halo exports, wave hand-offs and resolved-velocity commits
/// travel. [`detect_resolve_via_transport`] drives the same wave schedule
/// and serial replay through any implementation, so the transport choice —
/// in-process threads ([`InProcessTransport`]) or one OS process per shard
/// over sockets ([`crate::wire::SocketTransport`]) — is a wall-clock and
/// deployment knob only: fleets, stats and booked op totals stay
/// bit-identical (DESIGN.md §15).
pub trait ShardTransport {
    /// The shard count this transport is committed to serving, or `None`
    /// when it adapts to whatever the index needs (the in-process case). A
    /// socket transport holds one worker link per shard, so a mismatch with
    /// the config's grid is a setup error the driver reports before any
    /// frame is sent.
    fn shard_count(&self) -> Option<usize>;

    /// Start one detect execution: export each shard's member slice (the
    /// halo-export contract of [`ShardedIndex`]) to whoever will scan it.
    fn begin_detect(
        &mut self,
        aircraft: &[Aircraft],
        index: &ShardedIndex,
        cfg: &AtmConfig,
    ) -> Result<(), TransportError>;

    /// Simulate one wave: every listed aircraft's read-only turn, fanned
    /// across the transport's workers. Returns `(id, record)` pairs in any
    /// order — the driver sorts by id before committing.
    fn run_wave(
        &mut self,
        aircraft: &[Aircraft],
        index: &ShardedIndex,
        cfg: &AtmConfig,
        wave: &[WaveGroup],
    ) -> Result<Vec<(u32, TurnRecord)>, TransportError>;

    /// Broadcast the wave's resolved velocities (`(id, (dx, dy))`,
    /// ascending) so every copy of those aircraft — master fleet and worker
    /// halos — agrees before the next wave scans.
    fn commit(&mut self, deltas: &[(u32, (f32, f32))]) -> Result<(), TransportError>;

    /// End the detect execution. The driver passes its replay-summed totals
    /// so a transport with remote state can cross-check them against what
    /// its workers accumulated (a codec or scheduling bug fails loudly here
    /// rather than silently skewing modeled time).
    fn finish(&mut self, stats: &DetectStats, ops: &OpCounter) -> Result<(), TransportError>;
}

/// The zero-copy reference transport: wave turns are simulated by scoped
/// threads (or inline for small waves) reading the live fleet through the
/// sharded index. Never fails, allocates nothing between waves beyond the
/// per-turn records, and is byte-identical to the pre-seam thread grid.
pub struct InProcessTransport {
    workers: usize,
}

impl InProcessTransport {
    /// A transport fanning waves across up to `workers` threads.
    pub fn new(workers: usize) -> InProcessTransport {
        InProcessTransport {
            workers: workers.max(1),
        }
    }
}

impl ShardTransport for InProcessTransport {
    fn shard_count(&self) -> Option<usize> {
        None
    }

    fn begin_detect(
        &mut self,
        _aircraft: &[Aircraft],
        _index: &ShardedIndex,
        _cfg: &AtmConfig,
    ) -> Result<(), TransportError> {
        Ok(())
    }

    fn run_wave(
        &mut self,
        aircraft: &[Aircraft],
        index: &ShardedIndex,
        cfg: &AtmConfig,
        wave: &[WaveGroup],
    ) -> Result<Vec<(u32, TurnRecord)>, TransportError> {
        let total: usize = wave.iter().map(|(_, ids)| ids.len()).sum();
        let pool = self.workers.min(wave.len());
        // Small waves (the long tail after wave 0) run inline: spawning
        // threads would cost more than the turns themselves.
        if pool <= 1 || total < 64 {
            let mut out = Vec::with_capacity(total);
            for (_, ids) in wave {
                for &i in ids {
                    out.push((i, turn_for(aircraft, index, i as usize, cfg)));
                }
            }
            return Ok(out);
        }
        let results: Vec<Mutex<Vec<(u32, TurnRecord)>>> =
            wave.iter().map(|_| Mutex::new(Vec::new())).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let (results, cursor) = (&results, &cursor);
                scope.spawn(move || loop {
                    let g = cursor.fetch_add(1, Ordering::SeqCst);
                    if g >= wave.len() {
                        break;
                    }
                    let (_, ids) = &wave[g];
                    let mut recs = Vec::with_capacity(ids.len());
                    for &i in ids {
                        recs.push((i, turn_for(aircraft, index, i as usize, cfg)));
                    }
                    *results[g].lock().expect("wave result slot") = recs;
                });
            }
        });
        Ok(results
            .into_iter()
            .flat_map(|m| m.into_inner().expect("wave result slot"))
            .collect())
    }

    fn commit(&mut self, _deltas: &[(u32, (f32, f32))]) -> Result<(), TransportError> {
        Ok(()) // workers read the live fleet; the driver already wrote it
    }

    fn finish(&mut self, _stats: &DetectStats, _ops: &OpCounter) -> Result<(), TransportError> {
        Ok(())
    }
}

/// Exact parallel Tasks 2+3 over any [`ShardTransport`]: bit-identical to
/// [`crate::detect::detect_resolve_all`] run with an [`OpCounter`] sink,
/// whatever the transport.
///
/// Aircraft are leveled by the static gate-dependency DAG — level(i) is one
/// more than the max level of its lower-indexed gate partners, so gate
/// partners never share a wave in either index direction. Each wave's
/// turns, grouped by owner shard, are simulated read-only by the transport;
/// resolved velocities are committed to the master fleet (and broadcast to
/// the transport's workers) between waves; a final serial replay applies
/// the deferred collision marks in the sequential write order.
pub fn detect_resolve_via_transport(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    transport: &mut (impl ShardTransport + ?Sized),
) -> Result<(DetectStats, OpCounter), TransportError> {
    let mut ops = OpCounter::new();
    let n = aircraft.len();
    if n < 2 {
        let stats = detect_resolve_all(aircraft, cfg, &mut ops);
        return Ok((stats, ops));
    }

    let index = ShardedIndex::build(aircraft, cfg);
    if let Some(served) = transport.shard_count() {
        if served != index.shard_count() {
            return Err(TransportError::new(format!(
                "transport serves {served} shard(s) but cfg.shards = {} needs {}",
                cfg.shards,
                index.shard_count()
            )));
        }
    }
    let reach = cfg.critical_reach_nm();

    // Wave levels: level(i) = 1 + max level of its lower-indexed gate
    // partners (0 when none).
    let mut level = vec![0u32; n];
    let mut max_level = 0u32;
    for i in 0..n {
        let track = aircraft[i];
        let mut lv = 0u32;
        for p in index.candidates_for(i, &track) {
            if p >= i || level[p] < lv {
                continue;
            }
            let other = &aircraft[p];
            if same_altitude_band(&track, other, cfg.alt_separation_ft, &mut NullSink)
                && within_critical_reach(&track, other, reach, &mut NullSink)
            {
                lv = lv.max(level[p] + 1);
            }
        }
        level[i] = lv;
        max_level = max_level.max(lv);
    }

    // Group each wave's members by owner shard: the unit a worker claims.
    let shard_count = index.shard_count();
    let mut grouped: Vec<Vec<Vec<u32>>> =
        vec![vec![Vec::new(); shard_count]; max_level as usize + 1];
    for i in 0..n {
        grouped[level[i] as usize][index.owner_of(i)].push(i as u32);
    }
    let waves: Vec<Vec<WaveGroup>> = grouped
        .into_iter()
        .map(|wave| {
            wave.into_iter()
                .enumerate()
                .filter(|(_, ids)| !ids.is_empty())
                .map(|(s, ids)| (s as u32, ids))
                .collect()
        })
        .collect();

    transport.begin_detect(aircraft, &index, cfg)?;

    let mut records: Vec<Option<TurnRecord>> = (0..n).map(|_| None).collect();
    for wave in &waves {
        let mut turns = transport.run_wave(aircraft, &index, cfg, wave)?;
        turns.sort_unstable_by_key(|&(i, _)| i);
        let mut deltas: Vec<(u32, (f32, f32))> = Vec::new();
        for (i, rec) in turns {
            let slot = records
                .get_mut(i as usize)
                .ok_or_else(|| TransportError::new(format!("turn for unknown aircraft {i}")))?;
            if slot.is_some() {
                return Err(TransportError::new(format!("aircraft {i} simulated twice")));
            }
            if let TurnOutcome::Resolved { vel } = rec.outcome {
                deltas.push((i, vel));
            }
            *slot = Some(rec);
        }
        // Commit resolved velocities before the next wave scans: to the
        // master fleet here, to every worker's halo copies via the
        // transport broadcast.
        for &(i, vel) in &deltas {
            aircraft[i as usize].dx = vel.0;
            aircraft[i as usize].dy = vel.1;
        }
        if !deltas.is_empty() {
            transport.commit(&deltas)?;
        }
    }

    // Serial replay, ascending: apply each turn's condensed own writes and
    // partner marks exactly where the sequential cascade would.
    let mut total = DetectStats::default();
    for i in 0..n {
        let rec = records[i]
            .take()
            .ok_or_else(|| TransportError::new(format!("aircraft {i} was never simulated")))?;
        match rec.outcome {
            TurnOutcome::Clean => {
                aircraft[i].time_till = cfg.critical_periods;
                aircraft[i].batx = aircraft[i].dx;
                aircraft[i].baty = aircraft[i].dy;
            }
            TurnOutcome::Resolved { vel } => {
                aircraft[i].dx = vel.0;
                aircraft[i].dy = vel.1;
                aircraft[i].batx = vel.0;
                aircraft[i].baty = vel.1;
                aircraft[i].col = false;
                aircraft[i].col_with = NO_COLLISION;
                aircraft[i].time_till = cfg.critical_periods;
            }
            TurnOutcome::Unresolved { partner, tmin } => {
                aircraft[i].col = true;
                aircraft[i].col_with = partner as i32;
                aircraft[i].time_till = tmin;
                aircraft[i].batx = aircraft[i].dx;
                aircraft[i].baty = aircraft[i].dy;
            }
        }
        for &(p, t) in &rec.events {
            let p = p as usize;
            aircraft[p].col = true;
            aircraft[p].col_with = i as i32;
            aircraft[p].time_till = aircraft[p].time_till.min(t);
        }
        total.absorb(&rec.stats);
        ops.merge(&rec.ops);
    }
    transport.finish(&total, &ops)?;
    Ok((total, ops))
}

/// Exact parallel Tasks 2+3 over in-process threads: bit-identical to
/// [`crate::detect::detect_resolve_all`] run with an [`OpCounter`] sink, at
/// any worker count.
///
/// With `workers == 1` or `cfg.shards == 1` this *is* the sequential
/// reference (no threads). Otherwise it is
/// [`detect_resolve_via_transport`] over an [`InProcessTransport`].
pub fn detect_resolve_parallel(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    workers: usize,
) -> (DetectStats, OpCounter) {
    let workers = workers.max(1);
    if workers == 1 || cfg.shards <= 1 || aircraft.len() < 2 {
        let mut ops = OpCounter::new();
        let stats = detect_resolve_all(aircraft, cfg, &mut ops);
        return (stats, ops);
    }
    let mut transport = InProcessTransport::new(workers);
    detect_resolve_via_transport(aircraft, cfg, &mut transport)
        .expect("the in-process transport cannot fail")
}

/// Fan a pure per-aircraft phase over worker threads. Element-local phases
/// (each call reads and writes only `aircraft[i]`) are order-independent,
/// so contiguous ranges are handed to scoped threads; with one worker or a
/// small fleet the loop runs inline.
fn fan_aircraft_phase(
    aircraft: &mut [Aircraft],
    workers: usize,
    phase: impl Fn(&mut [Aircraft], usize) + Sync,
) {
    let workers = workers.max(1);
    if workers == 1 || aircraft.len() < 256 {
        for i in 0..aircraft.len() {
            phase(aircraft, i);
        }
        return;
    }
    let chunk = aircraft.len().div_ceil(workers);
    let phase = &phase;
    std::thread::scope(|s| {
        for part in aircraft.chunks_mut(chunk) {
            s.spawn(move || {
                for i in 0..part.len() {
                    phase(part, i);
                }
            });
        }
    });
}

/// Task 1 with its per-aircraft phases fanned across workers: identical
/// results and stats to [`crate::track::track_correlate`].
///
/// Phases 1 (expected position) and 3a (adopt expected) are element-local
/// and fan freely. The correlation passes (phase 2) are order-coupled — a
/// radar's outcome depends on the match state earlier-indexed radars left
/// behind (`MATCH_MULTIPLE` / first-hit logic), and the correlation box is
/// ≤ 2 nm, far below any shard width — so they stay serial, exactly as the
/// deterministic serialization defines them. Phase 3b writes through radar
/// matches and is O(radars): serial.
pub fn track_correlate_sharded(
    aircraft: &mut [Aircraft],
    radars: &mut [RadarReport],
    cfg: &AtmConfig,
    workers: usize,
) -> TrackStats {
    let mut stats = TrackStats::default();

    fan_aircraft_phase(aircraft, workers, |ac, i| {
        expected_position_phase(ac, i, &mut NullSink)
    });

    for pass in 0..cfg.track_passes {
        if pass > 0 && !any_unmatched(radars) {
            break;
        }
        stats.passes_run += 1;
        for i in 0..radars.len() {
            stats.box_tests += correlate_radar_pass(aircraft, radars, i, pass, cfg, &mut NullSink);
        }
    }

    fan_aircraft_phase(aircraft, workers, |ac, i| {
        adopt_expected_phase(ac, i, &mut NullSink)
    });
    for i in 0..radars.len() {
        apply_radar_phase(aircraft, radars, i, &mut NullSink);
    }

    stats.matched = aircraft.iter().filter(|a| a.r_match == MATCH_ONE).count() as u64;
    stats.dropped_aircraft = aircraft
        .iter()
        .filter(|a| a.r_match == MATCH_MULTIPLE)
        .count() as u64;
    stats.discarded_radars = radars
        .iter()
        .filter(|r| r.r_match_with == RADAR_DISCARDED)
        .count() as u64;
    stats.unmatched_radars = radars
        .iter()
        .filter(|r| r.r_match_with == RADAR_UNMATCHED)
        .count() as u64;
    stats
}

/// Accumulated outcome of one sharded major cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedCycleStats {
    /// Task 1 stats summed over the cycle's periods.
    pub track: TrackStats,
    /// Tasks 2+3 stats of the cycle's detection period.
    pub detect: DetectStats,
    /// Op totals the detection booked (bit-identical to the serial run).
    pub detect_ops: OpCounter,
}

impl Default for ShardedCycleStats {
    fn default() -> Self {
        ShardedCycleStats {
            track: TrackStats::default(),
            detect: DetectStats::default(),
            detect_ops: OpCounter::new(),
        }
    }
}

/// The sharded airfield layer: one master [`Airfield`] (a single RNG
/// stream, so radar pictures and fleets are bit-identical to the unsharded
/// pipeline at any shard count) driven through Tasks 1–3 with the per-shard
/// parallel paths of this module.
pub struct ShardedAirfield {
    field: Airfield,
    workers: usize,
}

impl ShardedAirfield {
    /// A fresh field of `n` aircraft under `cfg` (which fixes the shard
    /// grid via [`AtmConfig::shards`]), run with `workers` host threads.
    pub fn new(n: usize, cfg: AtmConfig, workers: usize) -> ShardedAirfield {
        ShardedAirfield::from_airfield(Airfield::new(n, cfg), workers)
    }

    /// Wrap an existing airfield.
    pub fn from_airfield(field: Airfield, workers: usize) -> ShardedAirfield {
        ShardedAirfield {
            field,
            workers: workers.max(1),
        }
    }

    /// The wrapped airfield.
    pub fn field(&self) -> &Airfield {
        &self.field
    }

    /// Unwrap the airfield.
    pub fn into_field(self) -> Airfield {
        self.field
    }

    /// Host worker threads the parallel paths fan across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shards in the grid (`cfg.shards²`).
    pub fn shard_count(&self) -> usize {
        let s = self.field.config().shards;
        s * s
    }

    /// Run one full major cycle (the functional pipeline the backends
    /// execute under their cost models): every period generates radar and
    /// runs Task 1; the final period runs Tasks 2+3; each period ends with
    /// the kinematic update. Bit-identical to the serial reference pipeline
    /// at any `shards` / `workers` combination.
    pub fn run_major_cycle(&mut self) -> ShardedCycleStats {
        let cfg = self.field.config().clone();
        let mut out = ShardedCycleStats::default();
        for period in 0..cfg.periods_per_major {
            let mut radars = self.field.generate_radar();
            let t =
                track_correlate_sharded(&mut self.field.aircraft, &mut radars, &cfg, self.workers);
            out.track.matched += t.matched;
            out.track.dropped_aircraft += t.dropped_aircraft;
            out.track.discarded_radars += t.discarded_radars;
            out.track.unmatched_radars += t.unmatched_radars;
            out.track.box_tests += t.box_tests;
            out.track.passes_run += t.passes_run;
            if period == cfg.periods_per_major - 1 {
                let (d, ops) =
                    detect_resolve_parallel(&mut self.field.aircraft, &cfg, self.workers);
                out.detect = d;
                out.detect_ops = ops;
            }
            self.field.end_period();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::track_correlate;

    fn cfg() -> AtmConfig {
        AtmConfig::default()
    }

    /// A deterministic mid-size fleet with plenty of conflicts across
    /// shard borders (ring spanning all four quadrants, shared bands).
    fn crossing_fleet(n: u32) -> Vec<Aircraft> {
        (0..n)
            .map(|k| {
                let ang = k as f32 * 0.37;
                let r = 15.0 + (k % 11) as f32 * 10.0;
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.06 * ang.cos(), -0.06 * ang.sin())
                    .with_altitude(5_000.0 + (k % 6) as f32 * 800.0)
            })
            .collect()
    }

    #[test]
    fn ownership_is_total_and_unique() {
        let map = ShardMap::new(4, 128.0);
        assert_eq!(map.shard_count(), 16);
        // Corners, center, exact borders, and the far edge all resolve.
        for (x, y) in [
            (-128.0, -128.0),
            (128.0, 128.0),
            (0.0, 0.0),
            (-64.0, 64.0),
            (63.999, -0.001),
        ] {
            assert!(map.shard_of(x, y) < 16);
        }
        // The exact field edge clamps into the last cell.
        assert_eq!(map.shard_of(128.0, 128.0), 15);
        // Non-finite positions fall into shard 0.
        assert_eq!(map.shard_of(f32::NAN, 0.0), map.shard_of(f32::NAN, 0.0));
    }

    #[test]
    fn halo_covers_every_gate_passer() {
        let ac = crossing_fleet(80);
        for scan in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            for shards in [2usize, 3, 4] {
                let c = AtmConfig {
                    shards,
                    scan,
                    ..cfg()
                };
                let idx = ShardedIndex::build(&ac, &c);
                let reach = c.critical_reach_nm();
                for i in 0..ac.len() {
                    let cands: Vec<usize> = idx.candidates_for(i, &ac[i]).collect();
                    for p in 0..ac.len() {
                        let gates = (ac[i].alt - ac[p].alt).abs() < c.alt_separation_ft
                            && (ac[i].x - ac[p].x).abs() <= reach
                            && (ac[i].y - ac[p].y).abs() <= reach;
                        if p != i && gates {
                            assert!(
                                cands.contains(&p),
                                "{scan:?} shards={shards}: gate pair ({i},{p}) missed"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_index_has_halos_on_a_crossing_fleet() {
        let ac = crossing_fleet(120);
        let c = AtmConfig { shards: 2, ..cfg() };
        let idx = ShardedIndex::build(&ac, &c);
        let total_halo: usize = (0..idx.shard_count()).map(|s| idx.halo_len(s)).sum();
        assert!(total_halo > 0, "border-straddling fleet must export halos");
        // Every aircraft has exactly one owner.
        let owned: usize = (0..idx.shard_count())
            .map(|s| {
                idx.members(s)
                    .iter()
                    .filter(|&&j| idx.owner_of(j as usize) == s)
                    .count()
            })
            .sum();
        assert_eq!(owned, ac.len());
    }

    #[test]
    fn degenerate_positions_fall_back_to_full_membership() {
        let mut ac = crossing_fleet(20);
        ac[7].x = f32::NAN;
        let c = AtmConfig { shards: 4, ..cfg() };
        let idx = ShardedIndex::build(&ac, &c);
        for s in 0..idx.shard_count() {
            assert_eq!(idx.members(s).len(), ac.len());
        }
    }

    #[test]
    fn parallel_detect_is_bit_identical_to_serial() {
        for scan in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            for shards in [2usize, 4] {
                let c = AtmConfig {
                    shards,
                    scan,
                    ..cfg()
                };
                let mut serial = crossing_fleet(150);
                let mut counter = OpCounter::new();
                let s_stats = detect_resolve_all(&mut serial, &c, &mut counter);

                for workers in [2usize, 4] {
                    let mut par = crossing_fleet(150);
                    let (p_stats, p_ops) = detect_resolve_parallel(&mut par, &c, workers);
                    assert_eq!(serial, par, "{scan:?} shards={shards} workers={workers}");
                    assert_eq!(s_stats, p_stats, "{scan:?} shards={shards}");
                    assert_eq!(counter, p_ops, "{scan:?} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn parallel_detect_handles_unresolvable_crowds() {
        // The converging ring from the detect tests: unresolved outcomes,
        // partner marks and exhausted rotation sequences all cross the
        // record/replay path.
        let n = 24;
        let ring: Vec<Aircraft> = (0..n)
            .map(|k| {
                let ang = k as f32 * std::f32::consts::TAU / n as f32;
                Aircraft::at(5.0 * ang.cos(), 5.0 * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(10_000.0)
            })
            .collect();
        let c = AtmConfig { shards: 4, ..cfg() };
        let mut serial = ring.clone();
        let mut counter = OpCounter::new();
        let s_stats = detect_resolve_all(&mut serial, &c, &mut counter);
        let mut par = ring;
        let (p_stats, p_ops) = detect_resolve_parallel(&mut par, &c, 4);
        assert_eq!(serial, par);
        assert_eq!(s_stats, p_stats);
        assert_eq!(counter, p_ops);
        assert!(s_stats.critical_conflicts > 0);
    }

    #[test]
    fn sharded_track_matches_serial_track() {
        let mut field = Airfield::with_seed(500, 77);
        let radars = field.generate_radar();
        let c = field.config().clone();

        let mut serial_ac = field.aircraft.clone();
        let mut serial_rd = radars.clone();
        let s = track_correlate(&mut serial_ac, &mut serial_rd, &c, &mut NullSink);

        let mut par_ac = field.aircraft.clone();
        let mut par_rd = radars;
        let p = track_correlate_sharded(&mut par_ac, &mut par_rd, &c, 4);

        assert_eq!(serial_ac, par_ac);
        assert_eq!(serial_rd, par_rd);
        assert_eq!(s, p);
    }

    #[test]
    fn sharded_major_cycle_is_bit_identical_to_the_reference_pipeline() {
        let seed = 4242;
        let n = 400;

        // Serial reference: the exact sequence the sequential backend runs.
        let ref_cfg = AtmConfig::with_seed(seed);
        let mut ref_field = Airfield::new(n, ref_cfg.clone());
        let mut ref_detect = DetectStats::default();
        let mut ref_ops = OpCounter::new();
        for period in 0..ref_cfg.periods_per_major {
            let mut radars = ref_field.generate_radar();
            track_correlate(
                &mut ref_field.aircraft,
                &mut radars,
                &ref_cfg,
                &mut NullSink,
            );
            if period == ref_cfg.periods_per_major - 1 {
                ref_detect = detect_resolve_all(&mut ref_field.aircraft, &ref_cfg, &mut ref_ops);
            }
            ref_field.end_period();
        }

        for (shards, workers) in [(1usize, 1usize), (2, 4), (4, 4)] {
            let c = AtmConfig {
                shards,
                ..AtmConfig::with_seed(seed)
            };
            let mut sharded = ShardedAirfield::new(n, c, workers);
            let out = sharded.run_major_cycle();
            assert_eq!(
                ref_field.aircraft,
                sharded.field().aircraft,
                "shards={shards} workers={workers}"
            );
            assert_eq!(ref_detect, out.detect, "shards={shards}");
            assert_eq!(ref_ops, out.detect_ops, "shards={shards}");
        }
    }

    #[test]
    fn sharded_incremental_matches_a_fresh_build_across_rescans() {
        let mut ac = crossing_fleet(120);
        let c = AtmConfig {
            shards: 3,
            scan: ScanMode::Incremental,
            ..cfg()
        };
        let mut inc = ShardedIncremental::new();
        let mut seed = 0xabcd_1234_u64;
        let mut buf = Vec::new();
        for cycle in 0..6 {
            inc.update(&ac, &c);
            let full = ShardedIndex::build(&ac, &c);
            for (i, track) in ac.iter().enumerate() {
                let mut a: Vec<usize> = full.candidates_for(i, track).collect();
                inc.candidates_into(i, track, &mut buf);
                let mut b: Vec<usize> = buf.iter().map(|&p| p as usize).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "cycle {cycle} track {i}");
            }
            // Drift a tenth of the fleet, including across shard borders.
            for _ in 0..ac.len() / 10 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let i = (seed % ac.len() as u64) as usize;
                ac[i].x += ((seed >> 8) % 100) as f32 - 50.0;
                ac[i].y += ((seed >> 16) % 100) as f32 - 50.0;
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_parallel_results() {
        let c = AtmConfig { shards: 4, ..cfg() };
        let run = |workers| {
            let mut ac = crossing_fleet(200);
            let (stats, ops) = detect_resolve_parallel(&mut ac, &c, workers);
            (ac, stats, ops)
        };
        let one = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(one, run(workers), "workers={workers}");
        }
    }
}
