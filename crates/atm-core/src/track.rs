//! Task 1: radar tracking and correlation (the paper's Algorithm 1).
//!
//! Every half-second period, a shuffled list of radar reports must be
//! correlated with aircraft *expected positions*:
//!
//! 1. every aircraft computes its expected position `(x+dx, y+dy)` and
//!    resets its match state;
//! 2. each radar scans the aircraft for expected positions inside a
//!    1 nm × 1 nm box around it. An aircraft hit by two radars is dropped
//!    from correlation ([`MATCH_MULTIPLE`]); a radar that hits two
//!    unmatched aircraft is discarded ([`RADAR_DISCARDED`]);
//! 3. radars still unmatched retry with the box doubled, twice;
//! 4. every aircraft adopts its expected position, and uniquely matched
//!    aircraft snap to their radar's reported position.
//!
//! The phases are exposed as per-item routines so each backend can run them
//! under its own execution model; [`track_correlate`] is the sequential
//! reference driver, and the semantics of the per-radar scan are defined by
//! the deterministic serialization (radars in index order) — the order the
//! GPU simulator's launch loop also uses, which is why the simulated
//! devices reproduce the reference results exactly.

use crate::config::AtmConfig;
use crate::types::{
    Aircraft, RadarReport, MATCH_MULTIPLE, MATCH_NONE, MATCH_ONE, RADAR_DISCARDED, RADAR_UNMATCHED,
};
use sim_clock::CostSink;

/// Outcome counters of one Task 1 execution (used by reports, tests, and
/// the analytic Xeon model's lock estimate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrackStats {
    /// Aircraft that ended the task matched to exactly one radar.
    pub matched: u64,
    /// Aircraft dropped for being hit by multiple radars.
    pub dropped_aircraft: u64,
    /// Radars discarded for hitting multiple unmatched aircraft.
    pub discarded_radars: u64,
    /// Radars left unmatched after all passes.
    pub unmatched_radars: u64,
    /// Bounding-box tests performed.
    pub box_tests: u64,
    /// Correlation passes actually run (a pass is skipped when every radar
    /// is already settled).
    pub passes_run: u32,
}

/// Phase 1, per aircraft `i`: compute the expected position and reset the
/// correlation state.
pub fn expected_position_phase(aircraft: &mut [Aircraft], i: usize, sink: &mut impl CostSink) {
    let a = &mut aircraft[i];
    sink.load(Aircraft::RECORD_BYTES);
    a.expected_x = a.x + a.dx;
    a.expected_y = a.y + a.dy;
    a.r_match = MATCH_NONE;
    sink.fadd(2);
    sink.store(12);
}

/// Is `r` inside the box of half-width `hw` around the expected position of
/// `a`? (The paper's `aircraft.x − hw < radar.x < aircraft.x + hw` test.)
#[inline]
fn in_box(a: &Aircraft, r: &RadarReport, hw: f32, sink: &mut impl CostSink) -> bool {
    sink.fadd(4);
    // Almost every lane misses the box, so the warp stays converged on the
    // common path; the rare hit is flagged divergent at the call sites.
    sink.branch(false);
    (r.rx - a.expected_x).abs() < hw && (r.ry - a.expected_y).abs() < hw
}

/// Phase 2, per radar `i`, one pass: scan the aircraft and apply the
/// matching rules. `pass` 0 considers all aircraft; later passes only
/// still-unmatched aircraft, per Algorithm 1 lines 10–11.
///
/// Returns the number of box tests performed (for [`TrackStats`]).
pub fn correlate_radar_pass(
    aircraft: &mut [Aircraft],
    radars: &mut [RadarReport],
    i: usize,
    pass: u32,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> u64 {
    sink.load(RadarReport::RECORD_BYTES);
    // Lanes whose radar settled in an earlier pass exit here while the
    // rest keep scanning: one real divergence point per pass.
    sink.branch(true);
    if radars[i].r_match_with != RADAR_UNMATCHED {
        return 0; // settled in an earlier pass (matched or discarded)
    }
    let hw = cfg.pass_half_width(pass);
    let mut first_hit: Option<usize> = None;
    let mut extra_unmatched_hit = false;
    let mut tests = 0u64;

    #[allow(clippy::needless_range_loop)] // indices are part of the protocol
    for p in 0..aircraft.len() {
        // The aircraft array is scanned warp-uniformly by every radar
        // thread: a broadcast/cached read on architectures that have one.
        sink.load_shared(16);
        tests += 1;
        // Dropped aircraft no longer participate at all; matched aircraft
        // participate only in pass 0 (later passes re-scan "remaining,
        // unmatched" aircraft only).
        sink.branch(false);
        if aircraft[p].r_match == MATCH_MULTIPLE {
            continue;
        }
        if pass > 0 && aircraft[p].r_match == MATCH_ONE {
            continue;
        }
        if !in_box(&aircraft[p], &radars[i], hw, sink) {
            continue;
        }
        // A lane that actually hits departs from the warp's common path.
        sink.branch(true);
        if aircraft[p].r_match == MATCH_ONE {
            // Second radar on an already-matched aircraft: the aircraft is
            // dropped from correlation (Algorithm 1 line 8).
            aircraft[p].r_match = MATCH_MULTIPLE;
            sink.store(4);
            continue;
        }
        // Unmatched aircraft hit.
        if first_hit.is_none() {
            first_hit = Some(p);
        } else {
            extra_unmatched_hit = true;
        }
    }

    sink.branch(false);
    if extra_unmatched_hit {
        // This radar saw ≥2 unmatched aircraft: discard it; no aircraft is
        // marked (Algorithm 1 line 9).
        radars[i].r_match_with = RADAR_DISCARDED;
        sink.store(4);
    } else if let Some(p) = first_hit {
        radars[i].r_match_with = p as i32;
        aircraft[p].r_match = MATCH_ONE;
        sink.store(8);
    }
    tests
}

/// Phase 3a, per aircraft `i`: adopt the expected position (uncorrelated
/// aircraft keep it; Algorithm 1 line 12, first half).
pub fn adopt_expected_phase(aircraft: &mut [Aircraft], i: usize, sink: &mut impl CostSink) {
    let a = &mut aircraft[i];
    sink.load(8);
    a.x = a.expected_x;
    a.y = a.expected_y;
    sink.store(8);
}

/// Phase 3b, per radar `i`: a validly matched radar overrides its
/// aircraft's position with the reported one (Algorithm 1 line 12, second
/// half).
pub fn apply_radar_phase(
    aircraft: &mut [Aircraft],
    radars: &[RadarReport],
    i: usize,
    sink: &mut impl CostSink,
) {
    sink.load(RadarReport::RECORD_BYTES);
    sink.branch(false);
    let m = radars[i].r_match_with;
    if m >= 0 {
        let p = m as usize;
        sink.load(4);
        sink.branch(true);
        if aircraft[p].r_match == MATCH_ONE {
            aircraft[p].x = radars[i].rx;
            aircraft[p].y = radars[i].ry;
            sink.store(8);
        }
    }
}

/// Whether any radar is still unmatched (drives the pass loop; on the AP
/// this is the constant-time any-responder test, on the GPU the host reads
/// back a flag).
pub fn any_unmatched(radars: &[RadarReport]) -> bool {
    radars.iter().any(|r| r.r_match_with == RADAR_UNMATCHED)
}

/// Sequential reference driver for Task 1: all phases in order.
pub fn track_correlate(
    aircraft: &mut [Aircraft],
    radars: &mut [RadarReport],
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> TrackStats {
    let mut stats = TrackStats::default();

    for i in 0..aircraft.len() {
        expected_position_phase(aircraft, i, sink);
    }

    for pass in 0..cfg.track_passes {
        if pass > 0 && !any_unmatched(radars) {
            break;
        }
        stats.passes_run += 1;
        for i in 0..radars.len() {
            stats.box_tests += correlate_radar_pass(aircraft, radars, i, pass, cfg, sink);
        }
    }

    for i in 0..aircraft.len() {
        adopt_expected_phase(aircraft, i, sink);
    }
    for i in 0..radars.len() {
        apply_radar_phase(aircraft, radars, i, sink);
    }

    stats.matched = aircraft.iter().filter(|a| a.r_match == MATCH_ONE).count() as u64;
    stats.dropped_aircraft = aircraft
        .iter()
        .filter(|a| a.r_match == MATCH_MULTIPLE)
        .count() as u64;
    stats.discarded_radars = radars
        .iter()
        .filter(|r| r.r_match_with == RADAR_DISCARDED)
        .count() as u64;
    stats.unmatched_radars = radars
        .iter()
        .filter(|r| r.r_match_with == RADAR_UNMATCHED)
        .count() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use sim_clock::NullSink;

    fn cfg() -> AtmConfig {
        AtmConfig::default()
    }

    fn radar_for(a: &Aircraft, ox: f32, oy: f32) -> RadarReport {
        RadarReport::at(a.x + a.dx + ox, a.y + a.dy + oy)
    }

    #[test]
    fn single_aircraft_single_radar_correlates() {
        let mut ac = vec![Aircraft::at(10.0, 20.0).with_velocity(0.05, -0.02)];
        let mut rd = vec![radar_for(&ac[0], 0.1, -0.1)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.matched, 1);
        assert_eq!(rd[0].r_match_with, 0);
        // Aircraft snapped to the radar's position, not the expected one.
        assert!((ac[0].x - rd[0].rx).abs() < 1e-6);
        assert!((ac[0].y - rd[0].ry).abs() < 1e-6);
    }

    #[test]
    fn uncorrelated_aircraft_keeps_expected_position() {
        let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.05)];
        let mut rd = vec![RadarReport::at(100.0, 100.0)]; // nowhere near
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.unmatched_radars, 1);
        assert!((ac[0].x - 0.05).abs() < 1e-6);
        assert!((ac[0].y - 0.05).abs() < 1e-6);
    }

    #[test]
    fn radar_hitting_two_unmatched_aircraft_is_discarded() {
        // Two aircraft whose expected positions are 0.2 nm apart; one radar
        // between them.
        let mut ac = vec![Aircraft::at(0.0, 0.0), Aircraft::at(0.2, 0.0)];
        let mut rd = vec![RadarReport::at(0.1, 0.0)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(rd[0].r_match_with, RADAR_DISCARDED);
        assert_eq!(stats.discarded_radars, 1);
        assert_eq!(stats.matched, 0);
        // Neither aircraft was marked.
        assert_eq!(ac[0].r_match, MATCH_NONE);
        assert_eq!(ac[1].r_match, MATCH_NONE);
    }

    #[test]
    fn aircraft_hit_by_two_radars_is_dropped() {
        let mut ac = vec![Aircraft::at(0.0, 0.0)];
        let mut rd = vec![RadarReport::at(0.1, 0.0), RadarReport::at(-0.1, 0.0)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.dropped_aircraft, 1);
        assert_eq!(ac[0].r_match, MATCH_MULTIPLE);
        // The first radar matched it before the second dropped it; the
        // final phase must NOT apply the radar position.
        assert_eq!(rd[0].r_match_with, 0);
        assert_eq!(ac[0].x, 0.0);
    }

    #[test]
    fn second_pass_catches_noisy_radar_outside_first_box() {
        // Radar 0.8 nm off the expected position: outside the 0.5 box,
        // inside the pass-2 box of 1.0.
        let mut ac = vec![Aircraft::at(0.0, 0.0)];
        let mut rd = vec![RadarReport::at(0.8, 0.0)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.matched, 1);
        assert!(stats.passes_run >= 2);
        assert_eq!(ac[0].x, 0.8);
    }

    #[test]
    fn third_pass_box_is_two_nm() {
        let mut ac = vec![Aircraft::at(0.0, 0.0)];
        let mut rd = vec![RadarReport::at(1.9, 0.0)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.matched, 1);
        assert_eq!(stats.passes_run, 3);
    }

    #[test]
    fn radar_beyond_all_passes_stays_unmatched() {
        let mut ac = vec![Aircraft::at(0.0, 0.0)];
        let mut rd = vec![RadarReport::at(2.5, 0.0)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.unmatched_radars, 1);
        assert_eq!(stats.passes_run, 3);
    }

    #[test]
    fn full_field_with_shuffled_radar_mostly_correlates() {
        let mut field = Airfield::with_seed(400, 7);
        let mut radars = field.generate_radar();
        let mut aircraft = field.aircraft.clone();
        let stats = track_correlate(&mut aircraft, &mut radars, &cfg(), &mut NullSink);
        // With 0.2 nm noise inside a 0.5 box, the only failures are dense
        // coincidences; the overwhelming majority must correlate.
        assert!(
            stats.matched as usize > 380,
            "only {} of 400 matched: {stats:?}",
            stats.matched
        );
        assert_eq!(
            stats.matched + stats.dropped_aircraft,
            400 - aircraft.iter().filter(|a| a.r_match == MATCH_NONE).count() as u64
        );
    }

    #[test]
    fn passes_skip_when_everything_settles_early() {
        // Clean single match: pass 2 and 3 must not run.
        let mut ac = vec![Aircraft::at(5.0, 5.0)];
        let mut rd = vec![radar_for(&ac[0], 0.05, 0.05)];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(stats.passes_run, 1);
    }

    #[test]
    fn empty_field_is_a_no_op() {
        let mut ac: Vec<Aircraft> = vec![];
        let mut rd: Vec<RadarReport> = vec![];
        let stats = track_correlate(&mut ac, &mut rd, &cfg(), &mut NullSink);
        assert_eq!(
            stats,
            TrackStats {
                passes_run: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut field = Airfield::with_seed(256, 99);
            let mut radars = field.generate_radar();
            let mut aircraft = field.aircraft.clone();
            let stats = track_correlate(&mut aircraft, &mut radars, &cfg(), &mut NullSink);
            (stats, aircraft, radars)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn op_accounting_scales_with_box_tests() {
        let mut field = Airfield::with_seed(64, 3);
        let mut radars = field.generate_radar();
        let mut aircraft = field.aircraft.clone();
        let mut ops = sim_clock::OpCounter::new();
        let stats = track_correlate(&mut aircraft, &mut radars, &cfg(), &mut ops);
        assert!(
            stats.box_tests >= 64 * 64,
            "at least one full scan: {stats:?}"
        );
        assert!(ops.count(sim_clock::OpClass::FpAdd) >= stats.box_tests);
        assert!(ops.bytes_loaded > 0);
    }
}
