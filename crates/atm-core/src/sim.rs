//! The complete timed ATM simulation: airfield + backend + cyclic executive.
//!
//! Reproduces the paper's "main timed simulation" (§4.2): before each
//! half-second period the harness generates the period's radar picture
//! (explicitly *not* an ATM task — in a real deployment it arrives from the
//! radar network, so its time is not booked against the deadline); Task 1
//! runs every period; Tasks 2+3 run in the final period of each 8-second
//! major cycle; slack is waited out so no period starts early; and every
//! deadline miss is counted.

use crate::airfield::Airfield;
use crate::backends::AtmBackend;
use crate::engine::AtmEngine;
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::Aircraft;
use rt_sched::ExecutiveReport;
use sim_clock::SimDuration;
use telemetry::Recorder;

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Backend the run executed on.
    pub backend_name: String,
    /// One-time setup cost (e.g. the GPU's initial database upload).
    pub setup_time: SimDuration,
    /// The executive's full deadline report.
    pub report: ExecutiveReport,
}

impl SimOutcome {
    /// Mean Task 1 execution time (zero if it never completed).
    pub fn mean_task1(&self) -> SimDuration {
        self.report
            .task_stats("Task1")
            .map(|s| s.mean())
            .unwrap_or(SimDuration::ZERO)
    }

    /// Mean Tasks 2+3 execution time.
    pub fn mean_task23(&self) -> SimDuration {
        self.report
            .task_stats("Task2+3")
            .map(|s| s.mean())
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Terrain-avoidance scheduling for the extended (future-work) task set.
#[derive(Clone, Debug)]
pub struct TerrainSchedule {
    /// The terrain model.
    pub grid: TerrainGrid,
    /// Task parameters.
    pub tcfg: TerrainTaskConfig,
    /// Run the task in periods where `period % every == phase`.
    pub every: usize,
    /// Phase offset within the major cycle.
    pub phase: usize,
}

impl TerrainSchedule {
    /// The default schedule: every 4 periods (2 seconds), offset from the
    /// detection period.
    pub fn standard(grid: TerrainGrid) -> Self {
        TerrainSchedule {
            grid,
            tcfg: TerrainTaskConfig::default(),
            every: 4,
            phase: 1,
        }
    }
}

/// A ready-to-run ATM simulation: the trivial batch wrapper over the
/// resumable [`AtmEngine`] — `run(n)` is `begin_run()` followed by `n`
/// stepped major cycles, nothing more.
pub struct AtmSimulation {
    engine: AtmEngine,
}

impl AtmSimulation {
    /// Wire an airfield to a backend.
    pub fn new(field: Airfield, backend: Box<dyn AtmBackend>) -> Self {
        AtmSimulation {
            engine: AtmEngine::new(field, backend),
        }
    }

    /// Attach a telemetry recorder: the cyclic executive emits period and
    /// task spans, and the backend's substrate (GPU device, AP machine,
    /// MIMD pool) emits its own spans onto the same recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.engine.set_recorder(recorder);
    }

    /// Enable the Task 4 terrain-avoidance schedule (the future-work
    /// extension; see [`crate::terrain`]).
    pub fn with_terrain(mut self, schedule: TerrainSchedule) -> Self {
        self.engine = self.engine.with_terrain(schedule);
        self
    }

    /// Convenience: a fresh airfield of `n` aircraft with `seed`, on
    /// `backend`.
    pub fn with_field(n: usize, seed: u64, backend: Box<dyn AtmBackend>) -> Self {
        AtmSimulation::new(Airfield::with_seed(n, seed), backend)
    }

    /// The airfield (inspect aircraft state between runs).
    pub fn field(&self) -> &Airfield {
        self.engine.field()
    }

    /// The underlying resumable engine (ingest updates, step single
    /// cycles).
    pub fn engine_mut(&mut self) -> &mut AtmEngine {
        &mut self.engine
    }

    /// Run `major_cycles` full 8-second major cycles.
    pub fn run(&mut self, major_cycles: usize) -> SimOutcome {
        self.engine.begin_run();
        for _ in 0..major_cycles {
            self.engine.step_major_cycle();
        }
        self.engine.outcome()
    }

    /// Direct access to the aircraft after a run.
    pub fn aircraft(&self) -> &[Aircraft] {
        self.engine.aircraft()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{ApBackend, GpuBackend, SequentialBackend, XeonModelBackend};

    #[test]
    fn terrain_schedule_books_the_extra_task() {
        let grid = TerrainGrid::generate(3, 128.0, 32, 8_000.0);
        let mut sim = AtmSimulation::with_field(400, 47, Box::new(GpuBackend::titan_x_pascal()))
            .with_terrain(TerrainSchedule::standard(grid));
        let out = sim.run(1);
        // every=4, phase=1 -> periods 1, 5, 9, 13: four executions.
        assert_eq!(out.report.task_stats("Terrain").unwrap().count, 4);
        assert_eq!(out.report.total_misses(), 0);
    }

    #[test]
    fn terrain_climbs_keep_the_fleet_above_ground() {
        let grid = TerrainGrid::generate(3, 128.0, 32, 12_000.0);
        let mut sim = AtmSimulation::with_field(300, 48, Box::new(SequentialBackend::new()))
            .with_terrain(TerrainSchedule::standard(grid.clone()));
        sim.run(2);
        for a in sim.aircraft() {
            let ground = grid.elevation_at(a.x, a.y);
            assert!(
                a.alt >= ground - 1.0,
                "aircraft below terrain: alt {} vs ground {ground}",
                a.alt
            );
        }
    }

    #[test]
    fn titan_x_never_misses_at_moderate_load() {
        let mut sim = AtmSimulation::with_field(2_000, 41, Box::new(GpuBackend::titan_x_pascal()));
        let out = sim.run(2);
        assert_eq!(out.report.total_misses(), 0, "{}", out.report);
        assert_eq!(out.report.periods().len(), 32);
        assert!(out.setup_time > SimDuration::ZERO);
        // Task 1 ran every period, Tasks 2+3 once per major cycle.
        assert_eq!(out.report.task_stats("Task1").unwrap().count, 32);
        assert_eq!(out.report.task_stats("Task2+3").unwrap().count, 2);
    }

    #[test]
    fn staran_never_misses_at_moderate_load() {
        let mut sim = AtmSimulation::with_field(1_500, 42, Box::new(ApBackend::staran()));
        let out = sim.run(1);
        assert_eq!(out.report.total_misses(), 0, "{}", out.report);
    }

    #[test]
    fn xeon_misses_deadlines_at_heavy_load() {
        let mut sim = AtmSimulation::with_field(16_000, 43, Box::new(XeonModelBackend::new()));
        let out = sim.run(1);
        assert!(
            out.report.total_misses() > 0,
            "the multi-core baseline must buckle at 16k aircraft: {}",
            out.report
        );
    }

    #[test]
    fn sequential_simulation_advances_the_field() {
        let mut sim = AtmSimulation::with_field(200, 44, Box::new(SequentialBackend::new()));
        let before: Vec<f32> = sim.aircraft().iter().map(|a| a.x).collect();
        sim.run(1);
        let after: Vec<f32> = sim.aircraft().iter().map(|a| a.x).collect();
        assert_ne!(
            before, after,
            "16 periods of movement must change positions"
        );
        assert_eq!(sim.field().periods_elapsed(), 16);
    }

    #[test]
    fn aircraft_stay_inside_the_airfield() {
        let mut sim = AtmSimulation::with_field(500, 45, Box::new(SequentialBackend::new()));
        sim.run(3);
        let hw = sim.field().config().half_width;
        for a in sim.aircraft() {
            assert!(a.x.abs() <= hw + 1e-3, "x escaped: {}", a.x);
            assert!(a.y.abs() <= hw + 1e-3, "y escaped: {}", a.y);
        }
    }

    #[test]
    fn modeled_simulation_is_deterministic_end_to_end() {
        let run = || {
            let mut sim = AtmSimulation::with_field(800, 46, Box::new(GpuBackend::gtx_880m()));
            let out = sim.run(1);
            (
                out.mean_task1(),
                out.mean_task23(),
                sim.aircraft()
                    .iter()
                    .map(|a| (a.x, a.y))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
