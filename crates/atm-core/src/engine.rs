//! The resumable ATM engine: the batch pipeline split into steppable
//! sessions.
//!
//! [`AtmEngine`] owns the long-lived pieces of a simulation — the
//! [`Airfield`] (sharded through `cfg.shards`, see [`crate::shard`]), the
//! backend with its persistent [`IncrementalEngine`], the cyclic executive
//! and its cumulative report — and exposes the two verbs a service layer
//! needs:
//!
//! * [`AtmEngine::apply_updates`] — ingest a batch of external
//!   [`AircraftUpdate`]s between major cycles, atomically with the
//!   airfield's ingest bookkeeping, and get an [`IngestReceipt`];
//! * [`AtmEngine::step_major_cycle`] — run exactly one 8-second major
//!   cycle (16 periods: radar → Task 1 every period, Tasks 2+3 in the
//!   final period, terrain on its schedule) and get a [`CycleReport`] of
//!   what changed: conflicts, resolutions, deadline misses, telemetry
//!   deltas and the post-cycle fleet hash.
//!
//! The batch entry point [`crate::sim::AtmSimulation`] is a trivial
//! wrapper — `begin_run()` then `step_major_cycle()` in a loop — so the
//! stepwise path *is* the batch path: ingesting a recorded update log
//! between the same cycle boundaries reproduces a live session's
//! `CycleReport`s and fleet hashes byte for byte (DESIGN.md §14).
//!
//! [`IncrementalEngine`]: crate::detect::IncrementalEngine

use crate::airfield::{AircraftUpdate, Airfield, IngestReceipt};
use crate::backends::AtmBackend;
use crate::scenario::fleet_hash;
use crate::sim::{SimOutcome, TerrainSchedule};
use crate::types::Aircraft;
use rt_sched::{CyclicExecutive, ExecutiveReport, MajorCycleSpec, TaskExecution};
use sim_clock::SimDuration;
use telemetry::{JsonValue, Recorder};

/// Everything one major cycle changed, in deterministic, serializable
/// form. Equal-seed sessions fed identical ingest batches at identical
/// cycle boundaries produce byte-identical [`CycleReport::to_json`]
/// documents on modeled backends.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleReport {
    /// Zero-based index of the completed major cycle since `begin_run`.
    pub cycle: u64,
    /// Aircraft flagged in conflict after the cycle's detect pass.
    pub conflicts: u64,
    /// Aircraft whose velocity was rewritten by this cycle's resolution
    /// pass (Task 3 commits).
    pub resolutions: u64,
    /// Deadline misses booked during this cycle.
    pub misses: u64,
    /// Task executions skipped after a miss during this cycle.
    pub skips: u64,
    /// Simulated time Task 1 consumed this cycle.
    pub task1_total: SimDuration,
    /// Simulated time Tasks 2+3 consumed this cycle.
    pub task23_total: SimDuration,
    /// Simulated time the terrain task consumed this cycle (zero without a
    /// schedule).
    pub terrain_total: SimDuration,
    /// Ingest batches applied since the previous cycle report.
    pub ingest_batches: u64,
    /// Individual updates those batches applied.
    pub ingest_applied: u64,
    /// FNV-1a hash over the full fleet state after the cycle.
    pub fleet_hash: u64,
    /// Telemetry counter deltas across the cycle, in name order (empty
    /// when the recorder is disabled).
    pub telemetry: Vec<(String, u64)>,
}

impl CycleReport {
    /// Serialize with a fixed key order; durations are exact integer
    /// picoseconds and the fleet hash is fixed-width hex, so the compact
    /// form is byte-stable.
    pub fn to_json(&self) -> JsonValue {
        let telemetry = self
            .telemetry
            .iter()
            .fold(JsonValue::obj(), |acc, (k, v)| acc.set(k.as_str(), *v));
        JsonValue::obj()
            .set("cycle", self.cycle)
            .set("conflicts", self.conflicts)
            .set("resolutions", self.resolutions)
            .set("misses", self.misses)
            .set("skips", self.skips)
            .set("task1_ps", self.task1_total.as_picos())
            .set("task23_ps", self.task23_total.as_picos())
            .set("terrain_ps", self.terrain_total.as_picos())
            .set("ingest_batches", self.ingest_batches)
            .set("ingest_applied", self.ingest_applied)
            .set("fleet_hash", format!("{:016x}", self.fleet_hash))
            .set("telemetry", telemetry)
    }
}

/// A resumable simulation session; see the module docs.
pub struct AtmEngine {
    field: Airfield,
    backend: Box<dyn AtmBackend>,
    terrain: Option<TerrainSchedule>,
    recorder: Recorder,
    exec: CyclicExecutive,
    report: ExecutiveReport,
    setup_time: SimDuration,
    started: bool,
    cycle: usize,
    pending_batches: u64,
    pending_applied: u64,
}

impl AtmEngine {
    /// Wire an airfield to a backend. Setup (the backend's one-time
    /// database upload) is deferred to [`AtmEngine::begin_run`], which the
    /// first [`AtmEngine::step_major_cycle`] performs implicitly.
    pub fn new(field: Airfield, backend: Box<dyn AtmBackend>) -> AtmEngine {
        let cfg = field.config();
        let spec = MajorCycleSpec {
            period: cfg.period,
            periods_per_major: cfg.periods_per_major,
        };
        let exec = CyclicExecutive::new(spec);
        let report = exec.new_report();
        AtmEngine {
            field,
            backend,
            terrain: None,
            recorder: Recorder::disabled(),
            exec,
            report,
            setup_time: SimDuration::ZERO,
            started: false,
            cycle: 0,
            pending_batches: 0,
            pending_applied: 0,
        }
    }

    /// Enable the Task 4 terrain-avoidance schedule.
    pub fn with_terrain(mut self, schedule: TerrainSchedule) -> AtmEngine {
        assert!(
            schedule.every > 0,
            "terrain schedule period must be positive"
        );
        self.terrain = Some(schedule);
        self
    }

    /// Attach a telemetry recorder to the executive and the backend's
    /// substrate.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.backend.set_recorder(recorder.clone());
        self.exec.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// (Re)start a session: run backend setup against the current fleet
    /// and reset the executive, its report and the cycle counter. The
    /// airfield itself is *not* reset — a run resumes from wherever the
    /// fleet is. Returns the setup time.
    pub fn begin_run(&mut self) -> SimDuration {
        self.setup_time = self.backend.on_setup(&self.field.aircraft);
        let cfg = self.field.config();
        let spec = MajorCycleSpec {
            period: cfg.period,
            periods_per_major: cfg.periods_per_major,
        };
        self.exec = CyclicExecutive::new(spec);
        self.exec.set_recorder(self.recorder.clone());
        self.report = self.exec.new_report();
        self.cycle = 0;
        self.started = true;
        self.setup_time
    }

    /// Ingest one batch of external updates (see
    /// [`Airfield::apply_updates`]). Safe at any cycle boundary; the
    /// backend's persistent incremental grid picks the mutations up on its
    /// next rescan via its scan-key diff.
    pub fn apply_updates(&mut self, updates: &[AircraftUpdate]) -> IngestReceipt {
        let receipt = self.field.apply_updates(updates);
        self.pending_batches += 1;
        self.pending_applied += receipt.applied as u64;
        receipt
    }

    /// Run exactly one major cycle (16 half-second periods) and report
    /// what changed. Implicitly performs [`AtmEngine::begin_run`] on a
    /// fresh engine.
    pub fn step_major_cycle(&mut self) -> CycleReport {
        if !self.started {
            self.begin_run();
        }
        let cfg = self.field.config().clone();
        let misses_before = self.report.total_misses();
        let skips_before = self.report.total_skips();
        let task1_before = task_total(&self.report, "Task1");
        let task23_before = task_total(&self.report, "Task2+3");
        let terrain_before = task_total(&self.report, "Terrain");
        let counters_before = self.recorder.counters_snapshot();

        let mut resolutions = 0u64;
        for period in 0..cfg.periods_per_major {
            // Radar generation precedes the period's tasks and is not an
            // ATM task (paper §4.2) — it is not booked against the deadline.
            let mut radars = self.field.generate_radar();
            let t1 = self
                .backend
                .track_correlate(&mut self.field.aircraft, &mut radars, &cfg);
            let mut tasks = vec![TaskExecution::new("Task1", t1)];
            if let Some(sched) = &self.terrain {
                if period % sched.every == sched.phase % sched.every {
                    let t4 = self.backend.terrain_avoidance(
                        &mut self.field.aircraft,
                        &sched.grid,
                        &sched.tcfg,
                    );
                    tasks.push(TaskExecution::new("Terrain", t4));
                }
            }
            if period == cfg.periods_per_major - 1 {
                let vel_before: Vec<(u32, u32)> = self
                    .field
                    .aircraft
                    .iter()
                    .map(|a| (a.dx.to_bits(), a.dy.to_bits()))
                    .collect();
                let t23 = self.backend.detect_resolve(&mut self.field.aircraft, &cfg);
                resolutions = self
                    .field
                    .aircraft
                    .iter()
                    .zip(&vel_before)
                    .filter(|(a, &(dx, dy))| a.dx.to_bits() != dx || a.dy.to_bits() != dy)
                    .count() as u64;
                tasks.push(TaskExecution::new("Task2+3", t23));
            }
            self.field.end_period();
            self.exec
                .book_period(&mut self.report, self.cycle, period, &tasks);
        }

        let conflicts = self.field.aircraft.iter().filter(|a| a.col).count() as u64;
        let report = CycleReport {
            cycle: self.cycle as u64,
            conflicts,
            resolutions,
            misses: self.report.total_misses() - misses_before,
            skips: self.report.total_skips() - skips_before,
            task1_total: task_total(&self.report, "Task1") - task1_before,
            task23_total: task_total(&self.report, "Task2+3") - task23_before,
            terrain_total: task_total(&self.report, "Terrain") - terrain_before,
            ingest_batches: std::mem::take(&mut self.pending_batches),
            ingest_applied: std::mem::take(&mut self.pending_applied),
            fleet_hash: fleet_hash(&self.field.aircraft),
            telemetry: counter_deltas(&counters_before, &self.recorder.counters_snapshot()),
        };
        self.cycle += 1;
        report
    }

    /// The airfield (inspect aircraft and ingest state between cycles).
    pub fn field(&self) -> &Airfield {
        &self.field
    }

    /// Direct access to the aircraft.
    pub fn aircraft(&self) -> &[Aircraft] {
        &self.field.aircraft
    }

    /// Major cycles stepped since the last `begin_run`.
    pub fn cycles_stepped(&self) -> usize {
        self.cycle
    }

    /// The executive's cumulative report for the current run.
    pub fn report(&self) -> &ExecutiveReport {
        &self.report
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> String {
        self.backend.info().name.to_owned()
    }

    /// Batch outcome of the run so far (what [`crate::sim::AtmSimulation`]
    /// returns).
    pub fn outcome(&self) -> SimOutcome {
        SimOutcome {
            backend_name: self.backend_name(),
            setup_time: self.setup_time,
            report: self.report.clone(),
        }
    }
}

/// Total booked time of one task name (zero if it never ran).
fn task_total(report: &ExecutiveReport, name: &str) -> SimDuration {
    report
        .task_stats(name)
        .map(|s| s.total)
        .unwrap_or(SimDuration::ZERO)
}

/// Per-counter deltas between two name-ordered snapshots, in name order.
/// Counters are monotone, so every delta is `after − before` with absent
/// names reading zero.
fn counter_deltas(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    let mut deltas = Vec::new();
    let mut b = before.iter().peekable();
    for (name, v_after) in after {
        let mut v_before = 0;
        while let Some((bn, bv)) = b.peek() {
            if bn < name {
                b.next();
            } else {
                if bn == name {
                    v_before = *bv;
                    b.next();
                }
                break;
            }
        }
        if *v_after != v_before {
            deltas.push((name.clone(), v_after - v_before));
        }
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{GpuBackend, SequentialBackend};
    use crate::config::{AtmConfig, ScanMode};

    #[test]
    fn stepped_cycles_match_the_batch_run() {
        let run_batch = || {
            let mut sim = crate::sim::AtmSimulation::with_field(
                400,
                9,
                Box::new(GpuBackend::titan_x_pascal()),
            );
            let out = sim.run(3);
            (out.report.total_misses(), sim.aircraft().to_vec())
        };
        let mut engine = AtmEngine::new(
            Airfield::with_seed(400, 9),
            Box::new(GpuBackend::titan_x_pascal()),
        );
        engine.begin_run();
        let mut misses = 0;
        for c in 0..3 {
            let rep = engine.step_major_cycle();
            assert_eq!(rep.cycle, c);
            misses += rep.misses;
        }
        let (batch_misses, batch_fleet) = run_batch();
        assert_eq!(misses, batch_misses);
        assert_eq!(engine.aircraft(), &batch_fleet[..], "fleet bytes diverged");
    }

    #[test]
    fn cycle_report_json_is_byte_stable() {
        let step = || {
            let mut engine = AtmEngine::new(
                Airfield::with_seed(300, 11),
                Box::new(GpuBackend::titan_x_pascal()),
            );
            engine.step_major_cycle().to_json().to_compact()
        };
        let a = step();
        assert_eq!(a, step());
        assert!(a.starts_with("{\"cycle\":0,"), "{a}");
        assert!(a.contains("\"fleet_hash\":\""), "{a}");
    }

    #[test]
    fn ingest_counts_land_in_the_next_cycle_report() {
        let mut engine = AtmEngine::new(
            Airfield::with_seed(50, 13),
            Box::new(SequentialBackend::new()),
        );
        let r = engine.apply_updates(&[
            AircraftUpdate {
                id: 3,
                x: 1.0,
                y: 2.0,
                alt: 11_000.0,
                dx: 0.01,
                dy: 0.02,
            },
            AircraftUpdate {
                id: 999,
                x: 0.0,
                y: 0.0,
                alt: 0.0,
                dx: 0.0,
                dy: 0.0,
            },
        ]);
        assert_eq!(r.seq, 1);
        assert_eq!(r.applied, 1);
        assert_eq!(r.unknown, 1);
        let rep = engine.step_major_cycle();
        assert_eq!(rep.ingest_batches, 1);
        assert_eq!(rep.ingest_applied, 1);
        let rep = engine.step_major_cycle();
        assert_eq!(rep.ingest_batches, 0, "counts must not carry over");
    }

    #[test]
    fn telemetry_deltas_cover_each_cycle_exactly() {
        let mut engine = AtmEngine::new(
            Airfield::with_seed(200, 17),
            Box::new(GpuBackend::titan_x_pascal()),
        );
        engine.set_recorder(Recorder::enabled());
        let a = engine.step_major_cycle();
        let b = engine.step_major_cycle();
        let periods = |rep: &CycleReport| {
            rep.telemetry
                .iter()
                .find(|(k, _)| k == "rt.periods")
                .map(|(_, v)| *v)
        };
        assert_eq!(periods(&a), Some(16));
        assert_eq!(periods(&b), Some(16), "second cycle must delta, not total");
    }

    #[test]
    fn ingested_updates_steer_the_incremental_engine_correctly() {
        // Adversarial check for the ingest path: external mutations through
        // `apply_updates` (including cell-crossing teleports) must leave the
        // persistent incremental engine bit-identical to a from-scratch Grid
        // scan of the same fleet, across several ingest/step rounds.
        let run = |scan: ScanMode| {
            let mut cfg = AtmConfig::with_seed(23);
            cfg.scan = scan;
            let mut engine =
                AtmEngine::new(Airfield::new(350, cfg), Box::new(SequentialBackend::new()));
            let mut out = Vec::new();
            for round in 0u32..4 {
                // Teleport a spread of aircraft far across the grid, shift
                // some altitudes between bands, and flip some velocities.
                let updates: Vec<AircraftUpdate> = (0..30u32)
                    .map(|k| {
                        let id = (k * 11 + round * 7) % 350;
                        let s = (id as f32) * 0.37 + round as f32;
                        AircraftUpdate {
                            id,
                            x: (s * 53.0) % 127.0 - 63.0,
                            y: (s * 29.0) % 127.0 - 63.0,
                            alt: 2_000.0 + ((id * 977 + round * 131) % 36) as f32 * 1_000.0,
                            dx: 0.03 - (id % 5) as f32 * 0.01,
                            dy: (id % 7) as f32 * 0.01 - 0.03,
                        }
                    })
                    .collect();
                engine.apply_updates(&updates);
                let rep = engine.step_major_cycle();
                out.push((rep.fleet_hash, rep.conflicts, rep.resolutions));
            }
            out
        };
        assert_eq!(
            run(ScanMode::Incremental),
            run(ScanMode::Grid),
            "incremental engine diverged from full-rebuild scans under ingest"
        );
    }
}
