//! Task 4: terrain avoidance (the paper's §7.2 "more complete ATM system").
//!
//! The paper's related work (Thompson et al. [11]) handles *terrain*
//! deconfliction where this paper handles aircraft-to-aircraft conflicts;
//! its future work proposes implementing the remaining basic ATM tasks.
//! This module adds that task: a synthetic terrain elevation model over the
//! airfield and a per-aircraft look-ahead check that projects the flight
//! path, samples the terrain under it, and climbs the aircraft when the
//! projected clearance is violated.
//!
//! The task is O(look-ahead samples) per aircraft — constant — so it runs
//! in O(n) on every sequential-style platform and in **O(1) parallel
//! steps** on the associative processor (each PE samples under its own
//! track simultaneously), preserving the complexity story of the other
//! tasks.

use crate::types::Aircraft;
use sim_clock::{CostSink, SimRng};

/// A square terrain elevation lattice over the airfield, sampled
/// bilinearly.
#[derive(Clone, Debug, PartialEq)]
pub struct TerrainGrid {
    half_width: f32,
    cells: usize,
    /// Lattice of `(cells+1)²` elevations in feet, row-major.
    elev: Vec<f32>,
}

impl TerrainGrid {
    /// Generate synthetic terrain: a random lattice smoothed by a few
    /// box-blur passes (rolling hills), scaled to peak `max_elev_ft`.
    pub fn generate(seed: u64, half_width: f32, cells: usize, max_elev_ft: f32) -> TerrainGrid {
        assert!(cells >= 1, "terrain needs at least one cell");
        assert!(half_width > 0.0);
        assert!(max_elev_ft >= 0.0);
        let side = cells + 1;
        let mut rng = SimRng::seed_from_u64(seed ^ 0x7E44A1);
        let mut elev: Vec<f32> = (0..side * side).map(|_| rng.next_f32()).collect();

        // Three smoothing passes: 3×3 box blur with edge clamping.
        for _ in 0..3 {
            let src = elev.clone();
            for r in 0..side {
                for c in 0..side {
                    let mut acc = 0.0f32;
                    let mut cnt = 0.0f32;
                    for dr in -1i32..=1 {
                        for dc in -1i32..=1 {
                            let rr = (r as i32 + dr).clamp(0, side as i32 - 1) as usize;
                            let cc = (c as i32 + dc).clamp(0, side as i32 - 1) as usize;
                            acc += src[rr * side + cc];
                            cnt += 1.0;
                        }
                    }
                    elev[r * side + c] = acc / cnt;
                }
            }
        }

        // Rescale to [0, max_elev_ft].
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for &e in &elev {
            lo = lo.min(e);
            hi = hi.max(e);
        }
        let span = (hi - lo).max(1e-6);
        for e in &mut elev {
            *e = (*e - lo) / span * max_elev_ft;
        }

        TerrainGrid {
            half_width,
            cells,
            elev,
        }
    }

    /// Completely flat terrain at a fixed elevation (tests, oceans).
    pub fn flat(half_width: f32, elevation_ft: f32) -> TerrainGrid {
        TerrainGrid {
            half_width,
            cells: 1,
            elev: vec![elevation_ft; 4],
        }
    }

    /// Grid half-width in nm.
    pub fn half_width(&self) -> f32 {
        self.half_width
    }

    /// Highest lattice elevation (ft).
    pub fn max_elevation(&self) -> f32 {
        self.elev.iter().fold(0.0f32, |a, &b| a.max(b))
    }

    /// Bilinear elevation sample at `(x, y)` nm (clamped at the borders).
    pub fn elevation_at(&self, x: f32, y: f32) -> f32 {
        let side = self.cells + 1;
        // Map [-hw, hw] to [0, cells].
        let fx = ((x + self.half_width) / (2.0 * self.half_width) * self.cells as f32)
            .clamp(0.0, self.cells as f32);
        let fy = ((y + self.half_width) / (2.0 * self.half_width) * self.cells as f32)
            .clamp(0.0, self.cells as f32);
        let c0 = fx as usize;
        let r0 = fy as usize;
        let c1 = (c0 + 1).min(self.cells);
        let r1 = (r0 + 1).min(self.cells);
        let tx = fx - c0 as f32;
        let ty = fy - r0 as f32;
        let e00 = self.elev[r0 * side + c0];
        let e01 = self.elev[r0 * side + c1];
        let e10 = self.elev[r1 * side + c0];
        let e11 = self.elev[r1 * side + c1];
        let top = e00 * (1.0 - tx) + e01 * tx;
        let bot = e10 * (1.0 - tx) + e11 * tx;
        top * (1.0 - ty) + bot * ty
    }
}

/// Parameters of the terrain-avoidance task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TerrainTaskConfig {
    /// Look-ahead horizon in periods (default: 600 = 5 minutes).
    pub lookahead_periods: f32,
    /// Number of equidistant samples along the projected path.
    pub samples: u32,
    /// Required clearance above terrain, feet.
    pub clearance_ft: f32,
}

impl Default for TerrainTaskConfig {
    fn default() -> Self {
        TerrainTaskConfig {
            lookahead_periods: 600.0,
            samples: 8,
            clearance_ft: 1_000.0,
        }
    }
}

/// Outcome counters of one terrain-avoidance execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TerrainStats {
    /// Aircraft whose projected path violated clearance.
    pub warnings: u64,
    /// Aircraft climbed to restore clearance.
    pub climbs: u64,
    /// Terrain samples taken.
    pub samples: u64,
}

/// The per-aircraft terrain check: project the path, find the highest
/// required altitude along it, climb if below. Constant work per aircraft.
pub fn check_terrain(
    aircraft: &mut [Aircraft],
    i: usize,
    grid: &TerrainGrid,
    tcfg: &TerrainTaskConfig,
    sink: &mut impl CostSink,
) -> TerrainStats {
    let mut stats = TerrainStats::default();
    let a = aircraft[i];
    sink.load(Aircraft::RECORD_BYTES);

    let mut required = 0.0f32;
    // Sample from the *current* position (s = 0) out to the horizon: the
    // boundary re-entry rule can teleport an aircraft under entirely new
    // terrain, so "now" must be part of the check.
    for s in 0..=tcfg.samples {
        let t = tcfg.lookahead_periods * s as f32 / tcfg.samples as f32;
        // Projected position (the grid clamps at the field edge, matching
        // the mirrored re-entry staying inside the same terrain tile set).
        let px = a.x + a.dx * t;
        let py = a.y + a.dy * t;
        sink.fmul(2);
        sink.fadd(2);
        // Bilinear sample: 4 lattice reads (shared, cached on devices with
        // a cache) + ~8 flops.
        sink.load_shared(16);
        sink.fmul(6);
        sink.fadd(5);
        let elev = grid.elevation_at(px, py);
        required = required.max(elev + tcfg.clearance_ft);
        sink.fadd(2);
        stats.samples += 1;
    }

    sink.branch(true);
    if a.alt < required {
        stats.warnings = 1;
        // Resolution: climb to the required altitude (instantaneous in the
        // model; the paper resolves leftover aircraft conflicts by altitude
        // changes the same way).
        aircraft[i].alt = required;
        sink.store(4);
        stats.climbs = 1;
    }
    stats
}

/// Sequential driver: run the check for every aircraft.
pub fn terrain_avoidance_all(
    aircraft: &mut [Aircraft],
    grid: &TerrainGrid,
    tcfg: &TerrainTaskConfig,
    sink: &mut impl CostSink,
) -> TerrainStats {
    let mut total = TerrainStats::default();
    for i in 0..aircraft.len() {
        let s = check_terrain(aircraft, i, grid, tcfg, sink);
        total.warnings += s.warnings;
        total.climbs += s.climbs;
        total.samples += s.samples;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::NullSink;

    fn grid() -> TerrainGrid {
        TerrainGrid::generate(7, 128.0, 32, 8_000.0)
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let a = grid();
        let b = grid();
        assert_eq!(a, b);
        assert!(a.max_elevation() <= 8_000.0 + 1e-3);
        assert!(a.max_elevation() > 0.0);
    }

    #[test]
    fn elevation_sampling_is_continuous_and_clamped() {
        let g = grid();
        // Nearby points have nearby elevations (bilinear continuity).
        let e1 = g.elevation_at(10.0, 10.0);
        let e2 = g.elevation_at(10.01, 10.0);
        assert!((e1 - e2).abs() < 50.0, "{e1} vs {e2}");
        // Outside the grid clamps instead of panicking.
        let _ = g.elevation_at(1_000.0, -1_000.0);
    }

    #[test]
    fn flat_terrain_is_flat() {
        let g = TerrainGrid::flat(128.0, 1_500.0);
        for (x, y) in [(0.0, 0.0), (-100.0, 50.0), (127.0, -127.0)] {
            assert_eq!(g.elevation_at(x, y), 1_500.0);
        }
        assert_eq!(g.max_elevation(), 1_500.0);
    }

    #[test]
    fn low_flyer_over_mountains_gets_climbed() {
        let g = TerrainGrid::flat(128.0, 5_000.0);
        let mut ac = vec![Aircraft::at(0.0, 0.0)
            .with_velocity(0.05, 0.0)
            .with_altitude(2_000.0)];
        let s = check_terrain(&mut ac, 0, &g, &TerrainTaskConfig::default(), &mut NullSink);
        assert_eq!(s.warnings, 1);
        assert_eq!(s.climbs, 1);
        assert_eq!(ac[0].alt, 6_000.0, "climbed to terrain + clearance");
    }

    #[test]
    fn high_flyer_is_left_alone() {
        let g = grid();
        let mut ac = vec![Aircraft::at(0.0, 0.0)
            .with_velocity(0.05, 0.0)
            .with_altitude(39_000.0)];
        let s = check_terrain(&mut ac, 0, &g, &TerrainTaskConfig::default(), &mut NullSink);
        assert_eq!(s.warnings, 0);
        assert_eq!(ac[0].alt, 39_000.0);
    }

    #[test]
    fn sample_count_matches_config() {
        let g = grid();
        let tcfg = TerrainTaskConfig {
            samples: 5,
            ..Default::default()
        };
        let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0)];
        let s = check_terrain(&mut ac, 0, &g, &tcfg, &mut NullSink);
        assert_eq!(s.samples, 6, "look-ahead samples plus the current position");
    }

    #[test]
    fn driver_folds_stats_over_the_fleet() {
        let g = TerrainGrid::flat(128.0, 3_000.0);
        let mut ac = vec![
            Aircraft::at(0.0, 0.0).with_altitude(1_000.0),
            Aircraft::at(5.0, 5.0).with_altitude(20_000.0),
            Aircraft::at(-5.0, -5.0).with_altitude(3_500.0),
        ];
        let s = terrain_avoidance_all(&mut ac, &g, &TerrainTaskConfig::default(), &mut NullSink);
        assert_eq!(s.warnings, 2);
        assert_eq!(s.climbs, 2);
        assert!(ac.iter().all(|a| a.alt >= 4_000.0));
    }

    #[test]
    fn op_accounting_is_constant_per_aircraft() {
        let g = grid();
        let tcfg = TerrainTaskConfig::default();
        let count_for = |n: usize| {
            let mut ac: Vec<Aircraft> = (0..n).map(|k| Aircraft::at(k as f32, 0.0)).collect();
            let mut ops = sim_clock::OpCounter::new();
            terrain_avoidance_all(&mut ac, &g, &tcfg, &mut ops);
            ops.total_compute_ops() as f64 / n as f64
        };
        let per_small = count_for(10);
        let per_large = count_for(1_000);
        assert!(
            (per_small - per_large).abs() < 2.0,
            "{per_small} vs {per_large}"
        );
    }
}
