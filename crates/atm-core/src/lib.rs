//! Air Traffic Management tasks over simulated parallel architectures.
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! three most compute-intensive ATM tasks —
//!
//! * **Task 1** tracking & radar correlation ([`track`]), every half second,
//! * **Task 2** collision detection via Batcher's time-window algorithm
//!   ([`batcher`], [`detect`]), every 8 seconds,
//! * **Task 3** collision resolution by incremental path rotation
//!   ([`detect`]), with Task 2,
//!
//! running inside a simulated airfield ([`airfield`]) under a hard-real-time
//! cyclic executive, on the backend roster ([`backends`]):
//!
//! | Backend | Substrate | Timing |
//! |---|---|---|
//! | [`backends::SequentialBackend`] | host CPU, single thread | measured |
//! | [`backends::GpuBackend`] | [`gpu_sim`] SIMT simulator (9800 GT / 880M / Titan X) | modeled |
//! | [`backends::ApBackend`] | [`ap_sim`] associative processor (STARAN / ClearSpeed) | modeled |
//! | [`backends::MimdBackend`] | real threads ([`multicore::MimdPool`]), racing radar claims | measured |
//! | [`backends::MulticoreBackend`] | thread-pool chunked scan, deterministic outputs | measured |
//! | [`backends::SimdSoaBackend`] | structure-of-arrays branch-free gate kernel | measured |
//! | [`backends::XeonModelBackend`] | analytic 16-core Xeon ([`multicore::XeonModel`]) | modeled |
//!
//! The task algorithms are written once as per-item routines reporting their
//! abstract operation mix through [`sim_clock::CostSink`]; each backend
//! executes them under its own architecture model, so the *same* code paths
//! produce both the functional results and the per-architecture timing that
//! the paper's figures compare.

pub mod airfield;
pub mod backends;
pub mod batcher;
pub mod config;
pub mod detect;
pub mod engine;
pub mod scenario;
pub mod shard;
pub mod sim;
pub mod terrain;
pub mod track;
pub mod types;
pub mod wire;

pub use airfield::{AircraftUpdate, Airfield, IngestReceipt};
pub use backends::AtmBackend;
pub use config::{AtmConfig, ScanMode};
pub use detect::{AltitudeBands, ConflictGrid, ScanIndex};
pub use engine::{AtmEngine, CycleReport};
pub use scenario::{fleet_hash, Scenario, ScenarioKind, ScenarioParams};
pub use shard::{
    detect_resolve_parallel, detect_resolve_via_transport, InProcessTransport, ShardMap,
    ShardTransport, ShardedAirfield, ShardedCycleStats, ShardedIndex, TransportError, TurnOutcome,
    TurnRecord, WaveGroup,
};
pub use sim::{AtmSimulation, SimOutcome, TerrainSchedule};
pub use terrain::{TerrainGrid, TerrainTaskConfig};
pub use types::{Aircraft, RadarReport};
pub use wire::{
    run_shard_worker, Frame, FrameStream, SocketTransport, WorkerOptions, WIRE_VERSION,
};
