//! The simulated airfield: flight setup, radar generation, boundary rules.
//!
//! Implements §4.1 of the paper:
//!
//! * `SetupFlight` — random initial positions in ±128 nm (coordinate drawn
//!   in 0–128, sign from the parity of a 0–50 draw), random speed 30–600
//!   knots decomposed into |dx| and |dy| = √(S² − dx²) with random signs,
//!   converted to nm/period by dividing by 7200, random altitude.
//! * `GenerateRadarData` — at most one report per aircraft per period, at
//!   the aircraft's *expected* position plus uniform noise with random
//!   sign per axis; the report list is then "jumbled" exactly the way the
//!   paper does it: split into fourths and each fourth reversed, so the
//!   tracking kernel cannot match `radar[i]` to `drone[i]` by index.
//! * Boundary rule — an aircraft leaving the grid at `(x, y)` re-enters
//!   with the same velocity at `(−x, −y)`.

use crate::config::AtmConfig;
use crate::types::{Aircraft, RadarReport, NO_COLLISION};
use sim_clock::SimRng;

/// One externally ingested state update for aircraft `id`: the service
/// layer's surveillance truth — position, altitude and velocity — replacing
/// the simulated track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AircraftUpdate {
    /// Index of the aircraft in the fleet.
    pub id: u32,
    /// New x position (nm).
    pub x: f32,
    /// New y position (nm).
    pub y: f32,
    /// New altitude (ft).
    pub alt: f32,
    /// New x velocity (nm per period).
    pub dx: f32,
    /// New y velocity (nm per period).
    pub dy: f32,
}

/// Receipt for one [`Airfield::apply_updates`] batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The airfield's ingest sequence number after this batch (batches are
    /// numbered 1, 2, 3, … in application order).
    pub seq: u64,
    /// Updates applied to known aircraft.
    pub applied: u32,
    /// Updates dropped because `id` was out of range.
    pub unknown: u32,
}

/// The airfield: aircraft state plus the seeded RNG that drives setup and
/// radar noise.
#[derive(Clone, Debug)]
pub struct Airfield {
    /// Current flight records.
    pub aircraft: Vec<Aircraft>,
    cfg: AtmConfig,
    rng: SimRng,
    periods_elapsed: u64,
    ingest_seq: u64,
}

impl Airfield {
    /// Create an airfield with `n` aircraft per the paper's `SetupFlight`.
    pub fn new(n: usize, cfg: AtmConfig) -> Airfield {
        cfg.validate();
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let aircraft = (0..n).map(|_| setup_flight(&mut rng, &cfg)).collect();
        Airfield {
            aircraft,
            cfg,
            rng,
            periods_elapsed: 0,
            ingest_seq: 0,
        }
    }

    /// Create with the paper's default parameters and a seed.
    pub fn with_seed(n: usize, seed: u64) -> Airfield {
        Airfield::new(n, AtmConfig::with_seed(seed))
    }

    /// Wrap an externally generated fleet (e.g. a [`crate::scenario`]
    /// catalog entry) in a fresh airfield: the radar RNG is seeded from
    /// `cfg.seed` exactly as [`Airfield::new`] seeds it, but no setup draws
    /// are consumed — the fleet arrives ready-made.
    pub fn from_aircraft(aircraft: Vec<Aircraft>, cfg: AtmConfig) -> Airfield {
        cfg.validate();
        let rng = SimRng::seed_from_u64(cfg.seed);
        Airfield {
            aircraft,
            cfg,
            rng,
            periods_elapsed: 0,
            ingest_seq: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AtmConfig {
        &self.cfg
    }

    /// Number of aircraft.
    pub fn len(&self) -> usize {
        self.aircraft.len()
    }

    /// True when no aircraft are present.
    pub fn is_empty(&self) -> bool {
        self.aircraft.is_empty()
    }

    /// Periods simulated so far.
    pub fn periods_elapsed(&self) -> u64 {
        self.periods_elapsed
    }

    /// Generate this period's radar reports: expected position + noise,
    /// then the paper's quarter-reversal shuffle. With a nonzero
    /// `radar_dropout`, some aircraft produce no report this period (they
    /// will coast on their expected positions until radar reacquires them).
    pub fn generate_radar(&mut self) -> Vec<RadarReport> {
        let noise = self.cfg.radar_noise_nm;
        let dropout = self.cfg.radar_dropout;
        let mut reports: Vec<RadarReport> = Vec::with_capacity(self.aircraft.len());
        for a in &self.aircraft {
            // Consume the noise draws even for dropped reports so dropout
            // does not perturb the RNG stream of the surviving ones.
            let nx: f32 = self.rng.range_f32_inclusive(-noise, noise);
            let ny: f32 = self.rng.range_f32_inclusive(-noise, noise);
            if dropout > 0.0 && self.rng.next_f32() < dropout {
                continue;
            }
            reports.push(RadarReport::at(a.x + a.dx + nx, a.y + a.dy + ny));
        }
        shuffle_quarters(&mut reports);
        reports
    }

    /// End-of-period housekeeping: apply the boundary re-entry rule and
    /// advance the period counter. Positions themselves are advanced by
    /// Task 1 (aircraft adopt their expected or radar position), so this
    /// only handles the grid exit rule.
    pub fn end_period(&mut self) {
        let hw = self.cfg.half_width;
        for a in &mut self.aircraft {
            if a.x.abs() > hw || a.y.abs() > hw {
                // Re-enter at the mirrored point with the same velocity.
                a.x = -a.x.clamp(-hw, hw);
                a.y = -a.y.clamp(-hw, hw);
            }
        }
        self.periods_elapsed += 1;
    }

    /// Replace the flight set (used by scenario examples and tests).
    pub fn set_aircraft(&mut self, aircraft: Vec<Aircraft>) {
        self.aircraft = aircraft;
    }

    /// Ingest batches applied so far (the next receipt carries this + 1).
    pub fn ingest_seq(&self) -> u64 {
        self.ingest_seq
    }

    /// Apply one batch of external updates in place, atomically with the
    /// ingest bookkeeping the service layer needs: every applied update
    /// rewrites the aircraft's kinematic state (position, altitude,
    /// velocity and the derived `batx`/`baty`/expected-position mirrors),
    /// re-applies the boundary re-entry rule, and bumps the single batch
    /// sequence number — one call, one receipt.
    ///
    /// Unlike [`Airfield::set_aircraft`] (a wholesale fleet swap with no
    /// bookkeeping), this is the mutation path the persistent
    /// [`IncrementalEngine`] is guaranteed to observe correctly: every
    /// changed field is part of the engine's per-aircraft scan key, so its
    /// next update pass diffs the key bits and bumps the dirty-cell clocks
    /// of exactly the slots each updated aircraft left and entered.
    /// (`IncrementalGrid::note_commit` must *not* be used here — it
    /// refreshes the key mirror without moving slot membership, which is
    /// only sound for in-place velocity commits, never for cell-crossing
    /// position ingests.)
    ///
    /// [`IncrementalEngine`]: crate::detect::IncrementalEngine
    /// [`IncrementalGrid::note_commit`]: crate::detect::IncrementalGrid::note_commit
    pub fn apply_updates(&mut self, updates: &[AircraftUpdate]) -> IngestReceipt {
        let hw = self.cfg.half_width;
        let mut applied = 0u32;
        let mut unknown = 0u32;
        for u in updates {
            let Some(a) = self.aircraft.get_mut(u.id as usize) else {
                unknown += 1;
                continue;
            };
            a.x = u.x;
            a.y = u.y;
            a.alt = u.alt;
            a.dx = u.dx;
            a.dy = u.dy;
            a.batx = u.dx;
            a.baty = u.dy;
            if a.x.abs() > hw || a.y.abs() > hw {
                // Same re-entry rule as `end_period`: an update placing the
                // aircraft outside the grid mirrors it back in.
                a.x = -a.x.clamp(-hw, hw);
                a.y = -a.y.clamp(-hw, hw);
            }
            a.expected_x = a.x;
            a.expected_y = a.y;
            applied += 1;
        }
        self.ingest_seq += 1;
        IngestReceipt {
            seq: self.ingest_seq,
            applied,
            unknown,
        }
    }
}

/// One aircraft per the paper's `SetupFlight` procedure.
fn setup_flight(rng: &mut SimRng, cfg: &AtmConfig) -> Aircraft {
    // Position: magnitude 0..=half_width, sign from the parity of a 0..=50
    // draw (even → negative x; odd → negative y), as §4.1 specifies.
    let mut x: f32 = rng.range_f32(0.0, cfg.half_width);
    let mut y: f32 = rng.range_f32(0.0, cfg.half_width);
    if rng.range_u32_inclusive(0, 50).is_multiple_of(2) {
        x = -x;
    }
    if rng.range_u32_inclusive(0, 50) % 2 == 1 {
        y = -y;
    }

    // Speed S in knots; |dx| uniform in [speed_min, S] (the paper draws Δx
    // "between 30 and 600" — it must not exceed S for dy to be real);
    // |dy| = sqrt(S² − dx²); random signs.
    let s: f32 = rng.range_f32_inclusive(cfg.speed_min_kts, cfg.speed_max_kts);
    let dx_mag: f32 = if s > cfg.speed_min_kts {
        rng.range_f32_inclusive(cfg.speed_min_kts, s)
    } else {
        s
    };
    let dy_mag = (s * s - dx_mag * dx_mag).max(0.0).sqrt();
    let dx_sign = if rng.range_u32_inclusive(0, 50).is_multiple_of(2) {
        -1.0
    } else {
        1.0
    };
    let dy_sign = if rng.range_u32_inclusive(0, 50) % 2 == 1 {
        -1.0
    } else {
        1.0
    };

    // Knots → nm per period.
    let dx = dx_sign * dx_mag / cfg.periods_per_hour;
    let dy = dy_sign * dy_mag / cfg.periods_per_hour;

    let alt = rng.range_f32_inclusive(cfg.alt_min_ft, cfg.alt_max_ft);

    Aircraft {
        x,
        y,
        dx,
        dy,
        batx: dx,
        baty: dy,
        alt,
        col: false,
        time_till: cfg.critical_periods,
        col_with: NO_COLLISION,
        r_match: 0,
        expected_x: x,
        expected_y: y,
    }
}

/// The paper's shuffle: split the list into fourths, reverse each fourth.
pub fn shuffle_quarters<T>(items: &mut [T]) {
    let n = items.len();
    if n < 2 {
        return;
    }
    let q = n / 4;
    let bounds = [0, q, 2 * q, 3 * q, n];
    for w in bounds.windows(2) {
        items[w[0]..w[1]].reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Airfield {
        Airfield::with_seed(n, 42)
    }

    #[test]
    fn setup_places_aircraft_inside_the_grid() {
        let f = field(500);
        for a in &f.aircraft {
            assert!(a.x.abs() <= 128.0, "x out of grid: {}", a.x);
            assert!(a.y.abs() <= 128.0, "y out of grid: {}", a.y);
            assert!(a.alt >= 1_000.0 && a.alt <= 40_000.0);
        }
    }

    #[test]
    fn setup_speeds_are_in_the_paper_range() {
        let f = field(500);
        let cfg = AtmConfig::default();
        for a in &f.aircraft {
            let kts = a.speed() * cfg.periods_per_hour;
            assert!(
                kts >= cfg.speed_min_kts - 0.1 && kts <= cfg.speed_max_kts + 0.1,
                "speed {kts} kts out of [30, 600]"
            );
        }
    }

    #[test]
    fn setup_produces_all_four_heading_quadrants() {
        let f = field(1000);
        let (mut pp, mut pn, mut np, mut nn) = (0, 0, 0, 0);
        for a in &f.aircraft {
            match (a.dx > 0.0, a.dy > 0.0) {
                (true, true) => pp += 1,
                (true, false) => pn += 1,
                (false, true) => np += 1,
                (false, false) => nn += 1,
            }
        }
        assert!(pp > 0 && pn > 0 && np > 0 && nn > 0, "{pp} {pn} {np} {nn}");
    }

    #[test]
    fn same_seed_reproduces_the_field_exactly() {
        let a = field(100);
        let b = field(100);
        assert_eq!(a.aircraft, b.aircraft);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Airfield::with_seed(100, 1);
        let b = Airfield::with_seed(100, 2);
        assert_ne!(a.aircraft, b.aircraft);
    }

    #[test]
    fn radar_reports_are_near_expected_positions() {
        let mut f = field(200);
        let expected: Vec<(f32, f32)> = f
            .aircraft
            .iter()
            .map(|a| (a.x + a.dx, a.y + a.dy))
            .collect();
        let radars = f.generate_radar();
        assert_eq!(radars.len(), 200);
        // After unshuffling, each report must lie within the noise box of
        // its aircraft's expected position.
        let mut unshuffled = radars.clone();
        shuffle_quarters(&mut unshuffled); // reversal is an involution
        for (r, (ex, ey)) in unshuffled.iter().zip(&expected) {
            assert!((r.rx - ex).abs() <= 0.2 + 1e-5);
            assert!((r.ry - ey).abs() <= 0.2 + 1e-5);
            assert!(r.unmatched());
        }
    }

    #[test]
    fn radar_list_is_jumbled() {
        let mut f = field(400);
        let expected_first = f.aircraft[0].x + f.aircraft[0].dx;
        let radars = f.generate_radar();
        // The first report now comes from the end of the first quarter, not
        // aircraft 0 (overwhelmingly unlikely to coincide within noise).
        assert!((radars[0].rx - expected_first).abs() > 0.5);
    }

    #[test]
    fn shuffle_quarters_is_an_involution() {
        let mut v: Vec<u32> = (0..17).collect();
        let orig = v.clone();
        shuffle_quarters(&mut v);
        assert_ne!(v, orig);
        shuffle_quarters(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn shuffle_handles_tiny_lists() {
        let mut v = vec![1];
        shuffle_quarters(&mut v);
        assert_eq!(v, vec![1]);
        let mut v: Vec<u32> = vec![];
        shuffle_quarters(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn boundary_exit_reenters_mirrored() {
        let mut f = field(1);
        f.aircraft[0].x = 130.0;
        f.aircraft[0].y = 50.0;
        let (dx, dy) = (f.aircraft[0].dx, f.aircraft[0].dy);
        f.end_period();
        assert_eq!(f.aircraft[0].x, -128.0);
        assert_eq!(f.aircraft[0].y, -50.0);
        assert_eq!(f.aircraft[0].dx, dx, "velocity preserved on re-entry");
        assert_eq!(f.aircraft[0].dy, dy);
        assert_eq!(f.periods_elapsed(), 1);
    }

    #[test]
    fn in_grid_aircraft_are_untouched_by_end_period() {
        let mut f = field(3);
        let before = f.aircraft.clone();
        f.end_period();
        assert_eq!(f.aircraft, before);
    }

    #[test]
    fn radar_dropout_thins_the_report_list() {
        let mut cfg = AtmConfig::with_seed(5);
        cfg.radar_dropout = 0.3;
        let mut f = Airfield::new(1_000, cfg);
        let radars = f.generate_radar();
        assert!(radars.len() < 1_000, "dropout must remove some reports");
        assert!(radars.len() > 500, "but not most of them");
    }

    #[test]
    fn dropped_radar_leaves_aircraft_coasting() {
        use crate::track::track_correlate;
        use sim_clock::NullSink;
        let mut cfg = AtmConfig::with_seed(6);
        cfg.radar_dropout = 1.0; // every report lost
        let mut f = Airfield::new(50, cfg.clone());
        let before = f.aircraft.clone();
        let mut radars = f.generate_radar();
        assert!(radars.is_empty());
        let stats = track_correlate(&mut f.aircraft, &mut radars, &cfg, &mut NullSink);
        assert_eq!(stats.matched, 0);
        for (a, b) in f.aircraft.iter().zip(&before) {
            assert!(
                (a.x - (b.x + b.dx)).abs() < 1e-6,
                "must coast on expected position"
            );
        }
    }

    #[test]
    fn radar_generation_consumes_rng_deterministically() {
        let mut a = field(64);
        let mut b = field(64);
        assert_eq!(a.generate_radar(), b.generate_radar());
        // Second period differs from the first (fresh noise) but still
        // matches between equal-seeded fields.
        let ra = a.generate_radar();
        let rb = b.generate_radar();
        assert_eq!(ra, rb);
    }
}
