//! The CUDA implementation of the ATM tasks, on the simulated devices.
//!
//! Mirrors the paper's program structure (§4–§5):
//!
//! * the flight database (`drone` structs) lives in device global memory
//!   and is uploaded once at setup;
//! * every period the fresh (host-shuffled) radar list is uploaded, then
//!   Task 1 runs as a short pipeline of kernels — expected-position
//!   initialization, one correlation kernel per expanding-box pass (grid
//!   synchronization between passes requires separate launches), and the
//!   position-apply kernels;
//! * Tasks 2+3 run as the single fused `CheckCollisionPath` kernel, one
//!   thread per aircraft — the paper's design choice to avoid host↔device
//!   round-trips between detection and resolution. The split variant the
//!   ablation bench compares against is [`GpuBackend::detect_resolve_split`].
//!
//! Launch geometry follows the paper: 96 threads per block, blocks scaling
//! with the aircraft count (configurable for the block-size ablation).

use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::config::AtmConfig;
use crate::detect::{check_collision_path_with, detect_only_with, DetectStats, ScanIndex};
use crate::terrain::{check_terrain, TerrainGrid, TerrainTaskConfig};
use crate::track::{
    adopt_expected_phase, apply_radar_phase, correlate_radar_pass, expected_position_phase,
};
use crate::types::{Aircraft, RadarReport};
use gpu_sim::report::TransferDir;
use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
use sim_clock::{CostSink, SimDuration};
use telemetry::Recorder;

/// The paper's threads-per-block choice.
pub const PAPER_BLOCK_SIZE: u32 = 96;

/// ATM on a simulated NVIDIA device.
pub struct GpuBackend {
    device: CudaDevice,
    block_size: u32,
    last_detect: Option<DetectStats>,
    platform: PlatformId,
    device_summary: String,
}

impl GpuBackend {
    /// ATM on an arbitrary device spec with the paper's block size.
    pub fn new(spec: DeviceSpec) -> Self {
        GpuBackend::with_block_size(spec, PAPER_BLOCK_SIZE)
    }

    /// Override the threads-per-block (block-size ablation). Custom specs
    /// outside the paper's three-card catalog report the Titan-class
    /// platform id.
    pub fn with_block_size(spec: DeviceSpec, block_size: u32) -> Self {
        assert!(block_size > 0);
        let platform = PlatformId::from_device_name(spec.name).unwrap_or(PlatformId::TitanXPascal);
        let device_summary = format!(
            "{} CUDA cores @ {} MHz, {} SMs",
            spec.total_cores(),
            spec.clock_mhz,
            spec.sm_count
        );
        GpuBackend {
            device: CudaDevice::new(spec),
            block_size,
            last_detect: None,
            platform,
            device_summary,
        }
    }

    /// The paper's GeForce 9800 GT.
    pub fn geforce_9800_gt() -> Self {
        GpuBackend::new(DeviceSpec::geforce_9800_gt())
    }

    /// The paper's GTX 880M.
    pub fn gtx_880m() -> Self {
        GpuBackend::new(DeviceSpec::gtx_880m())
    }

    /// The paper's Titan X (Pascal).
    pub fn titan_x_pascal() -> Self {
        GpuBackend::new(DeviceSpec::titan_x_pascal())
    }

    /// The underlying simulated device (stats, timeline).
    pub fn device(&self) -> &CudaDevice {
        &self.device
    }

    /// Stats of the most recent detection kernel.
    pub fn last_detect_stats(&self) -> Option<DetectStats> {
        self.last_detect
    }

    fn launch_config(&self, items: usize) -> LaunchConfig {
        LaunchConfig::cover(items.max(1), self.block_size)
    }

    /// The one candidate index a detect entry point builds per rescan and
    /// passes through every launch it performs: positions and altitudes are
    /// static for the whole rescan (even across the split variant's
    /// detect→resolve round trip, which only changes velocities and flags),
    /// and the index is host-side pruning only — modeled time is
    /// unaffected.
    fn scan_index(aircraft: &[Aircraft], cfg: &AtmConfig) -> ScanIndex {
        ScanIndex::for_config(aircraft, cfg)
    }

    /// Tasks 2+3 with **shared-memory tiling** (the optimization the paper
    /// deliberately forgoes to stay compatible with compute capability 1.x
    /// global-memory-only code, §5): each block cooperatively stages a tile
    /// of trial aircraft into shared memory (one coalesced load per record
    /// per *block* instead of per warp/lane), synchronizes, and scans the
    /// tile at register speed. Functionally identical to the fused kernel;
    /// the tiling ablation quantifies the traffic it saves — dramatic on
    /// the cacheless 9800 GT.
    pub fn detect_resolve_tiled(
        &mut self,
        aircraft: &mut [Aircraft],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        let lc = self.launch_config(n);
        let block = self.block_size as usize;
        let index = Self::scan_index(aircraft, cfg);
        let mut stats = DetectStats::default();
        self.device
            .launch("CheckCollisionPath.tiled", lc, |ctx, tr| {
                if ctx.in_range(n) {
                    // Functional result: identical to the fused kernel.
                    let s = check_collision_path_with(aircraft, &index, ctx.global_id(), cfg, tr);
                    stats.absorb(&s);
                    // Re-price the memory side: the scan above charged one
                    // warp-uniform load per trial record; under tiling each
                    // thread instead loads its share of every tile once
                    // (coalesced private traffic) and pays a barrier per tile.
                    // Scans per aircraft = 1 + rotations (each rescan rewalks
                    // the tiles resident in shared memory: no re-load needed).
                    let tiles = n.div_ceil(block) as u64;
                    tr.load((n as u64 * Aircraft::RECORD_BYTES).div_ceil(block as u64));
                    tr.op(sim_clock::OpClass::Sync, tiles);
                    // Remove the uniform-load accounting the shared scan added
                    // (priced instead by the tile staging above).
                    tr.bytes_loaded_uniform = 0;
                }
            });
        self.last_detect = Some(stats);
        self.device.elapsed() - t0
    }

    /// Split-kernel Tasks 2+3 (the fusion ablation's baseline): a detect
    /// kernel, a D2H copy of the conflict flags, host triage, an H2D copy,
    /// and a resolve kernel over the flagged aircraft — the exact overhead
    /// the paper's fused design eliminates.
    pub fn detect_resolve_split(
        &mut self,
        aircraft: &mut [Aircraft],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        let lc = self.launch_config(n);
        let index = Self::scan_index(aircraft, cfg);

        let mut stats = DetectStats::default();
        self.device.launch("DetectOnly", lc, |ctx, tr| {
            if ctx.in_range(n) {
                let s = detect_only_with(aircraft, &index, ctx.global_id(), cfg, tr);
                stats.pair_checks += s.pair_checks;
                stats.critical_conflicts += s.critical_conflicts;
            }
        });

        // Conflict flags back to the host, triage, flagged set back down.
        self.device
            .transfer(TransferDir::DeviceToHost, n as u64 * Aircraft::RECORD_BYTES);
        let flagged: Vec<usize> = (0..n).filter(|&i| aircraft[i].col).collect();
        self.device
            .transfer(TransferDir::HostToDevice, flagged.len().max(1) as u64 * 8);

        let m = flagged.len();
        if m > 0 {
            let lc2 = self.launch_config(m);
            self.device.launch("ResolveOnly", lc2, |ctx, tr| {
                if ctx.in_range(m) {
                    let s = check_collision_path_with(
                        aircraft,
                        &index,
                        flagged[ctx.global_id()],
                        cfg,
                        tr,
                    );
                    stats.rotations += s.rotations;
                    stats.resolved += s.resolved;
                    stats.unresolved += s.unresolved;
                }
            });
        }
        self.last_detect = Some(stats);
        self.device.elapsed() - t0
    }
}

impl AtmBackend for GpuBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: self.device.spec().name,
            platform: self.platform,
            timing: TimingKind::Modeled,
            device: &self.device_summary,
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.device.set_recorder(recorder);
    }

    fn on_setup(&mut self, aircraft: &[Aircraft]) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        // SetupFlight: every thread initializes one record in global
        // memory (a handful of ALU ops + the record store).
        let lc = self.launch_config(n);
        self.device.launch("SetupFlight", lc, |ctx, tr| {
            if ctx.in_range(n) {
                tr.ialu(8);
                tr.fmul(4);
                tr.fsqrt(1);
                tr.store(Aircraft::RECORD_BYTES);
            }
        });
        // Host mirror of the initialized database (the paper copies the
        // drone data back after setup to seed radar generation).
        self.device
            .transfer(TransferDir::DeviceToHost, n as u64 * Aircraft::RECORD_BYTES);
        self.device.elapsed() - t0
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        let r = radars.len();

        // The host-shuffled radar list for this period goes down to the
        // device (paper §4.1, GenerateRadarData round trip).
        self.device.transfer(
            TransferDir::HostToDevice,
            r as u64 * RadarReport::RECORD_BYTES,
        );

        let ac_cfg = self.launch_config(n);
        let rd_cfg = self.launch_config(r);

        self.device.launch("TrackExpected", ac_cfg, |ctx, tr| {
            if ctx.in_range(n) {
                expected_position_phase(aircraft, ctx.global_id(), tr);
            }
        });

        // One launch per expanding-box pass: a pass needs the previous
        // pass's matches grid-wide, and grid-level synchronization on CUDA
        // means separate kernel launches. Threads whose radar is already
        // settled exit immediately (priced as the early-out branch).
        for pass in 0..cfg.track_passes {
            self.device
                .launch(&format!("TrackCorrelate.pass{pass}"), rd_cfg, |ctx, tr| {
                    if ctx.in_range(r) {
                        correlate_radar_pass(aircraft, radars, ctx.global_id(), pass, cfg, tr);
                    }
                });
        }

        self.device.launch("TrackAdopt", ac_cfg, |ctx, tr| {
            if ctx.in_range(n) {
                adopt_expected_phase(aircraft, ctx.global_id(), tr);
            }
        });
        self.device.launch("TrackApply", rd_cfg, |ctx, tr| {
            if ctx.in_range(r) {
                apply_radar_phase(aircraft, radars, ctx.global_id(), tr);
            }
        });

        self.device.elapsed() - t0
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        let lc = self.launch_config(n);
        let index = Self::scan_index(aircraft, cfg);
        let mut stats = DetectStats::default();
        self.device.launch("CheckCollisionPath", lc, |ctx, tr| {
            if ctx.in_range(n) {
                let s = check_collision_path_with(aircraft, &index, ctx.global_id(), cfg, tr);
                stats.absorb(&s);
            }
        });
        self.last_detect = Some(stats);
        self.device.elapsed() - t0
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        let t0 = self.device.elapsed();
        let n = aircraft.len();
        let lc = self.launch_config(n);
        self.device.launch("TerrainAvoid", lc, |ctx, tr| {
            if ctx.in_range(n) {
                check_terrain(aircraft, ctx.global_id(), grid, tcfg, tr);
            }
        });
        self.device.elapsed() - t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::SequentialBackend;

    fn run_track(
        backend: &mut dyn AtmBackend,
        n: usize,
        seed: u64,
    ) -> (Vec<Aircraft>, Vec<RadarReport>, SimDuration) {
        let mut field = Airfield::with_seed(n, seed);
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
        (field.aircraft, radars, d)
    }

    #[test]
    fn gpu_track_matches_sequential_reference_exactly() {
        let mut gpu = GpuBackend::titan_x_pascal();
        let mut seq = SequentialBackend::new();
        let (ac_gpu, rd_gpu, _) = run_track(&mut gpu, 300, 5);
        let (ac_seq, rd_seq, _) = run_track(&mut seq, 300, 5);
        assert_eq!(ac_gpu, ac_seq);
        assert_eq!(rd_gpu, rd_seq);
    }

    #[test]
    fn gpu_detect_matches_sequential_reference_exactly() {
        let cfg = AtmConfig::default();
        let mut field = Airfield::with_seed(300, 6);
        let mut ac_gpu = field.aircraft.clone();
        let mut ac_seq = field.aircraft.clone();
        GpuBackend::gtx_880m().detect_resolve(&mut ac_gpu, &cfg);
        SequentialBackend::new().detect_resolve(&mut ac_seq, &cfg);
        assert_eq!(ac_gpu, ac_seq);
        let _ = &mut field;
    }

    #[test]
    fn newer_cards_are_faster() {
        let (_, _, t_old) = run_track(&mut GpuBackend::geforce_9800_gt(), 2_000, 7);
        let (_, _, t_mid) = run_track(&mut GpuBackend::gtx_880m(), 2_000, 7);
        let (_, _, t_new) = run_track(&mut GpuBackend::titan_x_pascal(), 2_000, 7);
        assert!(t_old > t_mid, "9800 GT {t_old} vs 880M {t_mid}");
        assert!(t_mid > t_new, "880M {t_mid} vs Titan X {t_new}");
    }

    #[test]
    fn timing_is_deterministic_across_runs() {
        let (_, _, a) = run_track(&mut GpuBackend::titan_x_pascal(), 500, 9);
        let (_, _, b) = run_track(&mut GpuBackend::titan_x_pascal(), 500, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn track_uses_the_papers_kernel_pipeline() {
        let mut gpu = GpuBackend::titan_x_pascal();
        run_track(&mut gpu, 200, 1);
        let stats = gpu.device().stats();
        // expected + 3 passes + adopt + apply = 6 launches, 1 H2D radar
        // transfer.
        assert_eq!(stats.launches, 6);
        assert_eq!(stats.h2d_transfers, 1);
    }

    #[test]
    fn setup_charges_upload_and_kernel() {
        let field = Airfield::with_seed(100, 2);
        let mut gpu = GpuBackend::titan_x_pascal();
        let d = gpu.on_setup(&field.aircraft);
        assert!(d > SimDuration::ZERO);
        assert_eq!(gpu.device().stats().launches, 1);
        assert_eq!(gpu.device().stats().d2h_transfers, 1);
    }

    #[test]
    fn fused_detect_is_one_launch_split_is_more() {
        let cfg = AtmConfig::default();
        let field = Airfield::with_seed(400, 3);

        let mut fused = GpuBackend::titan_x_pascal();
        let mut ac = field.aircraft.clone();
        fused.detect_resolve(&mut ac, &cfg);
        assert_eq!(fused.device().stats().launches, 1);

        let mut split = GpuBackend::titan_x_pascal();
        let mut ac2 = field.aircraft.clone();
        split.detect_resolve_split(&mut ac2, &cfg);
        assert!(split.device().stats().launches >= 1);
        assert!(
            split.device().stats().d2h_transfers >= 1,
            "split pays the round trip"
        );
    }

    #[test]
    fn block_size_override_changes_geometry_not_results() {
        let cfg = AtmConfig::default();
        let field = Airfield::with_seed(300, 4);
        let mut a = field.aircraft.clone();
        let mut b = field.aircraft.clone();
        GpuBackend::titan_x_pascal().detect_resolve(&mut a, &cfg);
        GpuBackend::with_block_size(DeviceSpec::titan_x_pascal(), 256).detect_resolve(&mut b, &cfg);
        assert_eq!(a, b, "block size is a performance knob, not a semantic one");
    }

    #[test]
    fn empty_field_still_works() {
        let cfg = AtmConfig::default();
        let mut gpu = GpuBackend::titan_x_pascal();
        let mut ac: Vec<Aircraft> = vec![];
        let mut rd: Vec<RadarReport> = vec![];
        let d = gpu.track_correlate(&mut ac, &mut rd, &cfg);
        assert!(d > SimDuration::ZERO, "launch overheads still accrue");
    }
}
