//! The real-thread shared-memory MIMD implementation of the ATM tasks.
//!
//! This is the honest multi-core baseline: the tasks run on actual host
//! threads ([`multicore::MimdPool`]) over a shared flight database, and the
//! reported durations are *measured wall time* — including all the
//! scheduling noise, cache traffic and synchronization cost that make MIMD
//! timing unpredictable, which is the property the paper holds against
//! multi-cores for hard-real-time use.
//!
//! Parallelization structure (mirroring the prior work's Xeon program):
//!
//! * **Task 1** — barrier phases. The per-aircraft phases partition
//!   disjointly; the per-radar correlation phase shares the aircraft match
//!   state through atomics, with a compare-and-swap claim protocol: a CAS
//!   `NONE → ONE` claims an aircraft for a radar, and a lost race is
//!   exactly the "two radars hit one aircraft" rule, so the loser marks
//!   the aircraft [`MATCH_MULTIPLE`]. Because radar threads race, which
//!   radar wins a claim can differ from the sequential serialization —
//!   real MIMD non-determinism, surfaced rather than hidden (the final
//!   states still satisfy all of Task 1's invariants; see tests).
//! * **Tasks 2+3** — each thread resolves its aircraft against an
//!   immutable snapshot of the fleet taken at the start of the task, then
//!   a commit phase applies the new paths and a short sequential pass
//!   applies partner markings. (The sequential/GPU cascade lets aircraft
//!   `i` see `j < i`'s already-resolved path; a parallel implementation
//!   cannot, so this backend trades that freshness for parallelism — the
//!   standard shared-memory formulation.)

use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
#[cfg(test)]
use crate::batcher::conflict_window;
use crate::config::AtmConfig;
use crate::detect::{rotate_velocity, scan_pairs, ScanIndex};
use crate::terrain::{check_terrain, TerrainGrid, TerrainTaskConfig};
use crate::track::any_unmatched;
use crate::types::{
    Aircraft, RadarReport, MATCH_MULTIPLE, MATCH_NONE, MATCH_ONE, NO_COLLISION, RADAR_DISCARDED,
    RADAR_UNMATCHED,
};
use multicore::MimdPool;
use sim_clock::{NullSink, SimDuration, Stopwatch};
use std::sync::atomic::{AtomicI32, Ordering};
use telemetry::Recorder;

/// ATM on real host threads over shared memory.
pub struct MimdBackend {
    pool: MimdPool,
    /// Formatted once at construction so [`AtmBackend::info`] can borrow.
    name: String,
    device: String,
}

impl MimdBackend {
    /// A backend with `threads` worker threads (the paper's Xeon had 16).
    pub fn new(threads: usize) -> Self {
        MimdBackend::from_pool(MimdPool::new(threads))
    }

    /// A backend sized to the host.
    pub fn host_sized() -> Self {
        MimdBackend::from_pool(MimdPool::host_sized())
    }

    fn from_pool(pool: MimdPool) -> Self {
        let name = format!("MIMD host ({} threads)", pool.threads());
        let device = format!("host CPU, {} worker threads", pool.threads());
        MimdBackend { pool, name, device }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

/// Outcome of one aircraft's snapshot resolution, applied at commit time.
#[derive(Clone, Copy, Debug, Default)]
struct ResolveOutcome {
    new_vel: Option<(f32, f32)>,
    col: bool,
    col_with: i32,
    time_till: f32,
    partner_mark: Option<(usize, f32)>,
}

impl AtmBackend for MimdBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: &self.name,
            platform: PlatformId::MimdHost,
            timing: TimingKind::Measured,
            device: &self.device,
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.pool.set_recorder(recorder);
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        let n = aircraft.len();

        // Phase A: expected positions (disjoint per aircraft).
        self.pool.parallel_for_mut(aircraft, |_, a| {
            a.expected_x = a.x + a.dx;
            a.expected_y = a.y + a.dy;
            a.r_match = MATCH_NONE;
        });

        // Shared correlation state: expected positions are read-only during
        // the radar phase; match state and radar claims go through atomics.
        let expected: Vec<(f32, f32)> = aircraft
            .iter()
            .map(|a| (a.expected_x, a.expected_y))
            .collect();
        let match_state: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(MATCH_NONE)).collect();
        let claimed_by: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(-1)).collect();

        for pass in 0..cfg.track_passes {
            if pass > 0 && !any_unmatched(radars) {
                break;
            }
            let hw = cfg.pass_half_width(pass);
            let expected = &expected;
            let match_state = &match_state;
            let claimed_by = &claimed_by;
            self.pool.parallel_for_mut(radars, |i, radar| {
                if radar.r_match_with != RADAR_UNMATCHED {
                    return;
                }
                let mut first: Option<usize> = None;
                let mut extra = false;
                for p in 0..n {
                    let st = match_state[p].load(Ordering::Acquire);
                    if st == MATCH_MULTIPLE {
                        continue;
                    }
                    if pass > 0 && st == MATCH_ONE {
                        continue;
                    }
                    let (ex, ey) = expected[p];
                    if (radar.rx - ex).abs() >= hw || (radar.ry - ey).abs() >= hw {
                        continue;
                    }
                    if st == MATCH_ONE {
                        // Second radar on a matched aircraft: drop it.
                        match_state[p].store(MATCH_MULTIPLE, Ordering::Release);
                        continue;
                    }
                    if first.is_none() {
                        first = Some(p);
                    } else {
                        extra = true;
                    }
                }
                if extra {
                    radar.r_match_with = RADAR_DISCARDED;
                } else if let Some(p) = first {
                    match match_state[p].compare_exchange(
                        MATCH_NONE,
                        MATCH_ONE,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            radar.r_match_with = p as i32;
                            claimed_by[p].store(i as i32, Ordering::Release);
                        }
                        Err(_) => {
                            // A concurrent radar claimed it first: the
                            // aircraft has seen two radars.
                            match_state[p].store(MATCH_MULTIPLE, Ordering::Release);
                        }
                    }
                }
            });
        }

        // Commit phase: fold atomic state back and adopt positions.
        let radars_ro: &[RadarReport] = radars;
        let match_state = &match_state;
        let claimed_by = &claimed_by;
        self.pool.parallel_for_mut(aircraft, |p, a| {
            a.r_match = match_state[p].load(Ordering::Acquire);
            a.x = a.expected_x;
            a.y = a.expected_y;
            if a.r_match == MATCH_ONE {
                let c = claimed_by[p].load(Ordering::Acquire);
                if c >= 0 {
                    let r = &radars_ro[c as usize];
                    a.x = r.rx;
                    a.y = r.ry;
                }
            }
        });

        sw.elapsed()
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let sw = Stopwatch::start();
        let n = aircraft.len();
        let snapshot: Vec<Aircraft> = aircraft.to_vec();
        let rotations = cfg.rotation_sequence();
        // Shared read-only across worker threads; the snapshot's positions
        // and altitudes are frozen, so one index serves every thread.
        let index = ScanIndex::for_config(&snapshot, cfg);

        let mut outcomes: Vec<ResolveOutcome> = vec![ResolveOutcome::default(); n];
        {
            let snapshot = &snapshot;
            let rotations = &rotations;
            let index = &index;
            self.pool.parallel_for_mut(&mut outcomes, |i, out| {
                out.time_till = cfg.critical_periods;
                out.col = false;
                out.col_with = NO_COLLISION;
                let mut vel = (snapshot[i].dx, snapshot[i].dy);
                let mut next_rotation = 0usize;
                let mut chk = 0u32;
                loop {
                    let scan = scan_pairs(snapshot, index, i, vel, cfg, &mut NullSink);
                    let Some((partner, tmin)) = scan.critical else {
                        break;
                    };
                    out.col = true;
                    out.col_with = partner as i32;
                    out.time_till = tmin;
                    out.partner_mark = Some((partner, tmin));
                    if next_rotation >= rotations.len() {
                        return; // unresolved: keep flags and original path
                    }
                    let base = (snapshot[i].dx, snapshot[i].dy);
                    vel = rotate_velocity(base, rotations[next_rotation], &mut NullSink);
                    next_rotation += 1;
                    chk += 1;
                }
                if chk > 0 {
                    out.new_vel = Some(vel);
                    out.col = false;
                    out.col_with = NO_COLLISION;
                    out.time_till = cfg.critical_periods;
                }
            });
        }

        // Commit own outcomes in parallel (disjoint)…
        let outcomes_ro: &[ResolveOutcome] = &outcomes;
        self.pool.parallel_for_mut(aircraft, |i, a| {
            let o = &outcomes_ro[i];
            a.time_till = o.time_till;
            a.col = o.col;
            a.col_with = o.col_with;
            if let Some((vx, vy)) = o.new_vel {
                a.dx = vx;
                a.dy = vy;
                a.batx = vx;
                a.baty = vy;
            } else {
                a.batx = a.dx;
                a.baty = a.dy;
            }
        });
        // …then the short sequential partner-marking pass.
        for o in &outcomes {
            if let Some((p, tmin)) = o.partner_mark {
                aircraft[p].col = true;
                aircraft[p].time_till = aircraft[p].time_till.min(tmin);
            }
        }

        sw.elapsed()
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        // Perfectly parallel: each thread owns its aircraft; the terrain
        // grid is shared read-only.
        let sw = Stopwatch::start();
        self.pool.parallel_for_mut(aircraft, |_, a| {
            let mut one = [*a];
            check_terrain(&mut one, 0, grid, tcfg, &mut NullSink);
            *a = one[0];
        });
        sw.elapsed()
    }
}

/// Check a resolved fleet against the snapshot the resolutions were
/// computed from: every aircraft that committed a new path must be free of
/// critical conflicts w.r.t. that snapshot. (Shared test helper.)
#[cfg(test)]
fn committed_paths_are_clear(
    snapshot: &[Aircraft],
    resolved: &[Aircraft],
    cfg: &AtmConfig,
) -> bool {
    resolved.iter().enumerate().all(|(i, a)| {
        if a.col {
            return true; // unresolved or partner-marked: not a commitment
        }
        let vel = (a.dx, a.dy);
        snapshot.iter().enumerate().all(|(p, trial)| {
            if p == i || (trial.alt - a.alt).abs() >= cfg.alt_separation_ft {
                return true;
            }
            match conflict_window(
                &snapshot[i],
                vel,
                trial,
                cfg.separation_nm,
                cfg.horizon_periods,
                &mut NullSink,
            ) {
                Some((tmin, _)) => tmin >= cfg.critical_periods,
                None => true,
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::track::TrackStats;

    fn track_invariants(aircraft: &[Aircraft], radars: &[RadarReport]) -> TrackStats {
        // Every matched radar points at an aircraft; every MATCH_ONE
        // aircraft is claimed by at most one matched radar.
        let mut claims = vec![0u32; aircraft.len()];
        for r in radars {
            if r.matched() {
                claims[r.r_match_with as usize] += 1;
            }
        }
        for (p, a) in aircraft.iter().enumerate() {
            if a.r_match == MATCH_ONE {
                assert!(claims[p] >= 1, "matched aircraft {p} has no radar");
            }
        }
        TrackStats {
            matched: aircraft.iter().filter(|a| a.r_match == MATCH_ONE).count() as u64,
            ..Default::default()
        }
    }

    #[test]
    fn mimd_track_satisfies_matching_invariants() {
        let mut field = Airfield::with_seed(600, 21);
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        let mut backend = MimdBackend::new(8);
        let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
        assert!(d > SimDuration::ZERO);
        let stats = track_invariants(&field.aircraft, &radars);
        assert!(
            stats.matched > 500,
            "most aircraft should correlate: {stats:?}"
        );
    }

    #[test]
    fn mimd_track_positions_are_expected_or_radar() {
        let mut field = Airfield::with_seed(300, 22);
        let before: Vec<Aircraft> = field.aircraft.clone();
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        MimdBackend::new(4).track_correlate(&mut field.aircraft, &mut radars, &cfg);
        for (a, b) in field.aircraft.iter().zip(&before) {
            let expected = (b.x + b.dx, b.y + b.dy);
            let at_expected = (a.x - expected.0).abs() < 1e-6 && (a.y - expected.1).abs() < 1e-6;
            let at_some_radar = radars
                .iter()
                .any(|r| (a.x - r.rx).abs() < 1e-6 && (a.y - r.ry).abs() < 1e-6);
            assert!(at_expected || at_some_radar);
        }
    }

    #[test]
    fn mimd_detect_commits_conflict_free_paths() {
        let cfg = AtmConfig::default();
        let field = Airfield::with_seed(400, 23);
        let snapshot = field.aircraft.clone();
        let mut ac = field.aircraft.clone();
        MimdBackend::new(8).detect_resolve(&mut ac, &cfg);
        assert!(committed_paths_are_clear(&snapshot, &ac, &cfg));
    }

    #[test]
    fn mimd_detect_preserves_speeds() {
        let cfg = AtmConfig::default();
        let field = Airfield::with_seed(200, 24);
        let speeds: Vec<f32> = field.aircraft.iter().map(|a| a.speed()).collect();
        let mut ac = field.aircraft.clone();
        MimdBackend::new(4).detect_resolve(&mut ac, &cfg);
        for (a, s) in ac.iter().zip(speeds) {
            assert!((a.speed() - s).abs() < 1e-4, "rotation must preserve speed");
        }
    }

    #[test]
    fn single_threaded_mimd_track_matches_sequential_semantics() {
        // With one thread there are no races: the CAS protocol degenerates
        // to the sequential matching rules.
        use crate::backends::SequentialBackend;
        let cfg = AtmConfig::default();
        let mk = || {
            let mut f = Airfield::with_seed(250, 25);
            let r = f.generate_radar();
            (f.aircraft, r)
        };
        let (mut ac_m, mut rd_m) = mk();
        let (mut ac_s, mut rd_s) = mk();
        MimdBackend::new(1).track_correlate(&mut ac_m, &mut rd_m, &cfg);
        SequentialBackend::new().track_correlate(&mut ac_s, &mut rd_s, &cfg);
        for (m, s) in ac_m.iter().zip(&ac_s) {
            assert_eq!(m.x, s.x);
            assert_eq!(m.y, s.y);
            assert_eq!(m.r_match, s.r_match);
        }
        assert_eq!(rd_m, rd_s);
    }

    #[test]
    fn thread_count_is_reported() {
        assert_eq!(MimdBackend::new(16).threads(), 16);
        assert!(MimdBackend::host_sized().threads() >= 1);
        let backend = MimdBackend::new(3);
        assert!(backend.info().name.contains("3 threads"));
        assert_eq!(backend.info().platform, PlatformId::MimdHost);
    }
}
