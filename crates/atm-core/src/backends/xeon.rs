//! The modeled 16-core Xeon baseline.
//!
//! Functionally identical to the sequential reference (it runs the same
//! task code), but timed by the deterministic analytic
//! [`multicore::XeonModel`]: the instrumented operation counts of the run,
//! plus lock/barrier estimates derived from the task statistics, are priced
//! with the model's per-core throughput, Amdahl scaling, super-linear
//! contention and seeded run-to-run jitter. This regenerates the *reported*
//! behaviour of the prior work's 2012 Xeon — rapidly growing time and many
//! missed deadlines — on the same axes as the simulated devices.

use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::config::AtmConfig;
use crate::detect::detect_resolve_all;
use crate::terrain::{terrain_avoidance_all, TerrainGrid, TerrainTaskConfig};
use crate::track::track_correlate;
use crate::types::{Aircraft, RadarReport};
use multicore::{WorkEstimate, XeonModel};
use sim_clock::{OpCounter, SimDuration};

/// ATM timed by the analytic multi-core model.
pub struct XeonModelBackend {
    model: XeonModel,
    /// Per-call seed counter: consecutive calls jitter like consecutive
    /// real runs, while a fresh backend reproduces the same sequence.
    call_seed: u64,
}

impl XeonModelBackend {
    /// The paper's 16-core Xeon.
    pub fn new() -> Self {
        XeonModelBackend {
            model: XeonModel::xeon_16_core(),
            call_seed: 0,
        }
    }

    /// A backend over a custom model (used by ablations and tests).
    pub fn with_model(model: XeonModel) -> Self {
        XeonModelBackend {
            model,
            call_seed: 0,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &XeonModel {
        &self.model
    }

    fn next_seed(&mut self) -> u64 {
        self.call_seed += 1;
        self.call_seed
    }
}

impl Default for XeonModelBackend {
    fn default() -> Self {
        XeonModelBackend::new()
    }
}

impl AtmBackend for XeonModelBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: self.model.name,
            platform: PlatformId::XeonMulticore,
            timing: TimingKind::Modeled,
            device: "16 cores @ 3 GHz (analytic model)",
        }
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let mut ops = OpCounter::new();
        let stats = track_correlate(aircraft, radars, cfg, &mut ops);
        // The shared-memory implementation locks the aircraft record for
        // every box test and both records on every state update; each pass
        // ends with a barrier.
        let work = WorkEstimate {
            ops,
            lock_acquisitions: stats.box_tests
                + 2 * (stats.matched + stats.dropped_aircraft)
                + aircraft.len() as u64,
            barriers: stats.passes_run as u64 + 2,
            n: aircraft.len(),
        };
        let seed = self.next_seed();
        self.model.time_for(&work, seed)
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let mut ops = OpCounter::new();
        let stats = detect_resolve_all(aircraft, cfg, &mut ops);
        self.price_detect_totals(aircraft.len(), &stats, &ops)
            .expect("the Xeon model always prices detect totals")
    }

    /// The Xeon model's detect time is a pure function of the merged totals
    /// and the per-call jitter seed, so a coordinator can price a detect it
    /// never executed locally — bit-identically to
    /// [`XeonModelBackend::detect_resolve`] run in-process, provided calls
    /// arrive in the same order (the seed counter advances here exactly as
    /// there).
    fn price_detect_totals(
        &mut self,
        n: usize,
        stats: &crate::detect::DetectStats,
        ops: &OpCounter,
    ) -> Option<SimDuration> {
        // Pair checks read the trial record under its lock; every conflict
        // marking locks both records.
        let work = WorkEstimate {
            ops: ops.clone(),
            lock_acquisitions: stats.pair_checks + 2 * stats.critical_conflicts + n as u64,
            barriers: 2,
            n,
        };
        let seed = self.next_seed();
        Some(self.model.time_for(&work, seed))
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        let mut ops = OpCounter::new();
        let stats = terrain_avoidance_all(aircraft, grid, tcfg, &mut ops);
        let work = WorkEstimate {
            ops,
            // Each climb locks its record; the phase ends with a barrier.
            lock_acquisitions: aircraft.len() as u64 + stats.climbs,
            barriers: 1,
            n: aircraft.len(),
        };
        let seed = self.next_seed();
        self.model.time_for(&work, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::SequentialBackend;

    fn run_track(
        backend: &mut dyn AtmBackend,
        n: usize,
        seed: u64,
    ) -> (Vec<Aircraft>, SimDuration) {
        let mut field = Airfield::with_seed(n, seed);
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
        (field.aircraft, d)
    }

    #[test]
    fn results_match_sequential_exactly() {
        let (ac_x, _) = run_track(&mut XeonModelBackend::new(), 300, 31);
        let (ac_s, _) = run_track(&mut SequentialBackend::new(), 300, 31);
        assert_eq!(ac_x, ac_s);
    }

    #[test]
    fn modeled_time_grows_superlinearly() {
        let (_, t1) = run_track(&mut XeonModelBackend::new(), 1_000, 32);
        let (_, t4) = run_track(&mut XeonModelBackend::new(), 4_000, 32);
        let ratio = t4.as_picos() as f64 / t1.as_picos() as f64;
        // O(n²) work × growing contention: far beyond 4×.
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn consecutive_calls_jitter_like_real_runs() {
        let mut backend = XeonModelBackend::new();
        let field = Airfield::with_seed(500, 33);
        let cfg = field.config().clone();
        let mut times = Vec::new();
        for _ in 0..5 {
            let mut ac = field.aircraft.clone();
            times.push(backend.detect_resolve(&mut ac, &cfg));
        }
        let distinct: std::collections::HashSet<_> = times.iter().collect();
        assert!(distinct.len() > 1, "MIMD timing must scatter across runs");
    }

    #[test]
    fn fresh_backends_reproduce_the_same_jitter_sequence() {
        let run = || {
            let mut b = XeonModelBackend::new();
            let (_, t) = run_track(&mut b, 400, 34);
            t
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn xeon_is_far_slower_than_the_gpus_at_scale() {
        use crate::backends::GpuBackend;
        let (_, t_xeon) = run_track(&mut XeonModelBackend::new(), 4_000, 35);
        let (_, t_gpu) = run_track(&mut GpuBackend::titan_x_pascal(), 4_000, 35);
        assert!(
            t_xeon > t_gpu * 5,
            "Xeon {t_xeon} should trail Titan X {t_gpu} badly"
        );
    }
}
