//! The measured structure-of-arrays backend: the `simd-soa` scan path of
//! [`crate::detect::SoaFleet`] driven through the shared collision cascade.
//!
//! Tasks 2+3 are where the paper's kernels spend their time and where data
//! layout pays: the detect hot loop runs on split x/y/alt/velocity arrays
//! with a branch-free, lane-chunked gate pass (the lockstep idiom of
//! SIMD-X-style kernels), composed with whichever candidate enumerator
//! ([`ScanIndex`]) the config selects. Task 1 and terrain avoidance are
//! correlation-protocol-bound rather than gate-bound, so they run the
//! sequential reference routines — byte-identity for the whole backend is
//! therefore by construction, with the SoA scan proven result-identical to
//! the reference scan separately ([`crate::detect::SoaFleet`] tests).

use crate::backends::seq::record_activity;
use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::config::{AtmConfig, ScanMode};
use crate::detect::{
    check_collision_path_scanned, DetectStats, IncrementalEngine, ScanIndex, SoaFleet,
};
use crate::terrain::{terrain_avoidance_all, TerrainGrid, TerrainTaskConfig};
use crate::track::{track_correlate, TrackStats};
use crate::types::{Aircraft, RadarReport};
use sim_clock::{NullSink, SimDuration, Stopwatch};
use std::cell::RefCell;
use telemetry::Recorder;

/// ATM with the detect scan on structure-of-arrays data (measured timing).
///
/// Under [`ScanMode::Incremental`] a persistent [`IncrementalEngine`]
/// carries the dirty-cell grid and replay cache across `detect_resolve`
/// calls; live scans run the SoA gate kernel over the engine's candidate
/// frontier.
#[derive(Debug, Default)]
pub struct SimdSoaBackend {
    engine: IncrementalEngine,
    /// Scan index kept across calls and refreshed in place
    /// ([`ScanIndex::refresh`]), reusing its bucket/offset allocations.
    index: Option<ScanIndex>,
    recorder: Option<Recorder>,
    last_track: Option<TrackStats>,
    last_detect: Option<DetectStats>,
}

impl SimdSoaBackend {
    /// A fresh SoA backend.
    pub fn new() -> Self {
        SimdSoaBackend::default()
    }

    /// Stats of the most recent Task 1 execution.
    pub fn last_track_stats(&self) -> Option<TrackStats> {
        self.last_track
    }

    /// Stats of the most recent Tasks 2+3 execution.
    pub fn last_detect_stats(&self) -> Option<DetectStats> {
        self.last_detect
    }
}

impl AtmBackend for SimdSoaBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: "SIMD SoA (host)",
            platform: PlatformId::SimdSoaHost,
            timing: TimingKind::Measured,
            device: "host CPU, structure-of-arrays gate kernel",
        }
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        self.last_track = Some(track_correlate(aircraft, radars, cfg, &mut NullSink));
        sw.elapsed()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let sw = Stopwatch::start();
        if cfg.scan == ScanMode::Incremental {
            // Scan and commit-mirror closures interleave but never run at
            // once, so the SoA mirror sits in a RefCell they share.
            let fleet = RefCell::new(SoaFleet::from_aircraft(aircraft));
            let scratch = RefCell::new(Vec::new());
            let total = self.engine.detect_resolve_unbooked(
                aircraft,
                cfg,
                |_ac, i, vel, cands| {
                    fleet
                        .borrow()
                        .scan_candidates(i, vel, cfg, cands, &mut scratch.borrow_mut())
                },
                |ac, i| fleet.borrow_mut().set_velocity(i, (ac[i].dx, ac[i].dy)),
            );
            record_activity(&self.recorder, self.engine.activity());
            self.last_detect = Some(total);
            return sw.elapsed();
        }
        let n = aircraft.len();
        match &mut self.index {
            Some(ix) => ix.refresh(aircraft, cfg),
            none => *none = Some(ScanIndex::for_config(aircraft, cfg)),
        }
        let index = self.index.as_ref().expect("index populated above");
        let naive = matches!(index, ScanIndex::Naive);
        // Positions and altitudes are frozen during Tasks 2+3; committed
        // velocity changes are mirrored into the arrays after each aircraft
        // (only aircraft `i`'s velocity can change during its own cascade).
        let mut fleet = SoaFleet::from_aircraft(aircraft);
        let mut cands: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut total = DetectStats::default();
        for i in 0..n {
            if !naive {
                cands.clear();
                cands.extend(index.candidates(i, &aircraft[i], n).map(|p| p as u32));
            }
            let fleet_ro = &fleet;
            let cands_ro = &cands;
            let scratch = &mut scratch;
            total.absorb(&check_collision_path_scanned(
                aircraft,
                i,
                cfg,
                &mut NullSink,
                |_ac, i, vel, _sink| {
                    if naive {
                        fleet_ro.scan_range(i, vel, cfg, 0..n, scratch)
                    } else {
                        fleet_ro.scan_candidates(i, vel, cfg, cands_ro, scratch)
                    }
                },
            ));
            fleet.set_velocity(i, (aircraft[i].dx, aircraft[i].dy));
        }
        self.last_detect = Some(total);
        sw.elapsed()
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        terrain_avoidance_all(aircraft, grid, tcfg, &mut NullSink);
        sw.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::SequentialBackend;
    use crate::config::ScanMode;

    #[test]
    fn detect_is_byte_identical_to_sequential_across_scan_modes() {
        for scan in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            let field = Airfield::with_seed(600, 13);
            let mut cfg = field.config().clone();
            cfg.scan = scan;
            let mut ac_s = field.aircraft.clone();
            let mut ac_v = field.aircraft.clone();
            let mut seq = SequentialBackend::new();
            seq.detect_resolve(&mut ac_s, &cfg);
            let mut soa = SimdSoaBackend::new();
            soa.detect_resolve(&mut ac_v, &cfg);
            assert_eq!(ac_v, ac_s, "{scan:?}");
            assert_eq!(soa.last_detect_stats(), seq.last_detect_stats(), "{scan:?}");
        }
    }

    #[test]
    fn reports_measured_timing() {
        let b = SimdSoaBackend::new();
        assert_eq!(b.info().timing, TimingKind::Measured);
        assert_eq!(b.info().platform, PlatformId::SimdSoaHost);
    }
}
