//! The measured thread-pool backend: real chunked data-parallel execution
//! with outputs byte-identical to the sequential reference.
//!
//! Where [`crate::backends::MimdBackend`] is the *honest* shared-memory
//! baseline (racing radar claims, snapshot resolution — real MIMD
//! non-determinism, surfaced), this backend is the *deterministic*
//! thread-pool substrate: every parallel phase is constructed so its
//! result is provably the sequential serialization's, making the measured
//! wall-clock curves directly comparable against the modeled platforms on
//! identical outputs.
//!
//! * **Tasks 2+3** — the sequential per-aircraft cascade is kept (aircraft
//!   `i` must see `j < i`'s committed paths), and the O(n) *inner scan* is
//!   what parallelizes: [`multicore::MimdPool::map_chunks`] splits the
//!   candidate space into contiguous chunks in deterministic order, each
//!   chunk runs the unified scan-kernel gates
//!   ([`crate::detect::scan_pair_range`] /
//!   [`crate::detect::scan_candidate_list`]), and the partial results fold
//!   left-to-right with [`ScanResult::merge`] — exact because the
//!   selection is a lexicographic minimum. The mutation cascade itself is
//!   shared code ([`check_collision_path_scanned`]).
//! * **Task 1** — the per-radar box scan is state-independent (expected
//!   positions are frozen during correlation), so each pass precomputes
//!   every scanning radar's geometric hit list in parallel, then a cheap
//!   serial replay applies the matching rules over the hit lists in radar
//!   index order — bit-for-bit the sequential protocol, at a fraction of
//!   its serial work.
//! * **Terrain** — embarrassingly parallel, chunked per aircraft.

use crate::backends::seq::record_activity;
use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::config::{AtmConfig, ScanMode};
use crate::detect::{
    check_collision_path_scanned, scan_candidate_list, scan_pair_range, DetectStats,
    IncrementalEngine, ScanIndex, ScanResult,
};
use crate::terrain::{check_terrain, TerrainGrid, TerrainTaskConfig};
use crate::track::{any_unmatched, TrackStats};
use crate::types::{
    Aircraft, RadarReport, MATCH_MULTIPLE, MATCH_NONE, MATCH_ONE, RADAR_DISCARDED, RADAR_UNMATCHED,
};
use multicore::MimdPool;
use sim_clock::{NullSink, SimDuration, Stopwatch};
use telemetry::Recorder;

/// Below this many scan items a chunked dispatch costs more than it saves
/// (scoped-thread spawn per phase); the scan runs inline instead. Results
/// are identical either way — this is a wall-clock knob only.
const PAR_CUTOFF: usize = 1024;

/// ATM on a deterministic chunked thread pool (measured timing).
///
/// Under [`ScanMode::Incremental`] a persistent [`IncrementalEngine`]
/// carries the dirty-cell grid and replay cache across `detect_resolve`
/// calls; live scans still fan over the pool in deterministic chunks.
pub struct MulticoreBackend {
    pool: MimdPool,
    engine: IncrementalEngine,
    /// Scan index kept across calls and refreshed in place
    /// ([`ScanIndex::refresh`]), reusing its bucket/offset allocations.
    index: Option<ScanIndex>,
    recorder: Option<Recorder>,
    device: String,
    last_track: Option<TrackStats>,
    last_detect: Option<DetectStats>,
}

impl MulticoreBackend {
    /// A backend with `threads` workers.
    pub fn new(threads: usize) -> Self {
        MulticoreBackend::from_pool(MimdPool::new(threads))
    }

    /// A backend sized by [`MimdPool::measure_threads`] (the
    /// `ATM_MEASURE_THREADS` pin, else available parallelism).
    pub fn host_sized() -> Self {
        MulticoreBackend::from_pool(MimdPool::host_sized())
    }

    fn from_pool(pool: MimdPool) -> Self {
        let device = format!(
            "host CPU, {} worker threads, chunked deterministic scan",
            pool.threads()
        );
        MulticoreBackend {
            pool,
            engine: IncrementalEngine::new(),
            index: None,
            recorder: None,
            device,
            last_track: None,
            last_detect: None,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Stats of the most recent Task 1 execution.
    pub fn last_track_stats(&self) -> Option<TrackStats> {
        self.last_track
    }

    /// Stats of the most recent Tasks 2+3 execution.
    pub fn last_detect_stats(&self) -> Option<DetectStats> {
        self.last_detect
    }

    /// One scan of aircraft `i`, chunked over the pool and folded in chunk
    /// order. For pruned indexes the caller pre-collects the enumeration
    /// into `cands` (valid for every rotation rescan of `i`: candidate sets
    /// depend only on positions and altitudes, which are frozen).
    fn pooled_scan(
        &self,
        aircraft: &[Aircraft],
        naive: bool,
        cands: &[u32],
        i: usize,
        vel: (f32, f32),
        cfg: &AtmConfig,
    ) -> ScanResult {
        if naive {
            let n = aircraft.len();
            if n < PAR_CUTOFF || self.pool.threads() == 1 {
                return scan_pair_range(aircraft, i, vel, cfg, 0..n);
            }
            self.pool
                .map_chunks(n, |_, range| scan_pair_range(aircraft, i, vel, cfg, range))
                .into_iter()
                .fold(ScanResult::CLEAR, ScanResult::merge)
        } else {
            if cands.len() < PAR_CUTOFF || self.pool.threads() == 1 {
                return scan_candidate_list(aircraft, i, vel, cfg, cands);
            }
            self.pool
                .map_chunks(cands.len(), |_, range| {
                    scan_candidate_list(aircraft, i, vel, cfg, &cands[range])
                })
                .into_iter()
                .fold(ScanResult::CLEAR, ScanResult::merge)
        }
    }
}

impl AtmBackend for MulticoreBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: "Multicore (thread pool)",
            platform: PlatformId::MulticoreHost,
            timing: TimingKind::Measured,
            device: &self.device,
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder.clone());
        self.pool.set_recorder(recorder);
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        let mut stats = TrackStats::default();
        let n = aircraft.len();

        // Phase 1 (parallel, disjoint): expected positions, state reset —
        // the same arithmetic as the sequential phase.
        self.pool.parallel_for_mut(aircraft, |_, a| {
            a.expected_x = a.x + a.dx;
            a.expected_y = a.y + a.dy;
            a.r_match = MATCH_NONE;
        });

        // Correlation passes. The box test is state-independent (expected
        // positions never change during correlation), so the expensive
        // O(radars × aircraft) geometry runs as a parallel hit-list build,
        // and only the cheap O(hits) matching protocol replays serially in
        // radar index order — the exact sequential serialization.
        let mut hits: Vec<Vec<u32>> = vec![Vec::new(); radars.len()];
        for pass in 0..cfg.track_passes {
            if pass > 0 && !any_unmatched(radars) {
                break;
            }
            stats.passes_run += 1;
            let hw = cfg.pass_half_width(pass);
            {
                // A radar settled in an earlier pass stays settled (only
                // its own outcome can settle it), so the pass-entry set is
                // fixed at pass start and safe to read concurrently.
                let aircraft_ro: &[Aircraft] = aircraft;
                let radars_ro: &[RadarReport] = radars;
                self.pool.parallel_for_mut(&mut hits, |i, hit| {
                    hit.clear();
                    let r = &radars_ro[i];
                    if r.r_match_with != RADAR_UNMATCHED {
                        return;
                    }
                    for (p, a) in aircraft_ro.iter().enumerate() {
                        if (r.rx - a.expected_x).abs() < hw && (r.ry - a.expected_y).abs() < hw {
                            hit.push(p as u32);
                        }
                    }
                });
            }
            // Serial replay of the matching rules (Algorithm 1 lines 6–11)
            // over the in-box aircraft, radars in index order. State
            // filters apply here, against live state, exactly as the
            // sequential pass interleaves them.
            for i in 0..radars.len() {
                if radars[i].r_match_with != RADAR_UNMATCHED {
                    continue;
                }
                // The sequential pass counts a box test per aircraft before
                // any state filter, so a scanning radar always books n.
                stats.box_tests += n as u64;
                let mut first_hit: Option<usize> = None;
                let mut extra_unmatched_hit = false;
                for &p in &hits[i] {
                    let p = p as usize;
                    if aircraft[p].r_match == MATCH_MULTIPLE {
                        continue;
                    }
                    if pass > 0 && aircraft[p].r_match == MATCH_ONE {
                        continue;
                    }
                    if aircraft[p].r_match == MATCH_ONE {
                        aircraft[p].r_match = MATCH_MULTIPLE;
                        continue;
                    }
                    if first_hit.is_none() {
                        first_hit = Some(p);
                    } else {
                        extra_unmatched_hit = true;
                    }
                }
                if extra_unmatched_hit {
                    radars[i].r_match_with = RADAR_DISCARDED;
                } else if let Some(p) = first_hit {
                    radars[i].r_match_with = p as i32;
                    aircraft[p].r_match = MATCH_ONE;
                }
            }
        }

        // Phase 3a (parallel, disjoint): adopt expected positions.
        self.pool.parallel_for_mut(aircraft, |_, a| {
            a.x = a.expected_x;
            a.y = a.expected_y;
        });
        // Phase 3b (serial, cheap): matched radars override positions.
        for r in radars.iter() {
            let m = r.r_match_with;
            if m >= 0 {
                let p = m as usize;
                if aircraft[p].r_match == MATCH_ONE {
                    aircraft[p].x = r.rx;
                    aircraft[p].y = r.ry;
                }
            }
        }

        stats.matched = aircraft.iter().filter(|a| a.r_match == MATCH_ONE).count() as u64;
        stats.dropped_aircraft = aircraft
            .iter()
            .filter(|a| a.r_match == MATCH_MULTIPLE)
            .count() as u64;
        stats.discarded_radars = radars
            .iter()
            .filter(|r| r.r_match_with == RADAR_DISCARDED)
            .count() as u64;
        stats.unmatched_radars = radars
            .iter()
            .filter(|r| r.r_match_with == RADAR_UNMATCHED)
            .count() as u64;
        self.last_track = Some(stats);
        sw.elapsed()
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let sw = Stopwatch::start();
        if cfg.scan == ScanMode::Incremental {
            // The engine enumerates candidates and replays cached clean
            // scans; live scans still chunk over the pool.
            let mut engine = std::mem::take(&mut self.engine);
            let total = engine.detect_resolve_unbooked(
                aircraft,
                cfg,
                |ac, i, vel, cands| self.pooled_scan(ac, false, cands, i, vel, cfg),
                |_, _| {},
            );
            record_activity(&self.recorder, engine.activity());
            self.engine = engine;
            self.last_detect = Some(total);
            return sw.elapsed();
        }
        match &mut self.index {
            Some(ix) => ix.refresh(aircraft, cfg),
            none => *none = Some(ScanIndex::for_config(aircraft, cfg)),
        }
        let index = self.index.as_ref().expect("index populated above");
        let naive = matches!(index, ScanIndex::Naive);
        let mut cands: Vec<u32> = Vec::new();
        let mut total = DetectStats::default();
        for i in 0..aircraft.len() {
            if !naive {
                cands.clear();
                cands.extend(
                    index
                        .candidates(i, &aircraft[i], aircraft.len())
                        .map(|p| p as u32),
                );
            }
            let cands = &cands;
            total.absorb(&check_collision_path_scanned(
                aircraft,
                i,
                cfg,
                &mut NullSink,
                |ac, i, vel, _sink| self.pooled_scan(ac, naive, cands, i, vel, cfg),
            ));
        }
        self.last_detect = Some(total);
        sw.elapsed()
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        // No cross-aircraft interaction: chunked parallel is exact.
        let sw = Stopwatch::start();
        self.pool.parallel_for_mut(aircraft, |_, a| {
            let mut one = [*a];
            check_terrain(&mut one, 0, grid, tcfg, &mut NullSink);
            *a = one[0];
        });
        sw.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::SequentialBackend;

    fn fresh(n: usize, seed: u64) -> (Vec<Aircraft>, Vec<RadarReport>, AtmConfig) {
        let mut field = Airfield::with_seed(n, seed);
        let radars = field.generate_radar();
        let cfg = field.config().clone();
        (field.aircraft, radars, cfg)
    }

    #[test]
    fn track_is_byte_identical_to_sequential_for_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let (mut ac_s, mut rd_s, cfg) = fresh(400, 77);
            let (mut ac_m, mut rd_m, _) = fresh(400, 77);
            let mut seq = SequentialBackend::new();
            seq.track_correlate(&mut ac_s, &mut rd_s, &cfg);
            let mut mc = MulticoreBackend::new(threads);
            mc.track_correlate(&mut ac_m, &mut rd_m, &cfg);
            assert_eq!(ac_m, ac_s, "threads={threads}");
            assert_eq!(rd_m, rd_s, "threads={threads}");
            assert_eq!(
                mc.last_track_stats(),
                seq.last_track_stats(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn detect_is_byte_identical_to_sequential_below_and_above_the_cutoff() {
        // n=300 stays inline; n=1500 crosses PAR_CUTOFF on the naive scan.
        for &(n, seed) in &[(300usize, 5u64), (1_500, 6)] {
            let (mut ac_s, _, cfg) = fresh(n, seed);
            let (mut ac_m, _, _) = fresh(n, seed);
            let mut seq = SequentialBackend::new();
            seq.detect_resolve(&mut ac_s, &cfg);
            let mut mc = MulticoreBackend::new(4);
            mc.detect_resolve(&mut ac_m, &cfg);
            assert_eq!(ac_m, ac_s, "n={n}");
            assert_eq!(mc.last_detect_stats(), seq.last_detect_stats(), "n={n}");
        }
    }

    #[test]
    fn reports_measured_timing_and_thread_count() {
        let b = MulticoreBackend::new(3);
        assert_eq!(b.threads(), 3);
        assert_eq!(b.info().timing, TimingKind::Measured);
        assert_eq!(b.info().platform, PlatformId::MulticoreHost);
        assert!(MulticoreBackend::host_sized().threads() >= 1);
    }
}
