//! A backend adapter that runs Tasks 2+3 through a [`ShardTransport`] —
//! the engine-level seam the process-per-shard coordinator plugs into.
//!
//! Wraps any totals-priced backend (one whose
//! [`AtmBackend::price_detect_totals`] returns `Some`): Task 1 and Task 4
//! stay with the inner backend unchanged, while `detect_resolve` drives
//! [`detect_resolve_via_transport`] and prices the merged totals. Because
//! the transport is bit-identical to the sequential cascade and the pricing
//! advances the inner backend's clocks exactly as a local detect would,
//! every `CycleReport`, metric and artifact matches the in-process pipeline
//! byte for byte (DESIGN.md §15).
//!
//! [`AtmBackend::detect_resolve`] cannot return an error, so transport
//! failures (a dead worker, a codec fault) land in an error slot the owner
//! polls between cycles; once set, every later detect is a no-op returning
//! [`SimDuration::ZERO`] — the coordinator aborts without flushing
//! artifacts, so no partial output can masquerade as a finished run.

use crate::backends::{AtmBackend, BackendInfo};
use crate::config::AtmConfig;
use crate::detect::DetectStats;
use crate::shard::{detect_resolve_via_transport, ShardTransport};
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::{Aircraft, RadarReport};
use sim_clock::{OpCounter, SimDuration};
use std::sync::{Arc, Mutex};

/// Shared handle to the adapter's first transport failure (`None` while
/// healthy).
pub type TransportFault = Arc<Mutex<Option<String>>>;

/// [`AtmBackend`] running detect through a [`ShardTransport`]; see the
/// module docs.
pub struct TransportDetectBackend {
    inner: Box<dyn AtmBackend>,
    transport: Box<dyn ShardTransport + Send>,
    fault: TransportFault,
}

impl TransportDetectBackend {
    /// Wrap `inner`, routing detect through `transport`. The caller should
    /// verify `inner` is totals-priced first (probe
    /// [`AtmBackend::price_detect_totals`] on a throwaway instance — probing
    /// the real one would advance its jitter seed).
    pub fn new(
        inner: Box<dyn AtmBackend>,
        transport: Box<dyn ShardTransport + Send>,
    ) -> TransportDetectBackend {
        TransportDetectBackend {
            inner,
            transport,
            fault: Arc::new(Mutex::new(None)),
        }
    }

    /// The shared fault slot; poll it after every cycle.
    pub fn fault_handle(&self) -> TransportFault {
        Arc::clone(&self.fault)
    }

    fn set_fault(&self, msg: String) {
        let mut slot = self.fault.lock().expect("transport fault slot");
        if slot.is_none() {
            *slot = Some(msg);
        }
    }
}

impl AtmBackend for TransportDetectBackend {
    fn info(&self) -> BackendInfo<'_> {
        self.inner.info()
    }

    fn set_recorder(&mut self, recorder: telemetry::Recorder) {
        self.inner.set_recorder(recorder);
    }

    fn on_setup(&mut self, aircraft: &[Aircraft]) -> SimDuration {
        self.inner.on_setup(aircraft)
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        self.inner.track_correlate(aircraft, radars, cfg)
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        if self.fault.lock().expect("transport fault slot").is_some() {
            return SimDuration::ZERO;
        }
        match detect_resolve_via_transport(aircraft, cfg, self.transport.as_mut()) {
            Ok((stats, ops)) => {
                match self.inner.price_detect_totals(aircraft.len(), &stats, &ops) {
                    Some(d) => d,
                    None => {
                        self.set_fault(format!(
                            "platform `{}` cannot price detect from totals; \
                             a coordinator needs a totals-priced platform \
                             (e.g. xeon-multicore)",
                            self.inner.info().platform
                        ));
                        SimDuration::ZERO
                    }
                }
            }
            Err(e) => {
                self.set_fault(e.to_string());
                SimDuration::ZERO
            }
        }
    }

    fn price_detect_totals(
        &mut self,
        n: usize,
        stats: &DetectStats,
        ops: &OpCounter,
    ) -> Option<SimDuration> {
        self.inner.price_detect_totals(n, stats, ops)
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        self.inner.terrain_avoidance(aircraft, grid, tcfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::{GpuBackend, XeonModelBackend};
    use crate::config::ScanMode;
    use crate::shard::InProcessTransport;

    #[test]
    fn transport_backend_matches_a_plain_xeon_run() {
        let cfg = AtmConfig {
            shards: 2,
            scan: ScanMode::Grid,
            ..AtmConfig::with_seed(7)
        };
        let field = Airfield::new(250, cfg.clone());

        let mut plain = XeonModelBackend::new();
        let mut ac_plain = field.aircraft.clone();
        let d_plain = plain.detect_resolve(&mut ac_plain, &cfg);

        let mut wrapped = TransportDetectBackend::new(
            Box::new(XeonModelBackend::new()),
            Box::new(InProcessTransport::new(4)),
        );
        let mut ac_wrapped = field.aircraft.clone();
        let d_wrapped = wrapped.detect_resolve(&mut ac_wrapped, &cfg);

        assert_eq!(ac_plain, ac_wrapped);
        assert_eq!(d_plain, d_wrapped, "pricing must advance the same seed");
        assert!(wrapped.fault_handle().lock().unwrap().is_none());
    }

    #[test]
    fn unpriceable_platform_faults_instead_of_guessing() {
        let cfg = AtmConfig {
            shards: 2,
            ..AtmConfig::with_seed(8)
        };
        let field = Airfield::new(120, cfg.clone());
        // The GPU backend simulates its substrate internally: no totals
        // pricing.
        let mut wrapped = TransportDetectBackend::new(
            Box::new(GpuBackend::titan_x_pascal()),
            Box::new(InProcessTransport::new(2)),
        );
        let mut ac = field.aircraft.clone();
        let d = wrapped.detect_resolve(&mut ac, &cfg);
        assert_eq!(d, SimDuration::ZERO);
        let fault = wrapped.fault_handle();
        let msg = fault.lock().unwrap().clone().expect("fault must be set");
        assert!(msg.contains("totals"), "{msg}");
    }
}
