//! The single-threaded host reference backend.

use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::config::{AtmConfig, ScanMode};
use crate::detect::{detect_resolve_all, DetectStats, IncrementalEngine, ScanActivity};
use crate::terrain::{terrain_avoidance_all, TerrainGrid, TerrainTaskConfig};
use crate::track::{track_correlate, TrackStats};
use crate::types::{Aircraft, RadarReport};
use sim_clock::{NullSink, SimDuration, Stopwatch};
use telemetry::Recorder;

/// Emit one rescan's dirty-cell hit-rate counters ([`ScanActivity`]) into
/// a telemetry recorder. Counters only fire on incremental runs, so
/// default-config artifact bytes are untouched.
pub(crate) fn record_activity(recorder: &Option<Recorder>, act: &ScanActivity) {
    let Some(rec) = recorder else {
        return;
    };
    rec.counter_add("incremental.cells_dirty", act.cells_dirty);
    rec.counter_add("incremental.pairs_rescanned", act.pairs_rescanned);
    rec.counter_add("incremental.pairs_replayed", act.pairs_replayed);
}

/// The sequential reference implementation: the task algorithms run
/// directly on the host, timing is measured wall-clock, and the results
/// define the expected output the deterministic simulated backends must
/// reproduce bit-for-bit.
///
/// Under [`ScanMode::Incremental`] the backend holds a persistent
/// [`IncrementalEngine`] across `detect_resolve` calls, so consecutive
/// rescans of a mostly-still fleet replay cached clean scans instead of
/// re-deriving them — with outputs bit-identical to the full-rebuild path.
#[derive(Debug, Default)]
pub struct SequentialBackend {
    engine: IncrementalEngine,
    recorder: Option<Recorder>,
    last_track: Option<TrackStats>,
    last_detect: Option<DetectStats>,
}

impl SequentialBackend {
    /// A fresh sequential backend.
    pub fn new() -> Self {
        SequentialBackend::default()
    }

    /// Stats of the most recent Task 1 execution.
    pub fn last_track_stats(&self) -> Option<TrackStats> {
        self.last_track
    }

    /// Stats of the most recent Tasks 2+3 execution.
    pub fn last_detect_stats(&self) -> Option<DetectStats> {
        self.last_detect
    }
}

impl AtmBackend for SequentialBackend {
    fn info(&self) -> BackendInfo<'_> {
        BackendInfo {
            name: "Sequential (host)",
            platform: PlatformId::SequentialHost,
            timing: TimingKind::Measured,
            device: "host CPU, single thread",
        }
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        self.last_track = Some(track_correlate(aircraft, radars, cfg, &mut NullSink));
        sw.elapsed()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let sw = Stopwatch::start();
        let stats = if cfg.scan == ScanMode::Incremental {
            let stats = self.engine.detect_resolve(aircraft, cfg, &mut NullSink);
            record_activity(&self.recorder, self.engine.activity());
            stats
        } else {
            detect_resolve_all(aircraft, cfg, &mut NullSink)
        };
        self.last_detect = Some(stats);
        sw.elapsed()
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        let sw = Stopwatch::start();
        terrain_avoidance_all(aircraft, grid, tcfg, &mut NullSink);
        sw.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;

    #[test]
    fn runs_and_reports_stats() {
        let mut field = Airfield::with_seed(128, 11);
        let mut radars = field.generate_radar();
        let mut backend = SequentialBackend::new();
        let cfg = AtmConfig::default();
        let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
        assert!(d > SimDuration::ZERO);
        let stats = backend.last_track_stats().unwrap();
        assert!(stats.matched > 100);

        let d2 = backend.detect_resolve(&mut field.aircraft, &cfg);
        assert!(d2 > SimDuration::ZERO);
        assert!(backend.last_detect_stats().unwrap().pair_checks > 0);
    }

    #[test]
    fn timing_is_measured() {
        let backend = SequentialBackend::new();
        assert_eq!(backend.info().timing, TimingKind::Measured);
    }
}
