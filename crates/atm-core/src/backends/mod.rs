//! Execution backends: the same ATM tasks on six architectures.
//!
//! Every backend implements [`AtmBackend`]: it executes Task 1 and Tasks
//! 2+3 *functionally* on the caller's aircraft/radar state and returns the
//! execution time under its architecture — modeled simulated time for the
//! GPU/AP/Xeon models, measured wall time for the host backends. Keeping
//! function and timing together is what lets the cyclic executive and the
//! figure harness treat all platforms uniformly, exactly as the paper's
//! comparison does.

mod ap;
mod gpu;
mod mimd;
mod seq;
mod xeon;

pub use ap::ApBackend;
pub use gpu::GpuBackend;
pub use mimd::MimdBackend;
pub use seq::SequentialBackend;
pub use xeon::XeonModelBackend;

use crate::config::AtmConfig;
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::{Aircraft, RadarReport};
use sim_clock::SimDuration;

/// Whether a backend's reported durations are modeled (deterministic
/// simulated time) or measured (host wall clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingKind {
    /// Deterministic simulated time from an architecture model.
    Modeled,
    /// Wall-clock time measured on the host.
    Measured,
}

/// A platform that can execute the ATM tasks.
pub trait AtmBackend {
    /// Human-readable platform name (used as the series label in figures).
    fn name(&self) -> String;

    /// Whether durations are modeled or measured.
    fn timing_kind(&self) -> TimingKind;

    /// One-time setup before a simulation run (e.g. the GPU backend charges
    /// the initial host→device upload of the flight database here).
    fn on_setup(&mut self, aircraft: &[Aircraft]) -> SimDuration {
        let _ = aircraft;
        SimDuration::ZERO
    }

    /// Execute Task 1 (tracking & correlation) for one period.
    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration;

    /// Execute Tasks 2+3 (collision detection & resolution).
    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration;

    /// Execute Task 4 (terrain avoidance — the future-work extension; see
    /// [`crate::terrain`]).
    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration;
}

/// The full platform roster of the paper's comparison, in its order:
/// STARAN AP, ClearSpeed emulation, 16-core Xeon, and the three NVIDIA
/// cards (plus none of the host-measured backends, which have no analogue
/// in the paper's figures).
pub fn paper_roster() -> Vec<Box<dyn AtmBackend>> {
    vec![
        Box::new(ApBackend::staran()),
        Box::new(ApBackend::clearspeed()),
        Box::new(XeonModelBackend::new()),
        Box::new(GpuBackend::geforce_9800_gt()),
        Box::new(GpuBackend::gtx_880m()),
        Box::new(GpuBackend::titan_x_pascal()),
    ]
}

/// The three NVIDIA devices only (Figs. 5 and 7).
pub fn nvidia_roster() -> Vec<Box<dyn AtmBackend>> {
    vec![
        Box::new(GpuBackend::geforce_9800_gt()),
        Box::new(GpuBackend::gtx_880m()),
        Box::new(GpuBackend::titan_x_pascal()),
    ]
}
