//! Execution backends: the same ATM tasks on six architectures.
//!
//! Every backend implements [`AtmBackend`]: it executes Task 1 and Tasks
//! 2+3 *functionally* on the caller's aircraft/radar state and returns the
//! execution time under its architecture — modeled simulated time for the
//! GPU/AP/Xeon models, measured wall time for the host backends. Keeping
//! function and timing together is what lets the cyclic executive and the
//! figure harness treat all platforms uniformly, exactly as the paper's
//! comparison does.
//!
//! Platform enumeration goes through [`Roster`]: `Roster::paper()` is the
//! six-platform comparison of Figs. 4 and 6 in the paper's order,
//! `Roster::nvidia()` the three-card subset of Figs. 5 and 7,
//! `Roster::measured()` / `Roster::modeled()` the timing-kind groupings,
//! and `Roster::select` any ad-hoc subset by [`PlatformId`] (duplicates
//! and unknown ids are hard errors; see `Roster::try_select`). Each
//! [`RosterEntry`] carries the legend label, a stable machine-readable
//! slug, its timing kind and the peak-throughput proxy used by the
//! normalization experiment, and builds a *fresh* backend per call so
//! device clocks never leak between measurement points.

mod ap;
mod gpu;
mod mcore;
mod mimd;
mod seq;
mod soa;
mod transport;
mod xeon;

pub use ap::ApBackend;
pub use gpu::GpuBackend;
pub use mcore::MulticoreBackend;
pub use mimd::MimdBackend;
pub use seq::SequentialBackend;
pub use soa::SimdSoaBackend;
pub use transport::{TransportDetectBackend, TransportFault};
pub use xeon::XeonModelBackend;

use crate::config::AtmConfig;
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::{Aircraft, RadarReport};
use sim_clock::SimDuration;
use std::fmt;
use telemetry::Recorder;

/// Whether a backend's reported durations are modeled (deterministic
/// simulated time) or measured (host wall clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingKind {
    /// Deterministic simulated time from an architecture model.
    Modeled,
    /// Wall-clock time measured on the host.
    Measured,
}

/// Stable identity of an execution platform.
///
/// The first six variants are the paper's comparison roster in figure
/// order; the remaining host variants cover the measured backends, which
/// have no analogue in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlatformId {
    /// Goodyear STARAN associative processor.
    StaranAp,
    /// ClearSpeed CSX600 associative emulation.
    ClearSpeedCsx600,
    /// Analytic 16-core Xeon multi-core model.
    XeonMulticore,
    /// NVIDIA GeForce 9800 GT (CC 1.x).
    Geforce9800Gt,
    /// NVIDIA GTX 880M (Kepler).
    Gtx880m,
    /// NVIDIA Titan X (Pascal).
    TitanXPascal,
    /// Single-threaded host reference (measured).
    SequentialHost,
    /// Real-thread MIMD host pool (measured, honestly non-deterministic).
    MimdHost,
    /// Deterministic chunked thread pool (measured).
    MulticoreHost,
    /// Structure-of-arrays gate kernel on the host (measured).
    SimdSoaHost,
}

impl PlatformId {
    /// Map a simulated device's marketing name back to its platform
    /// (custom [`gpu_sim::DeviceSpec`]s that are not in the paper's
    /// catalog have no id).
    pub fn from_device_name(name: &str) -> Option<PlatformId> {
        match name {
            "GeForce 9800 GT" => Some(PlatformId::Geforce9800Gt),
            "GTX 880M" => Some(PlatformId::Gtx880m),
            "Titan X (Pascal)" => Some(PlatformId::TitanXPascal),
            _ => None,
        }
    }
}

impl PlatformId {
    /// The stable machine-readable slug of this platform: the key used in
    /// figure legends' series identities, JSON series objects and bench
    /// stage names. Also the [`fmt::Display`] form.
    pub fn slug(&self) -> &'static str {
        match self {
            PlatformId::StaranAp => "staran-ap",
            PlatformId::ClearSpeedCsx600 => "clearspeed-csx600",
            PlatformId::XeonMulticore => "xeon-multicore",
            PlatformId::Geforce9800Gt => "geforce-9800-gt",
            PlatformId::Gtx880m => "gtx-880m",
            PlatformId::TitanXPascal => "titan-x-pascal",
            PlatformId::SequentialHost => "sequential-host",
            PlatformId::MimdHost => "mimd-host",
            PlatformId::MulticoreHost => "multicore",
            PlatformId::SimdSoaHost => "simd-soa",
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Borrowed description of a backend: identity, timing discipline and a
/// one-line device summary. Returned by [`AtmBackend::info`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendInfo<'a> {
    /// Human-readable platform name (the series label in figures).
    pub name: &'a str,
    /// Stable platform identity.
    pub platform: PlatformId,
    /// Whether reported durations are modeled or measured.
    pub timing: TimingKind,
    /// Short device summary ("3584 CUDA cores @ 1417 MHz", …).
    pub device: &'a str,
}

/// A platform that can execute the ATM tasks.
///
/// `Send` is a supertrait so an [`crate::AtmEngine`] holding a boxed
/// backend can live behind a `Mutex` shared across server threads.
pub trait AtmBackend: Send {
    /// Identity, timing discipline and device summary of this backend.
    /// `info().timing` is the one source of truth for whether reported
    /// durations are modeled or measured (there is deliberately no separate
    /// `timing_kind` accessor to fall out of sync with it).
    fn info(&self) -> BackendInfo<'_>;

    /// Attach a telemetry recorder. Backends that model their substrate
    /// emit spans for kernel launches, associative passes, barrier phases
    /// and transfers; the default implementation ignores the recorder.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }

    /// One-time setup before a simulation run (e.g. the GPU backend charges
    /// the initial host→device upload of the flight database here).
    fn on_setup(&mut self, aircraft: &[Aircraft]) -> SimDuration {
        let _ = aircraft;
        SimDuration::ZERO
    }

    /// Execute Task 1 (tracking & correlation) for one period.
    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration;

    /// Execute Tasks 2+3 (collision detection & resolution).
    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration;

    /// Price a detect execution from its merged totals alone — fleet size,
    /// [`DetectStats`] and booked [`sim_clock::OpCounter`] — without
    /// executing anything, advancing internal clocks exactly as
    /// [`AtmBackend::detect_resolve`] would. `None` (the default) means the
    /// backend's timing is not a pure function of the totals (measured
    /// backends, and the models that simulate their substrate internally);
    /// such platforms cannot serve a process-per-shard coordinator, whose
    /// detect work happens in worker processes and comes home as totals
    /// (DESIGN.md §15). [`XeonModelBackend`] implements it.
    fn price_detect_totals(
        &mut self,
        n: usize,
        stats: &crate::detect::DetectStats,
        ops: &sim_clock::OpCounter,
    ) -> Option<SimDuration> {
        let _ = (n, stats, ops);
        None
    }

    /// Execute Task 4 (terrain avoidance — the future-work extension; see
    /// [`crate::terrain`]).
    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration;
}

/// One platform in a [`Roster`]: identity, legend label, timing kind, the
/// peak-throughput proxy used by the §7.2 normalization experiment, and a
/// constructor producing a fresh backend (device clocks and jitter
/// sequences must not leak between measurement points).
#[derive(Clone, Copy)]
pub struct RosterEntry {
    /// Stable platform identity.
    pub platform: PlatformId,
    /// Stable machine-readable key ([`PlatformId::slug`]): the identity
    /// artifacts use in JSON series objects and bench stage names, so the
    /// human-facing `label` can evolve without perturbing artifact bytes.
    pub slug: &'static str,
    /// Legend label (matches `info().name` of the built backend).
    pub label: &'static str,
    /// Whether the built backend reports modeled or measured durations
    /// (matches `info().timing`; pinned by test so the catalog can be
    /// grouped without instantiating backends).
    pub timing: TimingKind,
    /// Peak arithmetic throughput proxy in GFLOP/s (lanes × clock × 2).
    pub peak_gflops: f64,
    make: fn() -> Box<dyn AtmBackend>,
}

impl RosterEntry {
    /// Build a fresh backend for this platform.
    pub fn instantiate(&self) -> Box<dyn AtmBackend> {
        (self.make)()
    }
}

impl fmt::Debug for RosterEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RosterEntry")
            .field("platform", &self.platform)
            .field("slug", &self.slug)
            .field("label", &self.label)
            .field("timing", &self.timing)
            .field("peak_gflops", &self.peak_gflops)
            .finish_non_exhaustive()
    }
}

/// The full catalog, in the paper's figure order followed by the
/// host-measured platforms.
fn catalog() -> [RosterEntry; 10] {
    [
        // STARAN: 8192 bit-serial PEs at ~7 MHz ≈ 8192×7e6/32 word ops/s.
        RosterEntry {
            platform: PlatformId::StaranAp,
            slug: PlatformId::StaranAp.slug(),
            label: "STARAN AP",
            timing: TimingKind::Modeled,
            peak_gflops: 8_192.0 * 7.0e6 / 32.0 / 1.0e9,
            make: || Box::new(ApBackend::staran()),
        },
        // CSX600: 2 × 96 PEs × 250 MHz, ~1 FLOP/cycle/PE.
        RosterEntry {
            platform: PlatformId::ClearSpeedCsx600,
            slug: PlatformId::ClearSpeedCsx600.slug(),
            label: "ClearSpeed CSX600",
            timing: TimingKind::Modeled,
            peak_gflops: 192.0 * 0.25,
            make: || Box::new(ApBackend::clearspeed()),
        },
        // Xeon: 16 cores × 3 GHz × 8-wide SIMD FMA ≈ 768 GFLOP/s.
        RosterEntry {
            platform: PlatformId::XeonMulticore,
            slug: PlatformId::XeonMulticore.slug(),
            label: "Intel Xeon 16-core",
            timing: TimingKind::Modeled,
            peak_gflops: 768.0,
            make: || Box::new(XeonModelBackend::new()),
        },
        // GPUs: cores × clock × 2 (FMA).
        RosterEntry {
            platform: PlatformId::Geforce9800Gt,
            slug: PlatformId::Geforce9800Gt.slug(),
            label: "GeForce 9800 GT",
            timing: TimingKind::Modeled,
            peak_gflops: 112.0 * 1.5 * 2.0,
            make: || Box::new(GpuBackend::geforce_9800_gt()),
        },
        RosterEntry {
            platform: PlatformId::Gtx880m,
            slug: PlatformId::Gtx880m.slug(),
            label: "GTX 880M",
            timing: TimingKind::Modeled,
            peak_gflops: 1_536.0 * 0.954 * 2.0,
            make: || Box::new(GpuBackend::gtx_880m()),
        },
        RosterEntry {
            platform: PlatformId::TitanXPascal,
            slug: PlatformId::TitanXPascal.slug(),
            label: "Titan X (Pascal)",
            timing: TimingKind::Modeled,
            peak_gflops: 3_584.0 * 1.417 * 2.0,
            make: || Box::new(GpuBackend::titan_x_pascal()),
        },
        // Host platforms (measured; peak proxies are rough host figures
        // and take no part in the paper's normalization).
        RosterEntry {
            platform: PlatformId::SequentialHost,
            slug: PlatformId::SequentialHost.slug(),
            label: "Sequential (host)",
            timing: TimingKind::Measured,
            peak_gflops: 6.0,
            make: || Box::new(SequentialBackend::new()),
        },
        RosterEntry {
            platform: PlatformId::MimdHost,
            slug: PlatformId::MimdHost.slug(),
            label: "MIMD host",
            timing: TimingKind::Measured,
            peak_gflops: 48.0,
            make: || Box::new(MimdBackend::host_sized()),
        },
        RosterEntry {
            platform: PlatformId::MulticoreHost,
            slug: PlatformId::MulticoreHost.slug(),
            label: "Multicore (thread pool)",
            timing: TimingKind::Measured,
            peak_gflops: 48.0,
            make: || Box::new(MulticoreBackend::host_sized()),
        },
        RosterEntry {
            platform: PlatformId::SimdSoaHost,
            slug: PlatformId::SimdSoaHost.slug(),
            label: "SIMD SoA (host)",
            timing: TimingKind::Measured,
            // Single thread × 4-wide autovectorized lanes over the scalar
            // host proxy.
            peak_gflops: 24.0,
            make: || Box::new(SimdSoaBackend::new()),
        },
    ]
}

/// An ordered selection of platforms for sweeps and figures.
#[derive(Clone, Debug)]
pub struct Roster {
    entries: Vec<RosterEntry>,
}

impl Roster {
    /// The paper's six-platform comparison (Figs. 4 and 6), in its order:
    /// STARAN AP, ClearSpeed emulation, 16-core Xeon, then the three
    /// NVIDIA cards.
    pub fn paper() -> Roster {
        Roster::select([
            PlatformId::StaranAp,
            PlatformId::ClearSpeedCsx600,
            PlatformId::XeonMulticore,
            PlatformId::Geforce9800Gt,
            PlatformId::Gtx880m,
            PlatformId::TitanXPascal,
        ])
    }

    /// The three NVIDIA devices only (Figs. 5 and 7).
    pub fn nvidia() -> Roster {
        Roster::select([
            PlatformId::Geforce9800Gt,
            PlatformId::Gtx880m,
            PlatformId::TitanXPascal,
        ])
    }

    /// Every catalog platform whose backend reports durations of `kind`,
    /// in catalog order.
    pub fn filter(kind: TimingKind) -> Roster {
        Roster {
            entries: catalog()
                .iter()
                .copied()
                .filter(|e| e.timing == kind)
                .collect(),
        }
    }

    /// The measured host platforms ([`Roster::filter`] on
    /// [`TimingKind::Measured`]). Note the MIMD host is honestly
    /// non-deterministic in *outputs*; the deterministic measured subset is
    /// sequential-host, multicore and simd-soa.
    pub fn measured() -> Roster {
        Roster::filter(TimingKind::Measured)
    }

    /// The deterministically modeled platforms ([`Roster::filter`] on
    /// [`TimingKind::Modeled`]).
    pub fn modeled() -> Roster {
        Roster::filter(TimingKind::Modeled)
    }

    /// An arbitrary selection, in the given order. A duplicate or unknown
    /// [`PlatformId`] is a caller bug — a sweep that silently measured one
    /// platform twice (or skipped one) would mislabel its series — so it
    /// panics; use [`Roster::try_select`] to surface the error instead.
    pub fn select(platforms: impl IntoIterator<Item = PlatformId>) -> Roster {
        Roster::try_select(platforms).unwrap_or_else(|e| panic!("Roster::select: {e}"))
    }

    /// [`Roster::select`] returning the error: `Err` names the first
    /// duplicate (or catalog-less) platform instead of producing a roster
    /// whose series would be mislabeled.
    pub fn try_select(platforms: impl IntoIterator<Item = PlatformId>) -> Result<Roster, String> {
        let catalog = catalog();
        let mut entries: Vec<RosterEntry> = Vec::new();
        for p in platforms {
            if entries.iter().any(|e| e.platform == p) {
                return Err(format!("duplicate platform `{p}` in selection"));
            }
            let entry = catalog
                .iter()
                .find(|e| e.platform == p)
                .ok_or_else(|| format!("platform `{p}` has no catalog entry"))?;
            entries.push(*entry);
        }
        Ok(Roster { entries })
    }

    /// The selected entries, in order.
    pub fn entries(&self) -> &[RosterEntry] {
        &self.entries
    }

    /// Entry for one platform, if selected.
    pub fn get(&self, platform: PlatformId) -> Option<&RosterEntry> {
        self.entries.iter().find(|e| e.platform == platform)
    }

    /// Number of selected platforms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the selected entries.
    pub fn iter(&self) -> std::slice::Iter<'_, RosterEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a Roster {
    type Item = &'a RosterEntry;
    type IntoIter = std::slice::Iter<'a, RosterEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roster_matches_the_papers_six_platform_order() {
        let roster = Roster::paper();
        let platforms: Vec<PlatformId> = roster.entries().iter().map(|e| e.platform).collect();
        assert_eq!(
            platforms,
            vec![
                PlatformId::StaranAp,
                PlatformId::ClearSpeedCsx600,
                PlatformId::XeonMulticore,
                PlatformId::Geforce9800Gt,
                PlatformId::Gtx880m,
                PlatformId::TitanXPascal,
            ]
        );
        let labels: Vec<&str> = roster.entries().iter().map(|e| e.label).collect();
        assert_eq!(
            labels,
            vec![
                "STARAN AP",
                "ClearSpeed CSX600",
                "Intel Xeon 16-core",
                "GeForce 9800 GT",
                "GTX 880M",
                "Titan X (Pascal)",
            ]
        );
    }

    #[test]
    fn nvidia_roster_is_the_papers_gpu_subset() {
        let nv = Roster::nvidia();
        assert_eq!(nv.len(), 3);
        let paper = Roster::paper();
        assert_eq!(
            nv.entries().iter().map(|e| e.platform).collect::<Vec<_>>(),
            paper.entries()[3..]
                .iter()
                .map(|e| e.platform)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn entry_labels_match_backend_info_names() {
        for entry in &Roster::paper() {
            let backend = entry.instantiate();
            let info = backend.info();
            assert_eq!(info.name, entry.label, "{:?}", entry.platform);
            assert_eq!(info.platform, entry.platform);
            assert_eq!(info.timing, TimingKind::Modeled);
            assert!(!info.device.is_empty());
        }
    }

    #[test]
    fn select_preserves_order_and_rejects_duplicates() {
        let r = Roster::select([PlatformId::TitanXPascal, PlatformId::StaranAp]);
        assert_eq!(
            r.entries().iter().map(|e| e.platform).collect::<Vec<_>>(),
            vec![PlatformId::TitanXPascal, PlatformId::StaranAp]
        );
        assert!(r.get(PlatformId::StaranAp).is_some());
        assert!(r.get(PlatformId::MimdHost).is_none());

        let err = Roster::try_select([
            PlatformId::TitanXPascal,
            PlatformId::StaranAp,
            PlatformId::TitanXPascal,
        ])
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(err.contains("titan-x-pascal"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate platform")]
    fn select_panics_on_duplicates() {
        Roster::select([PlatformId::StaranAp, PlatformId::StaranAp]);
    }

    #[test]
    fn host_platforms_are_selectable_and_measured() {
        let r = Roster::select([
            PlatformId::SequentialHost,
            PlatformId::MimdHost,
            PlatformId::MulticoreHost,
            PlatformId::SimdSoaHost,
        ]);
        for entry in &r {
            let backend = entry.instantiate();
            assert_eq!(backend.info().timing, TimingKind::Measured);
        }
    }

    #[test]
    fn every_catalog_entry_timing_matches_its_backend_and_roster_grouping() {
        // The satellite invariant: entry.timing is pinned to the built
        // backend's info().timing, and the measured()/modeled() groupings
        // partition the catalog exactly.
        for entry in Roster::measured().entries() {
            assert_eq!(entry.timing, TimingKind::Measured, "{}", entry.slug);
            assert_eq!(
                entry.instantiate().info().timing,
                TimingKind::Measured,
                "{}",
                entry.slug
            );
        }
        for entry in Roster::modeled().entries() {
            assert_eq!(entry.timing, TimingKind::Modeled, "{}", entry.slug);
            assert_eq!(
                entry.instantiate().info().timing,
                TimingKind::Modeled,
                "{}",
                entry.slug
            );
        }
        assert_eq!(
            Roster::measured().len() + Roster::modeled().len(),
            catalog().len()
        );
        assert_eq!(
            Roster::modeled()
                .entries()
                .iter()
                .map(|e| e.platform)
                .collect::<Vec<_>>(),
            Roster::paper()
                .entries()
                .iter()
                .map(|e| e.platform)
                .collect::<Vec<_>>(),
            "the modeled platforms are exactly the paper's six"
        );
    }

    #[test]
    fn slugs_are_stable_unique_and_match_platform_ids() {
        let entries = catalog();
        for entry in &entries {
            assert_eq!(
                entry.slug,
                entry.platform.to_string(),
                "{:?}",
                entry.platform
            );
            assert_eq!(entry.slug, entry.platform.slug());
            assert!(
                entry
                    .slug
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "slug `{}` is not kebab-case",
                entry.slug
            );
        }
        let mut slugs: Vec<&str> = entries.iter().map(|e| e.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), entries.len(), "slugs must be unique");
    }

    #[test]
    fn new_measured_entries_build_their_backends() {
        let mc = Roster::measured();
        let entry = mc.get(PlatformId::MulticoreHost).unwrap();
        assert_eq!(entry.instantiate().info().name, entry.label);
        let entry = mc.get(PlatformId::SimdSoaHost).unwrap();
        assert_eq!(entry.instantiate().info().name, entry.label);
    }

    #[test]
    fn device_names_round_trip_to_platform_ids() {
        assert_eq!(
            PlatformId::from_device_name("Titan X (Pascal)"),
            Some(PlatformId::TitanXPascal)
        );
        assert_eq!(PlatformId::from_device_name("Voodoo 2"), None);
    }
}
