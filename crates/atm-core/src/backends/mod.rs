//! Execution backends: the same ATM tasks on six architectures.
//!
//! Every backend implements [`AtmBackend`]: it executes Task 1 and Tasks
//! 2+3 *functionally* on the caller's aircraft/radar state and returns the
//! execution time under its architecture — modeled simulated time for the
//! GPU/AP/Xeon models, measured wall time for the host backends. Keeping
//! function and timing together is what lets the cyclic executive and the
//! figure harness treat all platforms uniformly, exactly as the paper's
//! comparison does.
//!
//! Platform enumeration goes through [`Roster`]: `Roster::paper()` is the
//! six-platform comparison of Figs. 4 and 6 in the paper's order,
//! `Roster::nvidia()` the three-card subset of Figs. 5 and 7, and
//! `Roster::select` any ad-hoc subset by [`PlatformId`]. Each
//! [`RosterEntry`] carries the legend label and the peak-throughput proxy
//! used by the normalization experiment, and builds a *fresh* backend per
//! call so device clocks never leak between measurement points.

mod ap;
mod gpu;
mod mimd;
mod seq;
mod xeon;

pub use ap::ApBackend;
pub use gpu::GpuBackend;
pub use mimd::MimdBackend;
pub use seq::SequentialBackend;
pub use xeon::XeonModelBackend;

use crate::config::AtmConfig;
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::{Aircraft, RadarReport};
use sim_clock::SimDuration;
use std::fmt;
use telemetry::Recorder;

/// Whether a backend's reported durations are modeled (deterministic
/// simulated time) or measured (host wall clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingKind {
    /// Deterministic simulated time from an architecture model.
    Modeled,
    /// Wall-clock time measured on the host.
    Measured,
}

/// Stable identity of an execution platform.
///
/// The first six variants are the paper's comparison roster in figure
/// order; the two host variants cover the measured reference backends,
/// which have no analogue in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlatformId {
    /// Goodyear STARAN associative processor.
    StaranAp,
    /// ClearSpeed CSX600 associative emulation.
    ClearSpeedCsx600,
    /// Analytic 16-core Xeon multi-core model.
    XeonMulticore,
    /// NVIDIA GeForce 9800 GT (CC 1.x).
    Geforce9800Gt,
    /// NVIDIA GTX 880M (Kepler).
    Gtx880m,
    /// NVIDIA Titan X (Pascal).
    TitanXPascal,
    /// Single-threaded host reference (measured).
    SequentialHost,
    /// Real-thread MIMD host pool (measured).
    MimdHost,
}

impl PlatformId {
    /// Map a simulated device's marketing name back to its platform
    /// (custom [`gpu_sim::DeviceSpec`]s that are not in the paper's
    /// catalog have no id).
    pub fn from_device_name(name: &str) -> Option<PlatformId> {
        match name {
            "GeForce 9800 GT" => Some(PlatformId::Geforce9800Gt),
            "GTX 880M" => Some(PlatformId::Gtx880m),
            "Titan X (Pascal)" => Some(PlatformId::TitanXPascal),
            _ => None,
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlatformId::StaranAp => "staran-ap",
            PlatformId::ClearSpeedCsx600 => "clearspeed-csx600",
            PlatformId::XeonMulticore => "xeon-multicore",
            PlatformId::Geforce9800Gt => "geforce-9800-gt",
            PlatformId::Gtx880m => "gtx-880m",
            PlatformId::TitanXPascal => "titan-x-pascal",
            PlatformId::SequentialHost => "sequential-host",
            PlatformId::MimdHost => "mimd-host",
        };
        f.write_str(s)
    }
}

/// Borrowed description of a backend: identity, timing discipline and a
/// one-line device summary. Returned by [`AtmBackend::info`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendInfo<'a> {
    /// Human-readable platform name (the series label in figures).
    pub name: &'a str,
    /// Stable platform identity.
    pub platform: PlatformId,
    /// Whether reported durations are modeled or measured.
    pub timing: TimingKind,
    /// Short device summary ("3584 CUDA cores @ 1417 MHz", …).
    pub device: &'a str,
}

/// A platform that can execute the ATM tasks.
pub trait AtmBackend {
    /// Identity, timing discipline and device summary of this backend.
    fn info(&self) -> BackendInfo<'_>;

    /// Whether durations are modeled or measured (shorthand for
    /// `self.info().timing`).
    fn timing_kind(&self) -> TimingKind {
        self.info().timing
    }

    /// Attach a telemetry recorder. Backends that model their substrate
    /// emit spans for kernel launches, associative passes, barrier phases
    /// and transfers; the default implementation ignores the recorder.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }

    /// One-time setup before a simulation run (e.g. the GPU backend charges
    /// the initial host→device upload of the flight database here).
    fn on_setup(&mut self, aircraft: &[Aircraft]) -> SimDuration {
        let _ = aircraft;
        SimDuration::ZERO
    }

    /// Execute Task 1 (tracking & correlation) for one period.
    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration;

    /// Execute Tasks 2+3 (collision detection & resolution).
    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration;

    /// Execute Task 4 (terrain avoidance — the future-work extension; see
    /// [`crate::terrain`]).
    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration;
}

/// One platform in a [`Roster`]: identity, legend label, the
/// peak-throughput proxy used by the §7.2 normalization experiment, and a
/// constructor producing a fresh backend (device clocks and jitter
/// sequences must not leak between measurement points).
#[derive(Clone, Copy)]
pub struct RosterEntry {
    /// Stable platform identity.
    pub platform: PlatformId,
    /// Legend label (matches `info().name` of the built backend).
    pub label: &'static str,
    /// Peak arithmetic throughput proxy in GFLOP/s (lanes × clock × 2).
    pub peak_gflops: f64,
    make: fn() -> Box<dyn AtmBackend>,
}

impl RosterEntry {
    /// Build a fresh backend for this platform.
    pub fn instantiate(&self) -> Box<dyn AtmBackend> {
        (self.make)()
    }
}

impl fmt::Debug for RosterEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RosterEntry")
            .field("platform", &self.platform)
            .field("label", &self.label)
            .field("peak_gflops", &self.peak_gflops)
            .finish_non_exhaustive()
    }
}

/// The full catalog, in the paper's figure order followed by the two
/// host-measured reference platforms.
fn catalog() -> [RosterEntry; 8] {
    [
        // STARAN: 8192 bit-serial PEs at ~7 MHz ≈ 8192×7e6/32 word ops/s.
        RosterEntry {
            platform: PlatformId::StaranAp,
            label: "STARAN AP",
            peak_gflops: 8_192.0 * 7.0e6 / 32.0 / 1.0e9,
            make: || Box::new(ApBackend::staran()),
        },
        // CSX600: 2 × 96 PEs × 250 MHz, ~1 FLOP/cycle/PE.
        RosterEntry {
            platform: PlatformId::ClearSpeedCsx600,
            label: "ClearSpeed CSX600",
            peak_gflops: 192.0 * 0.25,
            make: || Box::new(ApBackend::clearspeed()),
        },
        // Xeon: 16 cores × 3 GHz × 8-wide SIMD FMA ≈ 768 GFLOP/s.
        RosterEntry {
            platform: PlatformId::XeonMulticore,
            label: "Intel Xeon 16-core",
            peak_gflops: 768.0,
            make: || Box::new(XeonModelBackend::new()),
        },
        // GPUs: cores × clock × 2 (FMA).
        RosterEntry {
            platform: PlatformId::Geforce9800Gt,
            label: "GeForce 9800 GT",
            peak_gflops: 112.0 * 1.5 * 2.0,
            make: || Box::new(GpuBackend::geforce_9800_gt()),
        },
        RosterEntry {
            platform: PlatformId::Gtx880m,
            label: "GTX 880M",
            peak_gflops: 1_536.0 * 0.954 * 2.0,
            make: || Box::new(GpuBackend::gtx_880m()),
        },
        RosterEntry {
            platform: PlatformId::TitanXPascal,
            label: "Titan X (Pascal)",
            peak_gflops: 3_584.0 * 1.417 * 2.0,
            make: || Box::new(GpuBackend::titan_x_pascal()),
        },
        // Host references (measured; peak proxies are rough host figures
        // and take no part in the paper's normalization).
        RosterEntry {
            platform: PlatformId::SequentialHost,
            label: "Sequential (host)",
            peak_gflops: 6.0,
            make: || Box::new(SequentialBackend::new()),
        },
        RosterEntry {
            platform: PlatformId::MimdHost,
            label: "MIMD host",
            peak_gflops: 48.0,
            make: || Box::new(MimdBackend::host_sized()),
        },
    ]
}

/// An ordered selection of platforms for sweeps and figures.
#[derive(Clone, Debug)]
pub struct Roster {
    entries: Vec<RosterEntry>,
}

impl Roster {
    /// The paper's six-platform comparison (Figs. 4 and 6), in its order:
    /// STARAN AP, ClearSpeed emulation, 16-core Xeon, then the three
    /// NVIDIA cards.
    pub fn paper() -> Roster {
        Roster::select([
            PlatformId::StaranAp,
            PlatformId::ClearSpeedCsx600,
            PlatformId::XeonMulticore,
            PlatformId::Geforce9800Gt,
            PlatformId::Gtx880m,
            PlatformId::TitanXPascal,
        ])
    }

    /// The three NVIDIA devices only (Figs. 5 and 7).
    pub fn nvidia() -> Roster {
        Roster::select([
            PlatformId::Geforce9800Gt,
            PlatformId::Gtx880m,
            PlatformId::TitanXPascal,
        ])
    }

    /// An arbitrary selection, in the given order. Duplicates are kept
    /// (a sweep may legitimately measure one platform twice).
    pub fn select(platforms: impl IntoIterator<Item = PlatformId>) -> Roster {
        let catalog = catalog();
        let entries = platforms
            .into_iter()
            .map(|p| {
                *catalog
                    .iter()
                    .find(|e| e.platform == p)
                    .expect("every PlatformId has a catalog entry")
            })
            .collect();
        Roster { entries }
    }

    /// The selected entries, in order.
    pub fn entries(&self) -> &[RosterEntry] {
        &self.entries
    }

    /// Entry for one platform, if selected.
    pub fn get(&self, platform: PlatformId) -> Option<&RosterEntry> {
        self.entries.iter().find(|e| e.platform == platform)
    }

    /// Number of selected platforms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the selected entries.
    pub fn iter(&self) -> std::slice::Iter<'_, RosterEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a Roster {
    type Item = &'a RosterEntry;
    type IntoIter = std::slice::Iter<'a, RosterEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roster_matches_the_papers_six_platform_order() {
        let roster = Roster::paper();
        let platforms: Vec<PlatformId> = roster.entries().iter().map(|e| e.platform).collect();
        assert_eq!(
            platforms,
            vec![
                PlatformId::StaranAp,
                PlatformId::ClearSpeedCsx600,
                PlatformId::XeonMulticore,
                PlatformId::Geforce9800Gt,
                PlatformId::Gtx880m,
                PlatformId::TitanXPascal,
            ]
        );
        let labels: Vec<&str> = roster.entries().iter().map(|e| e.label).collect();
        assert_eq!(
            labels,
            vec![
                "STARAN AP",
                "ClearSpeed CSX600",
                "Intel Xeon 16-core",
                "GeForce 9800 GT",
                "GTX 880M",
                "Titan X (Pascal)",
            ]
        );
    }

    #[test]
    fn nvidia_roster_is_the_papers_gpu_subset() {
        let nv = Roster::nvidia();
        assert_eq!(nv.len(), 3);
        let paper = Roster::paper();
        assert_eq!(
            nv.entries().iter().map(|e| e.platform).collect::<Vec<_>>(),
            paper.entries()[3..]
                .iter()
                .map(|e| e.platform)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn entry_labels_match_backend_info_names() {
        for entry in &Roster::paper() {
            let backend = entry.instantiate();
            let info = backend.info();
            assert_eq!(info.name, entry.label, "{:?}", entry.platform);
            assert_eq!(info.platform, entry.platform);
            assert_eq!(info.timing, TimingKind::Modeled);
            assert!(!info.device.is_empty());
        }
    }

    #[test]
    fn select_preserves_order_and_duplicates() {
        let r = Roster::select([
            PlatformId::TitanXPascal,
            PlatformId::StaranAp,
            PlatformId::TitanXPascal,
        ]);
        assert_eq!(
            r.entries().iter().map(|e| e.platform).collect::<Vec<_>>(),
            vec![
                PlatformId::TitanXPascal,
                PlatformId::StaranAp,
                PlatformId::TitanXPascal
            ]
        );
        assert!(r.get(PlatformId::StaranAp).is_some());
        assert!(r.get(PlatformId::MimdHost).is_none());
    }

    #[test]
    fn host_platforms_are_selectable_and_measured() {
        let r = Roster::select([PlatformId::SequentialHost, PlatformId::MimdHost]);
        for entry in &r {
            let backend = entry.instantiate();
            assert_eq!(backend.info().timing, TimingKind::Measured);
        }
    }

    #[test]
    fn device_names_round_trip_to_platform_ids() {
        assert_eq!(
            PlatformId::from_device_name("Titan X (Pascal)"),
            Some(PlatformId::TitanXPascal)
        );
        assert_eq!(PlatformId::from_device_name("Voodoo 2"), None);
    }
}
