//! The associative-processor implementation of the ATM tasks.
//!
//! Follows the structure of the prior work's STARAN/ClearSpeed programs
//! ([12, 13]) on the [`ap_sim::ApMachine`] primitives:
//!
//! * **Task 1** — the control unit iterates the radar reports; for each
//!   one it broadcasts the report and performs *constant-time* associative
//!   searches over all aircraft (matched-hit search, unmatched-hit search),
//!   applies the match/discard rules with masked parallel writes, and
//!   resolves the match with the response counter/pick-one network. Total:
//!   O(1) associative work per radar → O(n) per period, the AP's defining
//!   linear bound.
//! * **Tasks 2+3** — the control unit iterates the aircraft; each step
//!   broadcasts the track's (trial) path, a single masked arithmetic step
//!   computes every PE's Batcher window start in parallel, an associative
//!   search finds critical responders and a min-reduction picks the
//!   earliest; rotations re-broadcast and repeat. Again O(1) associative
//!   work per aircraft (bounded rotations) → O(n).
//!
//! The per-radar/per-aircraft rule evaluation is written to produce results
//! bit-identical to the sequential reference (see tests), so the backends
//! differ only in *time*, never in answers.

use crate::backends::{AtmBackend, BackendInfo, PlatformId, TimingKind};
use crate::batcher::{conflict_window, within_critical_reach};
use crate::config::AtmConfig;
use crate::detect::ScanIndex;
use crate::terrain::{TerrainGrid, TerrainTaskConfig};
use crate::types::{
    Aircraft, RadarReport, MATCH_MULTIPLE, MATCH_NONE, MATCH_ONE, NO_COLLISION, RADAR_DISCARDED,
    RADAR_UNMATCHED,
};
use ap_sim::{ApMachine, ApTimingProfile, ResponderSet};
use sim_clock::{NullSink, SimDuration};
use telemetry::Recorder;

/// One PE's contents: the flight record plus the scratch word the detection
/// step uses for its per-PE window start.
#[derive(Clone, Copy, Debug)]
struct ApRecord {
    a: Aircraft,
    scratch: f32,
    /// Pending radar position to adopt at the end of Task 1 (written by
    /// the match step, consumed by the final adopt step).
    pending: Option<(f32, f32)>,
}

/// Words per [`ApRecord`] for I/O pricing (flight record + scratch).
const AP_RECORD_WORDS: u32 = Aircraft::RECORD_WORDS + 1;

/// ATM on an emulated associative processor.
pub struct ApBackend {
    profile: ApTimingProfile,
    platform: PlatformId,
    recorder: Recorder,
    /// Where the next machine run starts on the telemetry track (machines
    /// are rebuilt per task, so spans from successive tasks must not
    /// overlap at origin zero).
    telemetry_clock: SimDuration,
}

impl ApBackend {
    /// ATM on an arbitrary AP timing profile. Profiles outside the paper's
    /// two machines report themselves as the STARAN-class platform.
    pub fn new(profile: ApTimingProfile) -> Self {
        let platform = match profile.name {
            "ClearSpeed CSX600" => PlatformId::ClearSpeedCsx600,
            _ => PlatformId::StaranAp,
        };
        ApBackend {
            profile,
            platform,
            recorder: Recorder::disabled(),
            telemetry_clock: SimDuration::ZERO,
        }
    }

    /// The STARAN associative processor.
    pub fn staran() -> Self {
        ApBackend::new(ApTimingProfile::staran())
    }

    /// The ClearSpeed CSX600 emulation of the AP.
    pub fn clearspeed() -> Self {
        ApBackend::new(ApTimingProfile::clearspeed_csx600())
    }

    fn machine(&self, aircraft: &[Aircraft]) -> ApMachine<ApRecord> {
        let mut m = ApMachine::new(self.profile.clone());
        if self.recorder.is_enabled() {
            let track = self.recorder.track(&format!("ap: {}", self.profile.name));
            m.set_telemetry(self.recorder.clone(), track, self.telemetry_clock);
        }
        let records = aircraft
            .iter()
            .map(|&a| ApRecord {
                a,
                scratch: f32::INFINITY,
                pending: None,
            })
            .collect();
        m.load_records(records, AP_RECORD_WORDS);
        m
    }

    /// Book a finished machine run: its elapsed time moves the telemetry
    /// origin so the next run's spans start where this one ended.
    fn finish(&mut self, m: &ApMachine<ApRecord>) -> SimDuration {
        let elapsed = m.elapsed();
        self.telemetry_clock += elapsed;
        elapsed
    }

    fn writeback(m: &mut ApMachine<ApRecord>, aircraft: &mut [Aircraft]) {
        let records = m.unload_records(AP_RECORD_WORDS);
        for (dst, rec) in aircraft.iter_mut().zip(records) {
            *dst = rec.a;
        }
    }
}

impl AtmBackend for ApBackend {
    fn info(&self) -> BackendInfo<'_> {
        let device = match self.platform {
            PlatformId::ClearSpeedCsx600 => "192 PEs @ 250 MHz (2x CSX600)",
            _ => "8192 bit-serial PEs @ 7 MHz",
        };
        BackendInfo {
            name: self.profile.name,
            platform: self.platform,
            timing: TimingKind::Modeled,
            device,
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn track_correlate(
        &mut self,
        aircraft: &mut [Aircraft],
        radars: &mut [RadarReport],
        cfg: &AtmConfig,
    ) -> SimDuration {
        let mut m = self.machine(aircraft);
        let n = aircraft.len();

        // Phase 1: expected positions + state reset, one parallel step.
        m.for_each_all(4, |_, r| {
            r.a.expected_x = r.a.x + r.a.dx;
            r.a.expected_y = r.a.y + r.a.dy;
            r.a.r_match = MATCH_NONE;
            r.pending = None;
        });

        // Phase 2: the control unit drives each radar through constant-time
        // associative steps.
        for pass in 0..cfg.track_passes {
            if pass > 0 && !radars.iter().any(|r| r.r_match_with == RADAR_UNMATCHED) {
                break;
            }
            let hw = cfg.pass_half_width(pass);
            for radar in radars.iter_mut() {
                if radar.r_match_with != RADAR_UNMATCHED {
                    continue;
                }
                let (rx, ry) = m.broadcast((radar.rx, radar.ry));

                // Matched aircraft hit again by this radar → dropped
                // (pass 0 only; later passes scan unmatched aircraft only).
                if pass == 0 {
                    let hit_matched = m.search(2, |r| {
                        r.a.r_match == MATCH_ONE
                            && (rx - r.a.expected_x).abs() < hw
                            && (ry - r.a.expected_y).abs() < hw
                    });
                    if hit_matched.any() {
                        m.for_each_masked(&hit_matched, 1, |_, r| {
                            r.a.r_match = MATCH_MULTIPLE;
                        });
                    }
                }

                // Unmatched aircraft in the box: the response count decides.
                let hit_unmatched = m.search(2, |r| {
                    r.a.r_match == MATCH_NONE
                        && (rx - r.a.expected_x).abs() < hw
                        && (ry - r.a.expected_y).abs() < hw
                });
                match hit_unmatched.count() {
                    0 => {}
                    1 => {
                        let p = m.pick_one(&hit_unmatched).expect("count was 1");
                        radar.r_match_with = p as i32;
                        let mut only = ResponderSet::new(n);
                        only.set(p);
                        m.for_each_masked(&only, 2, |_, r| {
                            r.a.r_match = MATCH_ONE;
                            r.pending = Some((rx, ry));
                        });
                    }
                    _ => {
                        radar.r_match_with = RADAR_DISCARDED;
                    }
                }
            }
        }

        // Phase 3: adopt positions in one parallel step — expected position
        // by default, the pending radar position for valid unique matches.
        m.for_each_all(4, |_, r| {
            r.a.x = r.a.expected_x;
            r.a.y = r.a.expected_y;
            if r.a.r_match == MATCH_ONE {
                if let Some((px, py)) = r.pending {
                    r.a.x = px;
                    r.a.y = py;
                }
            }
        });

        Self::writeback(&mut m, aircraft);
        // Machine clock covers load I/O, every associative primitive, and
        // the unload I/O performed by writeback.
        self.finish(&m)
    }

    fn detect_resolve(&mut self, aircraft: &mut [Aircraft], cfg: &AtmConfig) -> SimDuration {
        let mut m = self.machine(aircraft);
        let n = aircraft.len();
        let rotations = cfg.rotation_sequence();
        let reach = cfg.critical_reach_nm();
        // Host-side pruning of the PE walk. The machine's masked primitives
        // price by the PE array width (associative lockstep), so driving
        // the window step and the critical search through a candidate mask
        // books the exact same machine time and stats as the all-PE
        // versions — only the emulator's host work shrinks. Out-of-mask
        // PEs' scratch is never read: both the search and the min-reduction
        // are masked.
        let index = ScanIndex::for_config(aircraft, cfg);

        for i in 0..n {
            // Reset the track's bookkeeping (control-unit writes + one
            // masked step to keep the machine model honest).
            let mut track_mask = ResponderSet::new(n);
            track_mask.set(i);
            m.for_each_masked(&track_mask, 3, |_, r| {
                r.a.time_till = cfg.critical_periods;
                r.a.batx = r.a.dx;
                r.a.baty = r.a.dy;
            });

            let mut next_rotation = 0usize;
            let mut vel = {
                let rec = &m.records()[i];
                (rec.a.dx, rec.a.dy)
            };
            let mut chk = 0u32;

            // The candidate mask depends only on positions and altitudes,
            // which never change during Tasks 2+3 — build it once per
            // track.
            let scan_mask: Option<ResponderSet> = index.responder_mask(i, &m.records()[i].a, n);

            loop {
                // Broadcast the track and compute every PE's window start
                // in one parallel arithmetic step.
                let track = m.broadcast(m.records()[i].a);
                let window = |p: usize, r: &mut ApRecord| {
                    r.scratch = if p == i
                        || (track.alt - r.a.alt).abs() >= cfg.alt_separation_ft
                        || !within_critical_reach(&track, &r.a, reach, &mut NullSink)
                    {
                        f32::INFINITY
                    } else {
                        match conflict_window(
                            &track,
                            vel,
                            &r.a,
                            cfg.separation_nm,
                            cfg.horizon_periods,
                            &mut NullSink,
                        ) {
                            Some((tmin, _)) => tmin,
                            None => f32::INFINITY,
                        }
                    };
                };

                // Associative search for critical responders, then the
                // min-reduction picks the earliest conflict.
                let critical = match &scan_mask {
                    Some(mask) => {
                        m.for_each_masked(mask, 8, window);
                        m.search_masked(mask, 1, |r| r.scratch < cfg.critical_periods)
                    }
                    None => {
                        m.for_each_all(8, window);
                        m.search(1, |r| r.scratch < cfg.critical_periods)
                    }
                };
                if !critical.any() {
                    break;
                }
                let partner = m
                    .min_by_key(&critical, |r| r.scratch as f64)
                    .expect("responders exist");
                let tmin = m.records()[partner].scratch;

                // Mark both aircraft.
                let mut pair = ResponderSet::new(n);
                pair.set(partner);
                m.for_each_masked(&pair, 2, |_, r| {
                    r.a.col = true;
                    r.a.col_with = i as i32;
                    r.a.time_till = r.a.time_till.min(tmin);
                });
                m.for_each_masked(&track_mask, 2, |_, r| {
                    r.a.col = true;
                    r.a.col_with = partner as i32;
                    r.a.time_till = tmin;
                });

                if next_rotation >= rotations.len() {
                    // Unresolvable: keep the original path, flags stay.
                    m.for_each_masked(&track_mask, 2, |_, r| {
                        r.a.batx = r.a.dx;
                        r.a.baty = r.a.dy;
                    });
                    chk = 0;
                    break;
                }
                let base = {
                    let rec = &m.records()[i];
                    (rec.a.dx, rec.a.dy)
                };
                vel = crate::detect::rotate_velocity(base, rotations[next_rotation], &mut NullSink);
                next_rotation += 1;
                chk += 1;
                let v = vel;
                m.for_each_masked(&track_mask, 2, move |_, r| {
                    r.a.batx = v.0;
                    r.a.baty = v.1;
                });
            }

            if chk > 0 {
                let v = vel;
                m.for_each_masked(&track_mask, 5, move |_, r| {
                    r.a.dx = v.0;
                    r.a.dy = v.1;
                    r.a.col = false;
                    r.a.col_with = NO_COLLISION;
                    r.a.time_till = cfg.critical_periods;
                });
            }
        }

        Self::writeback(&mut m, aircraft);
        self.finish(&m)
    }

    fn terrain_avoidance(
        &mut self,
        aircraft: &mut [Aircraft],
        grid: &TerrainGrid,
        tcfg: &TerrainTaskConfig,
    ) -> SimDuration {
        // Every PE checks its own track simultaneously: one parallel
        // arithmetic step per look-ahead sample plus one masked climb step
        // — constant associative work regardless of the fleet size, the
        // same property that makes the other AP tasks linear (here the
        // only n-dependence is the record I/O).
        let mut m = self.machine(aircraft);
        for s in 0..=tcfg.samples {
            let t = tcfg.lookahead_periods * s as f32 / tcfg.samples as f32;
            m.for_each_all(14, |_, r| {
                let px = r.a.x + r.a.dx * t;
                let py = r.a.y + r.a.dy * t;
                let required = grid.elevation_at(px, py) + tcfg.clearance_ft;
                // Accumulate the per-track requirement in the scratch word.
                if s == 0 || required > r.scratch {
                    r.scratch = required;
                }
            });
        }
        let low = m.search(2, |r| r.a.alt < r.scratch);
        if low.any() {
            m.for_each_masked(&low, 1, |_, r| {
                r.a.alt = r.scratch;
            });
        }
        Self::writeback(&mut m, aircraft);
        self.finish(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::backends::SequentialBackend;

    fn track_on(
        backend: &mut dyn AtmBackend,
        n: usize,
        seed: u64,
    ) -> (Vec<Aircraft>, Vec<RadarReport>, SimDuration) {
        let mut field = Airfield::with_seed(n, seed);
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
        (field.aircraft, radars, d)
    }

    /// Positions/match results must agree with the sequential reference
    /// (batx/baty are scratch during AP tracking, so compare the semantic
    /// fields).
    fn semantically_equal(a: &[Aircraft], b: &[Aircraft]) -> bool {
        a.iter().zip(b).all(|(x, y)| {
            x.x == y.x && x.y == y.y && x.dx == y.dx && x.dy == y.dy && x.r_match == y.r_match
        })
    }

    #[test]
    fn ap_track_matches_sequential_reference() {
        let mut ap = ApBackend::staran();
        let mut seq = SequentialBackend::new();
        let (ac_ap, rd_ap, _) = track_on(&mut ap, 250, 13);
        let (ac_seq, rd_seq, _) = track_on(&mut seq, 250, 13);
        assert!(semantically_equal(&ac_ap, &ac_seq));
        assert_eq!(rd_ap, rd_seq);
    }

    #[test]
    fn ap_detect_matches_sequential_reference() {
        let cfg = AtmConfig::default();
        let field = Airfield::with_seed(250, 14);
        let mut ac_ap = field.aircraft.clone();
        let mut ac_seq = field.aircraft.clone();
        ApBackend::staran().detect_resolve(&mut ac_ap, &cfg);
        SequentialBackend::new().detect_resolve(&mut ac_seq, &cfg);
        // Full equality here: detect writes batx/baty identically too.
        assert_eq!(ac_ap, ac_seq);
    }

    #[test]
    fn clearspeed_results_equal_staran_results() {
        let (ac_a, rd_a, t_a) = track_on(&mut ApBackend::staran(), 300, 15);
        let (ac_b, rd_b, t_b) = track_on(&mut ApBackend::clearspeed(), 300, 15);
        assert_eq!(ac_a, ac_b, "timing profile must not change results");
        assert_eq!(rd_a, rd_b);
        assert_ne!(t_a, t_b, "but the clocks differ");
    }

    #[test]
    fn staran_tracking_scales_linearly() {
        // Pure associative work is constant per radar; doubling the fleet
        // must roughly double the time (I/O is linear too).
        let (_, _, t1) = track_on(&mut ApBackend::staran(), 500, 16);
        let (_, _, t2) = track_on(&mut ApBackend::staran(), 1_000, 16);
        let ratio = t2.as_picos() as f64 / t1.as_picos() as f64;
        assert!((1.5..=2.6).contains(&ratio), "ratio {ratio} not ~2");
    }

    #[test]
    fn clearspeed_pays_virtualization_beyond_192_pes() {
        // Below the PE count, ops are single-pass; an 8× fleet needs
        // ceil(n/192) passes, so time grows super-linearly vs STARAN.
        let (_, _, s1) = track_on(&mut ApBackend::clearspeed(), 192, 17);
        let (_, _, s8) = track_on(&mut ApBackend::clearspeed(), 1_536, 17);
        let ratio = s8.as_picos() as f64 / s1.as_picos() as f64;
        assert!(
            ratio > 10.0,
            "expected ≫8× from virtualization, got {ratio}"
        );
    }

    #[test]
    fn ap_timing_is_deterministic() {
        let (_, _, a) = track_on(&mut ApBackend::staran(), 300, 18);
        let (_, _, b) = track_on(&mut ApBackend::staran(), 300, 18);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_field_is_handled() {
        let cfg = AtmConfig::default();
        let mut ap = ApBackend::staran();
        let mut ac: Vec<Aircraft> = vec![];
        let mut rd: Vec<RadarReport> = vec![];
        let _ = ap.track_correlate(&mut ac, &mut rd, &cfg);
        let _ = ap.detect_resolve(&mut ac, &cfg);
    }
}
