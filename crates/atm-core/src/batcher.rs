//! Batcher's time-window conflict detection (the paper's Equations 1–6).
//!
//! For a pair of aircraft flying straight lines, the set of times at which
//! their separation along one axis is below the protected distance is an
//! interval (a band on the paper's time-x graph, Fig. 3). A conflict exists
//! iff the x-interval and y-interval overlap within the look-ahead horizon;
//! the overlap start is the paper's `time_min`, its end `time_max`.
//!
//! The paper prints Equations 1–4 with absolute values
//! (`(|Δx| ∓ 3)/|Δv_x|`), which gives the correct window only for
//! *approaching* pairs; for receding pairs the absolute-value form
//! manufactures a bogus future window out of a past one. We implement the
//! signed interval directly (solve `|Δx + Δv_x·t| ≤ sep` exactly), which is
//! the algorithm of the cited prior work [13] and what Fig. 3 depicts; the
//! deviation from the printed formulas is documented in DESIGN.md.
//!
//! All cost-relevant arithmetic is reported to the caller's
//! [`sim_clock::CostSink`] so every backend prices the same operation mix.

use crate::types::Aircraft;
use sim_clock::CostSink;

/// Relative-velocity epsilon below which an axis is treated as parallel.
const PARALLEL_EPS: f32 = 1e-9;

/// The time interval (in periods, from now) during which two straight-line
/// tracks violate separation along one axis, clipped to `[0, horizon]`.
///
/// `rel_pos`/`rel_vel` are trial − track; `sep` is the protected distance
/// (the paper's 3 nm total box). Returns `None` when the axis never
/// violates separation within the horizon.
pub fn axis_window(
    rel_pos: f32,
    rel_vel: f32,
    sep: f32,
    horizon: f32,
    sink: &mut impl CostSink,
) -> Option<(f32, f32)> {
    sink.fadd(2); // separation compare per bound
    if rel_vel.abs() < PARALLEL_EPS {
        sink.branch(true);
        // Parallel along this axis: in violation for all time or never.
        return if rel_pos.abs() <= sep {
            Some((0.0, horizon))
        } else {
            None
        };
    }
    // Solve rel_pos + rel_vel·t ∈ [−sep, +sep].
    sink.fadd(2);
    sink.fdiv(2);
    let t1 = (-sep - rel_pos) / rel_vel;
    let t2 = (sep - rel_pos) / rel_vel;
    let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
    sink.branch(false);
    // Clip to the look-ahead horizon.
    let lo = lo.max(0.0);
    let hi = hi.min(horizon);
    sink.fadd(2);
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

/// The conflict window of a (track, trial) pair under Batcher's algorithm:
/// the paper's `time_min`/`time_max` (Equations 5–6), or `None` when the
/// pair is conflict-free within the horizon.
///
/// `track_vel` lets the caller substitute the trial path (`batx`, `baty`)
/// for the track aircraft during resolution without mutating the record.
pub fn conflict_window(
    track: &Aircraft,
    track_vel: (f32, f32),
    trial: &Aircraft,
    sep: f32,
    horizon: f32,
    sink: &mut impl CostSink,
) -> Option<(f32, f32)> {
    let rel_x = trial.x - track.x;
    let rel_y = trial.y - track.y;
    let rel_vx = trial.dx - track_vel.0;
    let rel_vy = trial.dy - track_vel.1;
    conflict_window_raw(rel_x, rel_y, rel_vx, rel_vy, sep, horizon, sink)
}

/// [`conflict_window`] on pre-computed relative kinematics (trial − track,
/// per axis). The structure-of-arrays scan computes the relative components
/// straight from its split coordinate arrays, so it enters here; the booked
/// mix includes the four relative subtractions the caller performed.
pub fn conflict_window_raw(
    rel_x: f32,
    rel_y: f32,
    rel_vx: f32,
    rel_vy: f32,
    sep: f32,
    horizon: f32,
    sink: &mut impl CostSink,
) -> Option<(f32, f32)> {
    sink.fadd(4); // relative position/velocity per axis
    let (x_lo, x_hi) = axis_window(rel_x, rel_vx, sep, horizon, sink)?;
    let (y_lo, y_hi) = axis_window(rel_y, rel_vy, sep, horizon, sink)?;

    // Equations 5–6: the conflict needs both axes violated simultaneously.
    sink.fadd(2);
    let time_min = x_lo.max(y_lo);
    let time_max = x_hi.min(y_hi);
    sink.branch(false);
    if time_min < time_max {
        Some((time_min, time_max))
    } else {
        None
    }
}

/// Whether two aircraft are within vertical separation of each other (the
/// paper's 1000 ft altitude gate in Algorithm 2).
pub fn same_altitude_band(
    a: &Aircraft,
    b: &Aircraft,
    alt_sep: f32,
    sink: &mut impl CostSink,
) -> bool {
    sink.fadd(2);
    sink.branch(false);
    (a.alt - b.alt).abs() < alt_sep
}

/// Whether two aircraft are horizontally close enough to reach a *critical*
/// conflict (the range gate of Algorithm 2's scan; `reach` comes from
/// [`crate::AtmConfig::critical_reach_nm`]).
///
/// Like the altitude gate this is evaluated unconditionally for every
/// non-self pair, in every scan mode, with a fixed operation mix (two
/// subtract-and-compare pairs, one axis each) — predicated, lockstep-style
/// evaluation rather than short-circuiting, so the per-pair cost is
/// data-independent and fast paths can book skipped pairs in aggregate.
/// The compare is `<=`: with a zero-speed fleet `reach` collapses to the
/// separation box exactly, and a pair sitting exactly on the box edge does
/// have a (zero-width-start) violation window.
pub fn within_critical_reach(
    a: &Aircraft,
    b: &Aircraft,
    reach: f32,
    sink: &mut impl CostSink,
) -> bool {
    sink.fadd(4);
    sink.branch(false);
    (a.x - b.x).abs() <= reach && (a.y - b.y).abs() <= reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::NullSink;

    const H: f32 = 2_400.0;

    fn sink() -> NullSink {
        NullSink
    }

    #[test]
    fn head_on_pair_conflicts_at_the_meeting_time() {
        // Track at x=0 moving +1 nm/period; trial at x=100 moving −1.
        // Closing speed 2, gap 100, sep 3 → violation from t=48.5 to t=51.5.
        let track = Aircraft::at(0.0, 0.0).with_velocity(1.0, 0.0);
        let trial = Aircraft::at(100.0, 0.0).with_velocity(-1.0, 0.0);
        let (tmin, tmax) =
            conflict_window(&track, (1.0, 0.0), &trial, 3.0, H, &mut sink()).unwrap();
        assert!((tmin - 48.5).abs() < 1e-3, "{tmin}");
        assert!((tmax - 51.5).abs() < 1e-3, "{tmax}");
    }

    #[test]
    fn receding_pair_is_not_a_conflict() {
        // Same geometry but flying apart: the absolute-value form of the
        // printed equations would flag this; the signed window must not.
        let track = Aircraft::at(0.0, 0.0).with_velocity(-1.0, 0.0);
        let trial = Aircraft::at(100.0, 0.0).with_velocity(1.0, 0.0);
        assert!(conflict_window(&track, (-1.0, 0.0), &trial, 3.0, H, &mut sink()).is_none());
    }

    #[test]
    fn currently_overlapping_pair_has_window_starting_now() {
        let track = Aircraft::at(0.0, 0.0).with_velocity(0.1, 0.0);
        let trial = Aircraft::at(1.0, 1.0).with_velocity(0.1, 0.0);
        let (tmin, _) = conflict_window(&track, (0.1, 0.0), &trial, 3.0, H, &mut sink()).unwrap();
        assert_eq!(tmin, 0.0);
    }

    #[test]
    fn parallel_same_velocity_far_apart_never_conflicts() {
        let track = Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.05);
        let trial = Aircraft::at(50.0, 50.0).with_velocity(0.05, 0.05);
        assert!(conflict_window(&track, (0.05, 0.05), &trial, 3.0, H, &mut sink()).is_none());
    }

    #[test]
    fn conflict_beyond_horizon_is_ignored() {
        // Meeting at t ≈ 5000 periods with a 2400-period horizon.
        let track = Aircraft::at(0.0, 0.0).with_velocity(0.01, 0.0);
        let trial = Aircraft::at(100.0, 0.0).with_velocity(-0.01, 0.0);
        assert!(conflict_window(&track, (0.01, 0.0), &trial, 3.0, H, &mut sink()).is_none());
    }

    #[test]
    fn crossing_tracks_conflict_only_if_windows_overlap() {
        // Trial crosses the track's path, but passes the crossing point at
        // a different time: x-windows and y-windows must not intersect.
        let track = Aircraft::at(0.0, 0.0).with_velocity(1.0, 0.0);
        let trial = Aircraft::at(50.0, -200.0).with_velocity(0.0, 1.0);
        // Track reaches x=50 at t=50 (x window ≈ 47–53); trial reaches y=0
        // at t=200 (y window ≈ 197–203, and track stays at y=0). They never
        // co-occur.
        assert!(conflict_window(&track, (1.0, 0.0), &trial, 3.0, H, &mut sink()).is_none());
    }

    #[test]
    fn axis_window_handles_negative_start() {
        // Violation began in the past, still ongoing: clip at 0.
        let w = axis_window(1.0, 0.5, 3.0, H, &mut sink()).unwrap();
        assert_eq!(w.0, 0.0);
        assert!(w.1 > 0.0);
    }

    #[test]
    fn axis_window_symmetric_in_sign_of_velocity() {
        let a = axis_window(10.0, -1.0, 3.0, H, &mut sink()).unwrap();
        let b = axis_window(-10.0, 1.0, 3.0, H, &mut sink()).unwrap();
        assert!((a.0 - b.0).abs() < 1e-6);
        assert!((a.1 - b.1).abs() < 1e-6);
    }

    #[test]
    fn altitude_band_gates_pairs() {
        let a = Aircraft::at(0.0, 0.0).with_altitude(10_000.0);
        let near = Aircraft::at(0.0, 0.0).with_altitude(10_500.0);
        let far = Aircraft::at(0.0, 0.0).with_altitude(12_000.0);
        assert!(same_altitude_band(&a, &near, 1_000.0, &mut sink()));
        assert!(!same_altitude_band(&a, &far, 1_000.0, &mut sink()));
    }

    #[test]
    fn trial_velocity_override_changes_the_window() {
        // With its real velocity the track collides; with a rotated trial
        // velocity it must not.
        let track = Aircraft::at(0.0, 0.0).with_velocity(1.0, 0.0);
        let trial = Aircraft::at(100.0, 0.0).with_velocity(-1.0, 0.0);
        assert!(conflict_window(&track, (1.0, 0.0), &trial, 3.0, H, &mut sink()).is_some());
        // Turn the track 90°: now it moves along +y away from the trial's
        // line; windows no longer overlap.
        assert!(conflict_window(&track, (0.0, 1.0), &trial, 3.0, H, &mut sink()).is_none());
    }

    #[test]
    fn critical_reach_gate_is_a_per_axis_box() {
        let a = Aircraft::at(0.0, 0.0);
        assert!(within_critical_reach(
            &a,
            &Aircraft::at(50.0, -50.0),
            56.0,
            &mut sink()
        ));
        assert!(!within_critical_reach(
            &a,
            &Aircraft::at(57.0, 0.0),
            56.0,
            &mut sink()
        ));
        assert!(!within_critical_reach(
            &a,
            &Aircraft::at(0.0, -57.0),
            56.0,
            &mut sink()
        ));
        // Boundary is inclusive: a pair exactly at the reach still passes.
        assert!(within_critical_reach(
            &a,
            &Aircraft::at(56.0, 56.0),
            56.0,
            &mut sink()
        ));
        // Infinite reach (degenerate config) passes everything finite.
        assert!(within_critical_reach(
            &a,
            &Aircraft::at(1e30, -1e30),
            f32::INFINITY,
            &mut sink()
        ));
    }

    #[test]
    fn critical_reach_gate_books_a_fixed_mix() {
        let a = Aircraft::at(0.0, 0.0);
        let mut pass = sim_clock::OpCounter::new();
        let mut fail = sim_clock::OpCounter::new();
        within_critical_reach(&a, &Aircraft::at(1.0, 1.0), 56.0, &mut pass);
        within_critical_reach(&a, &Aircraft::at(500.0, 500.0), 56.0, &mut fail);
        assert_eq!(pass, fail, "gate cost must be data-independent");
        assert_eq!(pass.count(sim_clock::OpClass::FpAdd), 4);
    }

    #[test]
    fn op_counts_are_reported() {
        let mut ops = sim_clock::OpCounter::new();
        let track = Aircraft::at(0.0, 0.0).with_velocity(1.0, 0.0);
        let trial = Aircraft::at(100.0, 0.0).with_velocity(-1.0, 0.0);
        conflict_window(&track, (1.0, 0.0), &trial, 3.0, H, &mut ops);
        assert!(
            ops.count(sim_clock::OpClass::FpDiv) >= 2,
            "divisions must be priced"
        );
        assert!(ops.count(sim_clock::OpClass::FpAdd) > 0);
    }
}
