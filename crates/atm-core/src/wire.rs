//! The versioned, byte-stable frame codec of the process-per-shard halo
//! exchange — and the server's binary-frame option (DESIGN.md §15).
//!
//! Every frame is length-prefixed binary: a little-endian `u32` payload
//! length, then the payload (one tag byte + the tag's body). All integers
//! are little-endian; every `f32` travels as its IEEE-754 bit pattern
//! (`to_bits` as `u32`), so NaN payloads, signed zeros and denormals — and
//! with them the bit-identity contract — survive the wire exactly. The
//! codec is its own inverse on every value (round-trip tests below), and
//! version-gated: a [`Frame::Hello`] carrying [`WIRE_VERSION`] opens every
//! connection, and a peer speaking another version is refused before any
//! state frame flows.
//!
//! On top of the codec, [`SocketTransport`] implements
//! [`ShardTransport`] over one TCP link per shard and [`run_shard_worker`]
//! is the worker side: import a halo slice ([`Frame::Export`]), simulate
//! claimed waves ([`Frame::Wave`] → [`Frame::Turns`]), apply velocity
//! commits ([`Frame::Commit`]), and report accumulated totals
//! ([`Frame::Finish`] → [`Frame::Summary`]) for the coordinator's
//! cross-check. The exchange carries member *records* and global ids only —
//! never indexes — so both sides rebuild identical scan structures from
//! identical bits.

use crate::config::{AtmConfig, ScanMode};
use crate::detect::{scan_member_list_booked, DetectStats};
use crate::shard::{
    simulate_turn_scanned, InnerIndex, ShardTransport, ShardedIndex, TransportError, TurnOutcome,
    TurnRecord, WaveGroup,
};
use crate::types::Aircraft;
use sim_clock::{OpCounter, SimDuration, OP_CLASS_COUNT};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};

/// The codec version every connection negotiates. Bump on any change to a
/// frame layout; peers refuse a mismatch at handshake.
pub const WIRE_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload (64 MiB ≈ a 1.2M-aircraft halo
/// export). A length prefix beyond it is a protocol error, not an
/// allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

fn err(msg: impl Into<String>) -> TransportError {
    TransportError::new(msg)
}

// ---------------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn count(&mut self, n: usize) -> Result<(), TransportError> {
        u32::try_from(n)
            .map_err(|_| err(format!("sequence of {n} items overflows the wire count")))
            .map(|n| self.u32(n))
    }
}

struct Dec<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Dec<'a> {
        Dec { b, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| err("truncated frame payload"))?;
        let s = &self.b[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, TransportError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, TransportError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, TransportError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, TransportError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn boolean(&mut self) -> Result<bool, TransportError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(err(format!("bad boolean byte {other}"))),
        }
    }
    /// A sequence count, sanity-bounded by the bytes actually remaining
    /// (every element encodes to at least one byte).
    fn count(&mut self) -> Result<usize, TransportError> {
        let n = self.u32()? as usize;
        if n > self.b.len() - self.at {
            return Err(err(format!("sequence count {n} exceeds frame payload")));
        }
        Ok(n)
    }
    fn done(&self) -> Result<(), TransportError> {
        if self.at != self.b.len() {
            return Err(err(format!(
                "{} trailing byte(s) after frame payload",
                self.b.len() - self.at
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

fn enc_aircraft(e: &mut Enc, a: &Aircraft) {
    e.f32(a.x);
    e.f32(a.y);
    e.f32(a.dx);
    e.f32(a.dy);
    e.f32(a.batx);
    e.f32(a.baty);
    e.f32(a.alt);
    e.boolean(a.col);
    e.f32(a.time_till);
    e.i32(a.col_with);
    e.i32(a.r_match);
    e.f32(a.expected_x);
    e.f32(a.expected_y);
}

fn dec_aircraft(d: &mut Dec) -> Result<Aircraft, TransportError> {
    Ok(Aircraft {
        x: d.f32()?,
        y: d.f32()?,
        dx: d.f32()?,
        dy: d.f32()?,
        batx: d.f32()?,
        baty: d.f32()?,
        alt: d.f32()?,
        col: d.boolean()?,
        time_till: d.f32()?,
        col_with: d.i32()?,
        r_match: d.i32()?,
        expected_x: d.f32()?,
        expected_y: d.f32()?,
    })
}

fn scan_tag(scan: ScanMode) -> u8 {
    match scan {
        ScanMode::Naive => 0,
        ScanMode::Banded => 1,
        ScanMode::Grid => 2,
        ScanMode::Incremental => 3,
    }
}

fn scan_from_tag(tag: u8) -> Result<ScanMode, TransportError> {
    match tag {
        0 => Ok(ScanMode::Naive),
        1 => Ok(ScanMode::Banded),
        2 => Ok(ScanMode::Grid),
        3 => Ok(ScanMode::Incremental),
        other => Err(err(format!("bad scan-mode tag {other}"))),
    }
}

fn enc_config(e: &mut Enc, cfg: &AtmConfig) {
    e.f32(cfg.half_width);
    e.f32(cfg.speed_min_kts);
    e.f32(cfg.speed_max_kts);
    e.f32(cfg.alt_min_ft);
    e.f32(cfg.alt_max_ft);
    e.f32(cfg.periods_per_hour);
    e.u64(cfg.period.as_picos());
    e.u64(cfg.periods_per_major as u64);
    e.f32(cfg.radar_noise_nm);
    e.f32(cfg.radar_dropout);
    e.f32(cfg.track_box_half_nm);
    e.u32(cfg.track_passes);
    e.f32(cfg.separation_nm);
    e.f32(cfg.alt_separation_ft);
    e.f32(cfg.horizon_periods);
    e.f32(cfg.critical_periods);
    e.f32(cfg.rotation_step_deg);
    e.f32(cfg.rotation_max_deg);
    e.u64(cfg.seed);
    e.u8(scan_tag(cfg.scan));
    e.f32(cfg.grid_cell_nm);
    e.u64(cfg.shards as u64);
}

fn dec_config(d: &mut Dec) -> Result<AtmConfig, TransportError> {
    Ok(AtmConfig {
        half_width: d.f32()?,
        speed_min_kts: d.f32()?,
        speed_max_kts: d.f32()?,
        alt_min_ft: d.f32()?,
        alt_max_ft: d.f32()?,
        periods_per_hour: d.f32()?,
        period: SimDuration::from_picos(d.u64()?),
        periods_per_major: d.u64()? as usize,
        radar_noise_nm: d.f32()?,
        radar_dropout: d.f32()?,
        track_box_half_nm: d.f32()?,
        track_passes: d.u32()?,
        separation_nm: d.f32()?,
        alt_separation_ft: d.f32()?,
        horizon_periods: d.f32()?,
        critical_periods: d.f32()?,
        rotation_step_deg: d.f32()?,
        rotation_max_deg: d.f32()?,
        seed: d.u64()?,
        scan: scan_from_tag(d.u8()?)?,
        grid_cell_nm: d.f32()?,
        shards: d.u64()? as usize,
    })
}

fn enc_stats(e: &mut Enc, s: &DetectStats) {
    e.u64(s.pair_checks);
    e.u64(s.critical_conflicts);
    e.u64(s.rotations);
    e.u64(s.resolved);
    e.u64(s.unresolved);
}

fn dec_stats(d: &mut Dec) -> Result<DetectStats, TransportError> {
    Ok(DetectStats {
        pair_checks: d.u64()?,
        critical_conflicts: d.u64()?,
        rotations: d.u64()?,
        resolved: d.u64()?,
        unresolved: d.u64()?,
    })
}

fn enc_ops(e: &mut Enc, o: &OpCounter) {
    for v in o.ops {
        e.u64(v);
    }
    e.u64(o.bytes_loaded);
    e.u64(o.bytes_stored);
    e.u64(o.load_count);
    e.u64(o.store_count);
    e.u64(o.divergent_branches);
}

fn dec_ops(d: &mut Dec) -> Result<OpCounter, TransportError> {
    let mut o = OpCounter::new();
    for v in &mut o.ops {
        *v = d.u64()?;
    }
    o.bytes_loaded = d.u64()?;
    o.bytes_stored = d.u64()?;
    o.load_count = d.u64()?;
    o.store_count = d.u64()?;
    o.divergent_branches = d.u64()?;
    let _ = OP_CLASS_COUNT; // layout pinned by the array above
    Ok(o)
}

fn enc_turn(e: &mut Enc, t: &TurnRecord) -> Result<(), TransportError> {
    e.count(t.events.len())?;
    for &(p, tmin) in &t.events {
        e.u32(p);
        e.f32(tmin);
    }
    match t.outcome {
        TurnOutcome::Clean => e.u8(0),
        TurnOutcome::Resolved { vel } => {
            e.u8(1);
            e.f32(vel.0);
            e.f32(vel.1);
        }
        TurnOutcome::Unresolved { partner, tmin } => {
            e.u8(2);
            e.u32(partner);
            e.f32(tmin);
        }
    }
    enc_stats(e, &t.stats);
    enc_ops(e, &t.ops);
    Ok(())
}

fn dec_turn(d: &mut Dec) -> Result<TurnRecord, TransportError> {
    let n = d.count()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push((d.u32()?, d.f32()?));
    }
    let outcome = match d.u8()? {
        0 => TurnOutcome::Clean,
        1 => TurnOutcome::Resolved {
            vel: (d.f32()?, d.f32()?),
        },
        2 => TurnOutcome::Unresolved {
            partner: d.u32()?,
            tmin: d.f32()?,
        },
        other => return Err(err(format!("bad turn-outcome tag {other}"))),
    };
    Ok(TurnRecord {
        events,
        outcome,
        stats: dec_stats(d)?,
        ops: dec_ops(d)?,
    })
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// The frame grammar of the halo-exchange protocol (and, via
/// [`Frame::Json`], of the server's binary mode). Tag bytes are part of the
/// versioned layout.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, first frame on every connection.
    Hello {
        /// The sender's [`WIRE_VERSION`].
        version: u32,
    },
    /// Coordinator → worker handshake reply: the shard this link serves.
    HelloAck {
        /// Shard id assigned to this worker (accept order).
        shard: u32,
        /// Total shards in the grid.
        shard_count: u32,
    },
    /// Halo export opening one detect execution: the shard's member slice.
    Export {
        /// Global fleet size (the aggregate-booking parameter).
        global_n: u32,
        /// The run config (scan mode, gates, rotation sequence, …).
        cfg: AtmConfig,
        /// Global ids of the shard's members (owned + halo, ascending).
        members: Vec<u32>,
        /// The members' records, index-aligned with `members`.
        recs: Vec<Aircraft>,
    },
    /// Wave claim: simulate these owned aircraft (global ids).
    Wave {
        /// Wave sequence number within the execution.
        seq: u64,
        /// Aircraft to simulate, ascending.
        ids: Vec<u32>,
    },
    /// Wave reply: one record per claimed aircraft, in claim order.
    Turns {
        /// Echo of the claim's sequence number.
        seq: u64,
        /// `(global id, record)` per simulated turn.
        turns: Vec<(u32, TurnRecord)>,
    },
    /// Resolved-velocity broadcast between waves.
    Commit {
        /// `(global id, (dx, dy))`, ascending by id.
        deltas: Vec<(u32, (f32, f32))>,
    },
    /// End of the detect execution; the worker answers with a `Summary`.
    Finish,
    /// Worker totals accumulated since the `Export`, for the coordinator's
    /// cross-check against its replay-summed totals.
    Summary {
        /// Detect stats over every turn this worker simulated.
        stats: DetectStats,
        /// Booked op totals over the same turns.
        ops: OpCounter,
    },
    /// Orderly end of the connection.
    Shutdown,
    /// A JSON text payload: the server's binary mode carries its line
    /// protocol verbatim inside these.
    Json {
        /// The JSON text (one request or response, no newline framing).
        body: String,
    },
}

impl Frame {
    /// The frame's grammar name (for protocol-error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello-ack",
            Frame::Export { .. } => "export",
            Frame::Wave { .. } => "wave",
            Frame::Turns { .. } => "turns",
            Frame::Commit { .. } => "commit",
            Frame::Finish => "finish",
            Frame::Summary { .. } => "summary",
            Frame::Shutdown => "shutdown",
            Frame::Json { .. } => "json",
        }
    }

    /// Encode to a payload (tag byte + body), without the length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, TransportError> {
        let mut e = Enc::default();
        match self {
            Frame::Hello { version } => {
                e.u8(1);
                e.u32(*version);
            }
            Frame::HelloAck { shard, shard_count } => {
                e.u8(2);
                e.u32(*shard);
                e.u32(*shard_count);
            }
            Frame::Export {
                global_n,
                cfg,
                members,
                recs,
            } => {
                e.u8(3);
                e.u32(*global_n);
                enc_config(&mut e, cfg);
                e.count(members.len())?;
                for &m in members {
                    e.u32(m);
                }
                e.count(recs.len())?;
                for a in recs {
                    enc_aircraft(&mut e, a);
                }
            }
            Frame::Wave { seq, ids } => {
                e.u8(4);
                e.u64(*seq);
                e.count(ids.len())?;
                for &i in ids {
                    e.u32(i);
                }
            }
            Frame::Turns { seq, turns } => {
                e.u8(5);
                e.u64(*seq);
                e.count(turns.len())?;
                for (i, t) in turns {
                    e.u32(*i);
                    enc_turn(&mut e, t)?;
                }
            }
            Frame::Commit { deltas } => {
                e.u8(6);
                e.count(deltas.len())?;
                for &(i, (dx, dy)) in deltas {
                    e.u32(i);
                    e.f32(dx);
                    e.f32(dy);
                }
            }
            Frame::Finish => e.u8(7),
            Frame::Summary { stats, ops } => {
                e.u8(8);
                enc_stats(&mut e, stats);
                enc_ops(&mut e, ops);
            }
            Frame::Shutdown => e.u8(9),
            Frame::Json { body } => {
                e.u8(10);
                e.count(body.len())?;
                e.buf.extend_from_slice(body.as_bytes());
            }
        }
        if e.buf.len() > MAX_FRAME_BYTES {
            return Err(err(format!(
                "frame payload of {} bytes exceeds MAX_FRAME_BYTES",
                e.buf.len()
            )));
        }
        Ok(e.buf)
    }

    /// Decode a payload produced by [`Frame::encode`]. Rejects unknown
    /// tags, truncated bodies and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Frame, TransportError> {
        let mut d = Dec::new(payload);
        let frame = match d.u8()? {
            1 => Frame::Hello { version: d.u32()? },
            2 => Frame::HelloAck {
                shard: d.u32()?,
                shard_count: d.u32()?,
            },
            3 => {
                let global_n = d.u32()?;
                let cfg = dec_config(&mut d)?;
                let n = d.count()?;
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    members.push(d.u32()?);
                }
                let n = d.count()?;
                let mut recs = Vec::with_capacity(n);
                for _ in 0..n {
                    recs.push(dec_aircraft(&mut d)?);
                }
                Frame::Export {
                    global_n,
                    cfg,
                    members,
                    recs,
                }
            }
            4 => {
                let seq = d.u64()?;
                let n = d.count()?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(d.u32()?);
                }
                Frame::Wave { seq, ids }
            }
            5 => {
                let seq = d.u64()?;
                let n = d.count()?;
                let mut turns = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = d.u32()?;
                    turns.push((i, dec_turn(&mut d)?));
                }
                Frame::Turns { seq, turns }
            }
            6 => {
                let n = d.count()?;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    deltas.push((d.u32()?, (d.f32()?, d.f32()?)));
                }
                Frame::Commit { deltas }
            }
            7 => Frame::Finish,
            8 => Frame::Summary {
                stats: dec_stats(&mut d)?,
                ops: dec_ops(&mut d)?,
            },
            9 => Frame::Shutdown,
            10 => {
                let n = d.count()?;
                let body = std::str::from_utf8(d.take(n)?)
                    .map_err(|_| err("json frame body is not UTF-8"))?
                    .to_owned();
                Frame::Json { body }
            }
            other => return Err(err(format!("unknown frame tag {other}"))),
        };
        d.done()?;
        Ok(frame)
    }
}

// ---------------------------------------------------------------------------
// Framed stream
// ---------------------------------------------------------------------------

/// A length-prefix-framed TCP stream: buffered reader and writer over the
/// same connection, one [`Frame`] per send/recv.
pub struct FrameStream {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl FrameStream {
    /// Frame an accepted or connected stream.
    pub fn new(stream: TcpStream) -> Result<FrameStream, TransportError> {
        let w = stream
            .try_clone()
            .map_err(|e| err(format!("clone stream: {e}")))?;
        Ok(FrameStream {
            r: BufReader::new(stream),
            w: BufWriter::new(w),
        })
    }

    /// Encode, length-prefix, write and flush one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let payload = frame.encode()?;
        let mut write = || -> std::io::Result<()> {
            self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
            self.w.write_all(&payload)?;
            self.w.flush()
        };
        write().map_err(|e| err(format!("send {}: {e}", frame.name())))
    }

    /// Read one frame; a clean EOF at a frame boundary is a protocol error
    /// here (use [`FrameStream::recv_eof`] where the peer may hang up).
    pub fn recv(&mut self) -> Result<Frame, TransportError> {
        self.recv_eof()?
            .ok_or_else(|| err("peer closed the connection"))
    }

    /// Read one frame, or `None` on a clean EOF at a frame boundary.
    pub fn recv_eof(&mut self) -> Result<Option<Frame>, TransportError> {
        let mut len = [0u8; 4];
        let mut got = 0usize;
        while got < 4 {
            let n = self
                .r
                .read(&mut len[got..])
                .map_err(|e| err(format!("recv frame header: {e}")))?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(err("connection closed inside a frame header"));
            }
            got += n;
        }
        let len = u32::from_le_bytes(len) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(err(format!("bad frame length {len}")));
        }
        let mut payload = vec![0u8; len];
        self.r
            .read_exact(&mut payload)
            .map_err(|e| err(format!("recv frame payload: {e}")))?;
        Frame::decode(&payload).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Coordinator side: the serialized ShardTransport
// ---------------------------------------------------------------------------

/// [`ShardTransport`] over one framed TCP link per shard: the coordinator
/// half of the process-per-shard detect. Workers are accepted in shard-id
/// order; every exchange is round-trip-checked (sequence echoes, summary
/// cross-check), so a dead or misbehaving worker surfaces as a
/// [`TransportError`] naming its shard — never a hang past the socket layer
/// or a silently wrong result.
pub struct SocketTransport {
    links: Vec<FrameStream>,
    seq: u64,
}

impl SocketTransport {
    /// Accept `shard_count` workers from the listener, handshake each
    /// (version check, shard-id assignment in accept order) and return the
    /// ready transport.
    pub fn accept_workers(
        listener: &TcpListener,
        shard_count: usize,
    ) -> Result<SocketTransport, TransportError> {
        let mut links = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let (stream, _) = listener
                .accept()
                .map_err(|e| err(format!("accept shard worker {shard}: {e}")))?;
            stream.set_nodelay(true).ok();
            let mut link = FrameStream::new(stream)?;
            match link
                .recv()
                .map_err(|e| err(format!("shard {shard}: {e}")))?
            {
                Frame::Hello { version } if version == WIRE_VERSION => {}
                Frame::Hello { version } => {
                    return Err(err(format!(
                        "shard {shard}: worker speaks wire version {version}, need {WIRE_VERSION}"
                    )));
                }
                other => {
                    return Err(err(format!(
                        "shard {shard}: expected hello, got {}",
                        other.name()
                    )));
                }
            }
            link.send(&Frame::HelloAck {
                shard: shard as u32,
                shard_count: shard_count as u32,
            })
            .map_err(|e| err(format!("shard {shard}: {e}")))?;
            links.push(link);
        }
        Ok(SocketTransport { links, seq: 0 })
    }

    fn link(&mut self, shard: u32) -> Result<&mut FrameStream, TransportError> {
        let count = self.links.len();
        self.links
            .get_mut(shard as usize)
            .ok_or_else(|| err(format!("wave names shard {shard}, transport has {count}")))
    }
}

impl ShardTransport for SocketTransport {
    fn shard_count(&self) -> Option<usize> {
        Some(self.links.len())
    }

    fn begin_detect(
        &mut self,
        aircraft: &[Aircraft],
        index: &ShardedIndex,
        cfg: &AtmConfig,
    ) -> Result<(), TransportError> {
        self.seq = 0;
        for shard in 0..self.links.len() {
            let members = index.members(shard).to_vec();
            let recs: Vec<Aircraft> = members.iter().map(|&j| aircraft[j as usize]).collect();
            let frame = Frame::Export {
                global_n: aircraft.len() as u32,
                cfg: cfg.clone(),
                members,
                recs,
            };
            self.links[shard]
                .send(&frame)
                .map_err(|e| err(format!("shard {shard}: {e}")))?;
        }
        Ok(())
    }

    fn run_wave(
        &mut self,
        _aircraft: &[Aircraft],
        _index: &ShardedIndex,
        _cfg: &AtmConfig,
        wave: &[WaveGroup],
    ) -> Result<Vec<(u32, TurnRecord)>, TransportError> {
        self.seq += 1;
        let seq = self.seq;
        // Claim every shard's group first, then collect: the workers
        // simulate their groups concurrently.
        for (shard, ids) in wave {
            self.link(*shard)?
                .send(&Frame::Wave {
                    seq,
                    ids: ids.clone(),
                })
                .map_err(|e| err(format!("shard {shard}: {e}")))?;
        }
        let mut out = Vec::new();
        for (shard, ids) in wave {
            let reply = self
                .link(*shard)?
                .recv()
                .map_err(|e| err(format!("shard {shard}: {e}")))?;
            match reply {
                Frame::Turns { seq: got, turns } if got == seq => {
                    if turns.len() != ids.len() {
                        return Err(err(format!(
                            "shard {shard}: claimed {} turn(s), got {}",
                            ids.len(),
                            turns.len()
                        )));
                    }
                    out.extend(turns);
                }
                Frame::Turns { seq: got, .. } => {
                    return Err(err(format!(
                        "shard {shard}: wave sequence mismatch (sent {seq}, got {got})"
                    )));
                }
                other => {
                    return Err(err(format!(
                        "shard {shard}: expected turns, got {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(out)
    }

    fn commit(&mut self, deltas: &[(u32, (f32, f32))]) -> Result<(), TransportError> {
        let frame = Frame::Commit {
            deltas: deltas.to_vec(),
        };
        for (shard, link) in self.links.iter_mut().enumerate() {
            link.send(&frame)
                .map_err(|e| err(format!("shard {shard}: {e}")))?;
        }
        Ok(())
    }

    fn finish(&mut self, stats: &DetectStats, ops: &OpCounter) -> Result<(), TransportError> {
        for (shard, link) in self.links.iter_mut().enumerate() {
            link.send(&Frame::Finish)
                .map_err(|e| err(format!("shard {shard}: {e}")))?;
        }
        let mut sum_stats = DetectStats::default();
        let mut sum_ops = OpCounter::new();
        for shard in 0..self.links.len() {
            match self.links[shard]
                .recv()
                .map_err(|e| err(format!("shard {shard}: {e}")))?
            {
                Frame::Summary { stats, ops } => {
                    sum_stats.absorb(&stats);
                    sum_ops.merge(&ops);
                }
                other => {
                    return Err(err(format!(
                        "shard {shard}: expected summary, got {}",
                        other.name()
                    )));
                }
            }
        }
        if sum_stats != *stats || sum_ops != *ops {
            return Err(err(
                "worker summaries disagree with the coordinator's replayed totals \
                 (codec or scheduling fault)",
            ));
        }
        Ok(())
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for link in &mut self.links {
            let _ = link.send(&Frame::Shutdown);
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Fault-injection knobs for [`run_shard_worker_with`] (the worker-death
/// differential tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerOptions {
    /// Serve this many wave claims, then fail on the next one (dropping the
    /// connection mid-protocol). `None` = serve forever.
    pub die_after_waves: Option<u64>,
}

struct WorkerState {
    global_n: u32,
    cfg: AtmConfig,
    members: Vec<u32>,
    recs: Vec<Aircraft>,
    inner: InnerIndex,
    stats: DetectStats,
    ops: OpCounter,
}

impl WorkerState {
    fn import(
        global_n: u32,
        cfg: AtmConfig,
        members: Vec<u32>,
        recs: Vec<Aircraft>,
    ) -> WorkerState {
        let inner = InnerIndex::build(&recs, &cfg);
        WorkerState {
            global_n,
            cfg,
            members,
            recs,
            inner,
            stats: DetectStats::default(),
            ops: OpCounter::new(),
        }
    }

    fn run_wave(&mut self, ids: &[u32]) -> Result<Vec<(u32, TurnRecord)>, TransportError> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let li = self
                .members
                .binary_search(&id)
                .map_err(|_| err(format!("claimed aircraft {id} is not a member here")))?;
            let track = self.recs[li];
            let cands: Vec<u32> = self
                .inner
                .candidates(&track, self.recs.len())
                .map(|l| l as u32)
                .collect();
            let (recs, members, cfg) = (&self.recs, &self.members, &self.cfg);
            let global_n = self.global_n as usize;
            let rec = simulate_turn_scanned((track.dx, track.dy), cfg, |vel, ops| {
                scan_member_list_booked(recs, members, li, global_n, vel, cfg, &cands, ops)
            });
            self.stats.absorb(&rec.stats);
            self.ops.merge(&rec.ops);
            out.push((id, rec));
        }
        Ok(out)
    }

    fn commit(&mut self, deltas: &[(u32, (f32, f32))]) {
        // Velocity-only writes: positions and altitudes are untouched, so
        // the inner index built at import stays valid.
        for &(id, vel) in deltas {
            if let Ok(li) = self.members.binary_search(&id) {
                self.recs[li].dx = vel.0;
                self.recs[li].dy = vel.1;
            }
        }
    }
}

/// Serve one coordinator connection as a shard worker: handshake, then loop
/// over detect executions (export → waves/commits → finish) until a
/// `Shutdown` frame or a clean EOF. Returns the shard id served on orderly
/// exit; any protocol or I/O fault is an error (the `shard-worker` binary
/// exits nonzero on it, which is what the coordinator's worker-death
/// handling keys on).
pub fn run_shard_worker(stream: TcpStream) -> Result<u32, TransportError> {
    run_shard_worker_with(stream, WorkerOptions::default())
}

/// [`run_shard_worker`] with fault-injection options.
pub fn run_shard_worker_with(
    stream: TcpStream,
    opts: WorkerOptions,
) -> Result<u32, TransportError> {
    stream.set_nodelay(true).ok();
    let mut link = FrameStream::new(stream)?;
    link.send(&Frame::Hello {
        version: WIRE_VERSION,
    })?;
    let shard = match link.recv()? {
        Frame::HelloAck { shard, .. } => shard,
        other => return Err(err(format!("expected hello-ack, got {}", other.name()))),
    };

    let mut state: Option<WorkerState> = None;
    let mut waves_served = 0u64;
    loop {
        let Some(frame) = link.recv_eof()? else {
            return Ok(shard); // coordinator dropped cleanly
        };
        match frame {
            Frame::Export {
                global_n,
                cfg,
                members,
                recs,
            } => {
                if members.len() != recs.len() {
                    return Err(err(format!(
                        "export with {} ids but {} records",
                        members.len(),
                        recs.len()
                    )));
                }
                state = Some(WorkerState::import(global_n, cfg, members, recs));
            }
            Frame::Wave { seq, ids } => {
                if let Some(k) = opts.die_after_waves {
                    if waves_served >= k {
                        return Err(err(format!(
                            "shard {shard}: injected fault after {waves_served} wave(s)"
                        )));
                    }
                }
                let st = state
                    .as_mut()
                    .ok_or_else(|| err("wave claim before any export"))?;
                let turns = st.run_wave(&ids)?;
                waves_served += 1;
                link.send(&Frame::Turns { seq, turns })?;
            }
            Frame::Commit { deltas } => {
                let st = state
                    .as_mut()
                    .ok_or_else(|| err("commit before any export"))?;
                st.commit(&deltas);
            }
            Frame::Finish => {
                let st = state
                    .as_mut()
                    .ok_or_else(|| err("finish before any export"))?;
                link.send(&Frame::Summary {
                    stats: st.stats,
                    ops: st.ops.clone(),
                })?;
            }
            Frame::Shutdown => return Ok(shard),
            other => {
                return Err(err(format!(
                    "unexpected {} frame on a worker link",
                    other.name()
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_resolve_all;
    use crate::shard::detect_resolve_via_transport;
    use std::net::TcpListener;

    fn crossing_fleet(n: u32) -> Vec<Aircraft> {
        (0..n)
            .map(|k| {
                let ang = k as f32 * 0.37;
                let r = 15.0 + (k % 11) as f32 * 10.0;
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.06 * ang.cos(), -0.06 * ang.sin())
                    .with_altitude(5_000.0 + (k % 6) as f32 * 800.0)
            })
            .collect()
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        let mut odd = OpCounter::new();
        odd.ops[3] = 77;
        odd.bytes_loaded = 1 << 40;
        odd.divergent_branches = 5;
        let weird = Aircraft {
            x: f32::from_bits(0x7fc0_1234), // NaN with payload
            y: -0.0,
            dx: f32::MIN_POSITIVE / 2.0, // denormal
            ..Aircraft::at(1.5, -2.5)
        };
        let frames = vec![
            Frame::Hello { version: 3 },
            Frame::HelloAck {
                shard: 7,
                shard_count: 16,
            },
            Frame::Export {
                global_n: 1000,
                cfg: AtmConfig::with_seed(99),
                members: vec![1, 5, 9],
                recs: vec![weird, Aircraft::at(0.0, 0.0), Aircraft::at(3.0, 4.0)],
            },
            Frame::Wave {
                seq: 12,
                ids: vec![5, 9],
            },
            Frame::Turns {
                seq: 12,
                turns: vec![(
                    5,
                    TurnRecord {
                        events: vec![(9, 3.25), (1, f32::INFINITY)],
                        outcome: TurnOutcome::Unresolved {
                            partner: 9,
                            tmin: 3.25,
                        },
                        stats: DetectStats {
                            pair_checks: 40,
                            critical_conflicts: 2,
                            rotations: 12,
                            resolved: 0,
                            unresolved: 1,
                        },
                        ops: odd.clone(),
                    },
                )],
            },
            Frame::Commit {
                deltas: vec![(3, (0.25, -0.0))],
            },
            Frame::Finish,
            Frame::Summary {
                stats: DetectStats::default(),
                ops: odd,
            },
            Frame::Shutdown,
            Frame::Json {
                body: "{\"verb\":\"status\"}".to_owned(),
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            let back = Frame::decode(&payload).unwrap();
            // PartialEq on f32 fields misses NaN bit patterns; compare the
            // re-encoded bytes, which carry the exact bits.
            assert_eq!(payload, back.encode().unwrap(), "{}", frame.name());
        }
    }

    #[test]
    fn decoder_rejects_malformed_payloads() {
        // Unknown tag.
        assert!(Frame::decode(&[200]).is_err());
        // Truncated body.
        assert!(Frame::decode(&[1, 0, 0]).is_err());
        // Trailing bytes.
        assert!(Frame::decode(&[7, 0]).is_err());
        // Bad boolean inside an aircraft record.
        let mut payload = Frame::Export {
            global_n: 1,
            cfg: AtmConfig::default(),
            members: vec![0],
            recs: vec![Aircraft::at(0.0, 0.0)],
        }
        .encode()
        .unwrap();
        let len = payload.len();
        payload[len - 4 * 5 - 1] = 9; // the `col` byte
        assert!(Frame::decode(&payload).is_err());
        // Sequence count beyond the payload.
        let wave = Frame::Wave {
            seq: 1,
            ids: vec![1, 2, 3],
        }
        .encode()
        .unwrap();
        let mut huge = wave.clone();
        huge[9] = 0xff; // count low byte
        assert!(Frame::decode(&huge).is_err());
    }

    /// Coordinator + one worker thread per shard over real localhost TCP:
    /// the serialized transport must be bit-identical to the sequential
    /// reference (and therefore to the in-process transport) across scan
    /// modes, including the summary cross-check passing.
    #[test]
    fn socket_transport_is_bit_identical_to_serial() {
        for scan in [ScanMode::Naive, ScanMode::Grid, ScanMode::Incremental] {
            let cfg = AtmConfig {
                shards: 2,
                scan,
                ..AtmConfig::default()
            };
            let mut serial = crossing_fleet(150);
            let mut counter = OpCounter::new();
            let s_stats = detect_resolve_all(&mut serial, &cfg, &mut counter);

            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let shard_count = cfg.shards * cfg.shards;
            let workers: Vec<_> = (0..shard_count)
                .map(|_| {
                    std::thread::spawn(move || run_shard_worker(TcpStream::connect(addr).unwrap()))
                })
                .collect();
            let mut transport = SocketTransport::accept_workers(&listener, shard_count).unwrap();

            // Two executions over one set of worker links: the transport
            // must reset per-execution state on every export.
            for round in 0..2 {
                let mut fleet = crossing_fleet(150);
                let (stats, ops) =
                    detect_resolve_via_transport(&mut fleet, &cfg, &mut transport).unwrap();
                assert_eq!(serial, fleet, "{scan:?} round {round}");
                assert_eq!(s_stats, stats, "{scan:?} round {round}");
                assert_eq!(counter, ops, "{scan:?} round {round}");
            }

            drop(transport); // sends Shutdown
            for w in workers {
                w.join().unwrap().unwrap();
            }
        }
    }

    #[test]
    fn version_mismatch_is_refused_at_handshake() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bad = std::thread::spawn(move || {
            let mut link = FrameStream::new(TcpStream::connect(addr).unwrap()).unwrap();
            link.send(&Frame::Hello {
                version: WIRE_VERSION + 1,
            })
            .unwrap();
            link.recv_eof()
        });
        let refused = SocketTransport::accept_workers(&listener, 1)
            .err()
            .expect("mismatched version must be refused");
        assert!(refused.to_string().contains("wire version"));
        drop(bad.join());
    }

    /// A worker that dies mid-protocol must surface as a clean transport
    /// error naming the shard — not a hang, not a wrong result.
    #[test]
    fn dead_worker_is_a_clean_error() {
        let cfg = AtmConfig {
            shards: 2,
            ..AtmConfig::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shard_count = 4;
        let workers: Vec<_> = (0..shard_count)
            .map(|w| {
                std::thread::spawn(move || {
                    let opts = WorkerOptions {
                        // Shard 0 dies on its first wave claim.
                        die_after_waves: if w == 0 { Some(0) } else { None },
                    };
                    run_shard_worker_with(TcpStream::connect(addr).unwrap(), opts)
                })
            })
            .collect();
        let mut transport = SocketTransport::accept_workers(&listener, shard_count).unwrap();
        let mut fleet = crossing_fleet(150);
        let outcome = detect_resolve_via_transport(&mut fleet, &cfg, &mut transport);
        assert!(outcome.is_err(), "dead worker must fail the execution");
        drop(transport);
        for w in workers {
            let _ = w.join().unwrap(); // the dying shard returns Err
        }
    }
}
