//! Simulation and task parameters (the paper's constants, overridable).

use sim_clock::SimDuration;

/// Host-side strategy for the Tasks 2+3 candidate scan.
///
/// This is a *wall-clock* knob only: all modes perform the same mutations,
/// produce the same [`crate::detect::DetectStats`], and book the identical
/// abstract-operation stream on every [`sim_clock::CostSink`], so modeled
/// (simulated) time is bit-identical between them. `Banded` buckets aircraft
/// by altitude band and visits only candidates that could pass the vertical
/// separation gate; `Grid` additionally buckets by a coarse x/y grid sized
/// to the critical-reach envelope ([`AtmConfig::critical_reach_nm`]). Both
/// fast paths book the skipped pairs' operation mix in aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// Visit every other aircraft (the paper's O(n²) scan, the seed path).
    Naive,
    /// Visit only aircraft within ±1 altitude band of the scanning aircraft
    /// (results and modeled time match `Naive` exactly).
    Banded,
    /// Visit only aircraft within ±1 altitude band *and* the same or an
    /// adjacent spatial grid cell (the fastest path; results and modeled
    /// time match `Naive` exactly).
    #[default]
    Grid,
    /// `Grid` with the index kept *alive across rescans*: cells sized from
    /// the measured per-rescan fleet envelope, slot membership moved
    /// incrementally, dirty-cell tracking, and — in the persistent backend
    /// engines — replay of cached clear scans whose cell neighborhood is
    /// provably unchanged (see [`crate::detect::IncrementalEngine`]).
    /// Results and modeled time match `Naive` exactly.
    Incremental,
}

/// All tunable parameters of the airfield and the three tasks.
///
/// Defaults are the values of the paper (§3–§5): a 256 nm × 256 nm field,
/// speeds of 30–600 knots, half-second periods in an 8-second major cycle,
/// a 1×1 nm correlation box doubled up to two times, a 3 nm total
/// separation box for Batcher's algorithm, a 20-minute detection horizon,
/// a critical window of 300 periods, and ±5°…±30° resolution rotations.
#[derive(Clone, Debug, PartialEq)]
pub struct AtmConfig {
    /// Half-width of the airfield: positions span `[-half_width, half_width]`.
    pub half_width: f32,
    /// Minimum aircraft speed, knots (nm per hour).
    pub speed_min_kts: f32,
    /// Maximum aircraft speed, knots.
    pub speed_max_kts: f32,
    /// Minimum altitude, feet.
    pub alt_min_ft: f32,
    /// Maximum altitude, feet.
    pub alt_max_ft: f32,
    /// Periods per hour: converts knots to nm/period (paper: 7200).
    pub periods_per_hour: f32,
    /// Length of one scheduling period.
    pub period: SimDuration,
    /// Periods per major cycle (Tasks 2+3 run in the last one).
    pub periods_per_major: usize,
    /// Maximum radar noise per axis, nm (uniform, random sign).
    pub radar_noise_nm: f32,
    /// Probability that an aircraft produces no radar report in a period
    /// (the paper: "a radar report may not be obtained for some aircraft
    /// during some periods"; its simplification uses 0, the default).
    pub radar_dropout: f32,
    /// Correlation box half-width for the first pass, nm (paper: a 1×1 nm
    /// box, i.e. 0.5 each side).
    pub track_box_half_nm: f32,
    /// Number of correlation passes; the box doubles each pass (paper: 3).
    pub track_passes: u32,
    /// Total separation the collision box enforces per axis, nm (paper: the
    /// `±3` in Equations 1–4 — a 1.5 nm error band around each aircraft).
    pub separation_nm: f32,
    /// Vertical separation below which two aircraft are "at the same
    /// altitude" for collision purposes, feet (paper: 1000).
    pub alt_separation_ft: f32,
    /// Detection horizon in periods (paper: 20 minutes = 2400 half-seconds).
    pub horizon_periods: f32,
    /// Critical window in periods: a conflict starting sooner than this
    /// triggers resolution (paper: 300).
    pub critical_periods: f32,
    /// Resolution rotation step, degrees (paper: 5).
    pub rotation_step_deg: f32,
    /// Maximum rotation magnitude per side, degrees (paper: 30).
    pub rotation_max_deg: f32,
    /// Master RNG seed for the airfield.
    pub seed: u64,
    /// Host-side candidate-scan strategy for Tasks 2+3 (wall-clock only;
    /// results and modeled time are identical across modes).
    pub scan: ScanMode,
    /// Spatial cell size for [`ScanMode::Grid`], nm. `0.0` (the default)
    /// derives the cell from the critical-reach envelope
    /// ([`AtmConfig::critical_reach_nm`]); explicit values are clamped *up*
    /// to that envelope — a finer grid could not contain a gate-passing
    /// pair within one cell of adjacency.
    pub grid_cell_nm: f32,
    /// Geographic shard grid side: the airfield is partitioned into
    /// `shards × shards` equal cells, each owning the aircraft inside it
    /// plus a halo of foreign aircraft within critical reach of its borders
    /// (see [`crate::shard`]). `1` (the default) is the unsharded pipeline.
    /// Like [`AtmConfig::scan`], this is a *wall-clock* knob only: every
    /// shard count produces byte-identical fleets, stats and modeled times.
    pub shards: usize,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            half_width: 128.0,
            speed_min_kts: 30.0,
            speed_max_kts: 600.0,
            alt_min_ft: 1_000.0,
            alt_max_ft: 40_000.0,
            periods_per_hour: 7_200.0,
            period: SimDuration::from_millis(500),
            periods_per_major: 16,
            radar_noise_nm: 0.2,
            radar_dropout: 0.0,
            track_box_half_nm: 0.5,
            track_passes: 3,
            separation_nm: 3.0,
            alt_separation_ft: 1_000.0,
            horizon_periods: 2_400.0,
            critical_periods: 300.0,
            rotation_step_deg: 5.0,
            rotation_max_deg: 30.0,
            seed: 0x5EED_A7C0,
            scan: ScanMode::default(),
            grid_cell_nm: 0.0,
            shards: 1,
        }
    }
}

impl AtmConfig {
    /// The paper's configuration with a caller-chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        AtmConfig {
            seed,
            ..AtmConfig::default()
        }
    }

    /// The box half-width used in correlation pass `pass` (doubles each
    /// pass: 0.5, 1.0, 2.0 with the defaults).
    pub fn pass_half_width(&self, pass: u32) -> f32 {
        self.track_box_half_nm * (1u32 << pass.min(30)) as f32
    }

    /// The sequence of rotation angles Task 3 tries, in order
    /// (+5°, −5°, +10°, −10°, …, ±max), in radians.
    pub fn rotation_sequence(&self) -> Vec<f32> {
        let steps = (self.rotation_max_deg / self.rotation_step_deg).round() as i32;
        let mut seq = Vec::with_capacity(2 * steps as usize);
        for k in 1..=steps {
            let deg = self.rotation_step_deg * k as f32;
            seq.push(deg.to_radians());
            seq.push(-deg.to_radians());
        }
        seq
    }

    /// The horizontal distance beyond which a pair cannot reach a *critical*
    /// conflict (a window starting inside `critical_periods`): the 3 nm
    /// separation box plus the distance two aircraft closing at twice the
    /// configured maximum speed cover within the critical window, padded by
    /// a 6.25 % slack that dominates every f32 rounding source in the
    /// window computation (rotations preserve speed up to ~1 ulp).
    ///
    /// This is the range gate every scan mode applies per pair (see
    /// [`crate::batcher::within_critical_reach`]) and the envelope the
    /// spatial grid's cell size derives from. Degenerate configurations
    /// yield `f32::INFINITY`, which passes every pair.
    pub fn critical_reach_nm(&self) -> f32 {
        let vmax = self.speed_max_kts / self.periods_per_hour;
        let reach = self.separation_nm + 2.0 * vmax * self.critical_periods * 1.0625;
        if reach.is_finite() && reach > 0.0 {
            reach
        } else {
            f32::INFINITY
        }
    }

    /// Validate parameter consistency; panics on nonsense.
    pub fn validate(&self) {
        assert!(self.half_width > 0.0, "airfield must have positive extent");
        assert!(
            self.speed_min_kts > 0.0 && self.speed_min_kts <= self.speed_max_kts,
            "speed range must be positive and ordered"
        );
        assert!(self.periods_per_hour > 0.0);
        assert!(self.periods_per_major > 0);
        assert!(self.track_passes >= 1, "need at least one correlation pass");
        assert!(
            (0.0..=1.0).contains(&self.radar_dropout),
            "radar dropout must be a probability"
        );
        assert!(self.separation_nm > 0.0);
        assert!(self.horizon_periods > 0.0);
        assert!(
            self.critical_periods <= self.horizon_periods,
            "critical window cannot exceed the detection horizon"
        );
        assert!(self.rotation_step_deg > 0.0);
        assert!(self.rotation_max_deg >= self.rotation_step_deg);
        assert!(
            self.grid_cell_nm >= 0.0 && self.grid_cell_nm.is_finite(),
            "grid cell size must be finite and non-negative (0 = auto)"
        );
        assert!(
            (1..=32).contains(&self.shards),
            "shard grid side must be between 1 and 32"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AtmConfig::default();
        c.validate();
        assert_eq!(c.half_width, 128.0);
        assert_eq!(c.period, SimDuration::from_millis(500));
        assert_eq!(c.periods_per_major, 16);
        assert_eq!(c.separation_nm, 3.0);
        assert_eq!(c.horizon_periods, 2_400.0);
        assert_eq!(c.critical_periods, 300.0);
    }

    #[test]
    fn pass_widths_double() {
        let c = AtmConfig::default();
        assert_eq!(c.pass_half_width(0), 0.5);
        assert_eq!(c.pass_half_width(1), 1.0);
        assert_eq!(c.pass_half_width(2), 2.0);
    }

    #[test]
    fn rotation_sequence_alternates_and_grows() {
        let c = AtmConfig::default();
        let seq = c.rotation_sequence();
        assert_eq!(seq.len(), 12); // ±5..±30 in 5° steps
        assert!((seq[0] - 5.0_f32.to_radians()).abs() < 1e-6);
        assert!((seq[1] + 5.0_f32.to_radians()).abs() < 1e-6);
        assert!((seq[10] - 30.0_f32.to_radians()).abs() < 1e-6);
        assert!((seq[11] + 30.0_f32.to_radians()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "critical window")]
    fn critical_beyond_horizon_is_rejected() {
        let c = AtmConfig {
            critical_periods: 5_000.0,
            ..AtmConfig::default()
        };
        c.validate();
    }

    #[test]
    fn critical_reach_covers_the_fastest_closing_pair() {
        let c = AtmConfig::default();
        let reach = c.critical_reach_nm();
        // sep 3 + 2 · (600/7200) · 300 · 1.0625 = 3 + 53.125 nm.
        assert!((reach - 56.125).abs() < 1e-3, "{reach}");
        // The slack strictly exceeds the worst closing distance.
        let worst = 2.0 * (c.speed_max_kts / c.periods_per_hour) * c.critical_periods;
        assert!(reach > c.separation_nm + worst);
    }

    #[test]
    fn critical_reach_degenerates_to_infinity() {
        let c = AtmConfig {
            separation_nm: f32::NAN,
            ..AtmConfig::default()
        };
        assert_eq!(c.critical_reach_nm(), f32::INFINITY);
    }

    #[test]
    fn zero_speed_reach_is_exactly_the_separation() {
        // A static fleet's reach collapses to the separation box itself;
        // the gate's `<=` compare then still admits a pair sitting exactly
        // on the box edge (which has a zero-width window there).
        let c = AtmConfig {
            speed_max_kts: 0.0,
            ..AtmConfig::default()
        };
        assert_eq!(c.critical_reach_nm(), c.separation_nm);
    }

    #[test]
    #[should_panic(expected = "grid cell size")]
    fn negative_grid_cell_is_rejected() {
        let c = AtmConfig {
            grid_cell_nm: -1.0,
            ..AtmConfig::default()
        };
        c.validate();
    }

    #[test]
    fn default_is_unsharded() {
        assert_eq!(AtmConfig::default().shards, 1);
        AtmConfig {
            shards: 4,
            ..AtmConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shard grid side")]
    fn zero_shards_is_rejected() {
        let c = AtmConfig {
            shards: 0,
            ..AtmConfig::default()
        };
        c.validate();
    }

    #[test]
    fn seeded_config_differs_only_in_seed() {
        let a = AtmConfig::with_seed(1);
        let b = AtmConfig::with_seed(2);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.half_width, b.half_width);
    }
}
