//! Scenario catalog: seeded, deterministic traffic generators beyond the
//! paper's uniform random field.
//!
//! The paper (and the seed reproduction) drives every comparison with one
//! workload: `SetupFlight`'s uniform random traffic. That hides exactly the
//! structure the fast scan paths exploit — altitude banding, spatial
//! locality, shard ownership, dirty-cell reuse — so this module provides a
//! catalog of *shaped* workloads in the style of conflict-resolution
//! benchmark generators (Pelegrín & Cerulli): crossing flows, converging
//! streams, holding stacks, corridor funnels, drone swarms, degraded-radar
//! dropout and shard-hotspot surges.
//!
//! Every generator is a pure function of `(n, seed, params)`: it draws from
//! one [`SimRng`] in a fixed order and produces ordinary [`Aircraft`]
//! records, so all six substrates, all four [`crate::config::ScanMode`]s and
//! every shard grid consume scenario traffic unchanged — and the
//! byte-identity contract (DESIGN.md §8) extends to every traffic shape in
//! the catalog. [`fleet_hash`] pins the exact bit pattern of a generated
//! fleet, guarding the RNG draw order against accidental drift.

use crate::airfield::Airfield;
use crate::config::AtmConfig;
use crate::types::Aircraft;
use sim_clock::SimRng;
use std::f32::consts::PI;

/// Geometry knobs shared by the catalog generators. Every scenario reads
/// only the knobs relevant to its shape; the defaults are the catalog
/// configuration the golden fixtures and property sweeps pin down.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Number of traffic streams (crossing flows, converging arms).
    pub flows: usize,
    /// Parallel lanes per stream.
    pub lanes: usize,
    /// Lateral spacing between lanes, nm.
    pub lane_spacing_nm: f32,
    /// Number of holding-stack fixes.
    pub stacks: usize,
    /// Vertical levels per holding stack.
    pub stack_levels: usize,
    /// Holding-pattern radius around each fix, nm.
    pub holding_radius_nm: f32,
    /// Corridor entry width (the funnel narrows toward the exit), nm.
    pub corridor_width_nm: f32,
    /// Drone-swarm cluster half-width, nm.
    pub swarm_radius_nm: f32,
    /// Fraction of the fleet packed into the hotspot box.
    pub hotspot_frac: f32,
    /// Radar dropout probability for the degraded-radar scenario.
    pub dropout: f32,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            flows: 3,
            lanes: 4,
            lane_spacing_nm: 3.0,
            stacks: 3,
            stack_levels: 8,
            holding_radius_nm: 2.6,
            corridor_width_nm: 14.0,
            swarm_radius_nm: 7.0,
            hotspot_frac: 0.75,
            dropout: 0.25,
        }
    }
}

/// The traffic shapes in the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Straight streams through the field center on distinct headings:
    /// every stream pair meets near the origin.
    CrossingFlows,
    /// Arms of traffic all pointed at one merge fix, meeting there in a
    /// continuous stream of pairwise conflicts.
    ConvergingStreams,
    /// Loitering aircraft ringed around a few fixes, stacked 900 ft apart
    /// vertically — many aircraft per grid cell across adjacent altitude
    /// bands, the banded/incremental stress case.
    HoldingStacks,
    /// Traffic funneled down a corridor that narrows toward its exit, with
    /// overtaking speed spread.
    CorridorFunnel,
    /// A dense, slow, low-altitude cluster with random headings.
    DroneSwarm,
    /// The paper's uniform traffic under degraded radar: a configured
    /// fraction of reports is lost each period, so aircraft vanish and
    /// reappear between rescans (they coast on expected positions).
    RadarDropout,
    /// Most of the fleet packed into one shard-cell-sized box straddling a
    /// shard corner — the static S×S partition's worst case.
    HotspotSurge,
}

impl ScenarioKind {
    /// Every kind, in catalog order.
    pub const ALL: [ScenarioKind; 7] = [
        ScenarioKind::CrossingFlows,
        ScenarioKind::ConvergingStreams,
        ScenarioKind::HoldingStacks,
        ScenarioKind::CorridorFunnel,
        ScenarioKind::DroneSwarm,
        ScenarioKind::RadarDropout,
        ScenarioKind::HotspotSurge,
    ];
}

/// One catalog entry: a kind plus its geometry knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The traffic shape.
    pub kind: ScenarioKind,
    /// Geometry knobs (catalog defaults unless overridden).
    pub params: ScenarioParams,
}

impl Scenario {
    /// A scenario of `kind` with the catalog's default parameters.
    pub fn new(kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            params: ScenarioParams::default(),
        }
    }

    /// Override the geometry knobs.
    pub fn with_params(mut self, params: ScenarioParams) -> Scenario {
        self.params = params;
        self
    }

    /// The full catalog with default parameters, in stable order.
    pub fn catalog() -> Vec<Scenario> {
        ScenarioKind::ALL
            .iter()
            .map(|&k| Scenario::new(k))
            .collect()
    }

    /// Look a default-parameter scenario up by its stable slug.
    pub fn by_slug(slug: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.slug() == slug)
    }

    /// Stable identifier used in CLI flags, artifact names and fixtures.
    pub fn slug(&self) -> &'static str {
        match self.kind {
            ScenarioKind::CrossingFlows => "crossing",
            ScenarioKind::ConvergingStreams => "converging",
            ScenarioKind::HoldingStacks => "holding-stack",
            ScenarioKind::CorridorFunnel => "corridor",
            ScenarioKind::DroneSwarm => "drone-swarm",
            ScenarioKind::RadarDropout => "radar-dropout",
            ScenarioKind::HotspotSurge => "hotspot",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::CrossingFlows => "Crossing flows",
            ScenarioKind::ConvergingStreams => "Converging streams",
            ScenarioKind::HoldingStacks => "Holding stacks",
            ScenarioKind::CorridorFunnel => "Corridor funnel",
            ScenarioKind::DroneSwarm => "Drone swarm",
            ScenarioKind::RadarDropout => "Degraded-radar dropout",
            ScenarioKind::HotspotSurge => "Shard-hotspot surge",
        }
    }

    /// One-line description for tables and artifact titles.
    pub fn description(&self) -> &'static str {
        match self.kind {
            ScenarioKind::CrossingFlows => {
                "straight streams on distinct headings meeting at the field center"
            }
            ScenarioKind::ConvergingStreams => "arms of traffic merging at one fix",
            ScenarioKind::HoldingStacks => "loitering rings stacked 900 ft apart over a few fixes",
            ScenarioKind::CorridorFunnel => "traffic squeezed down a narrowing corridor",
            ScenarioKind::DroneSwarm => "dense slow low-altitude cluster, random headings",
            ScenarioKind::RadarDropout => "uniform traffic with radar reports lost each period",
            ScenarioKind::HotspotSurge => "most of the fleet packed onto one shard corner",
        }
    }

    /// The [`AtmConfig`] this scenario runs under: the paper's defaults at
    /// `seed`, plus the scenario's own overrides (only the degraded-radar
    /// scenario changes anything — its dropout probability).
    pub fn config(&self, seed: u64) -> AtmConfig {
        self.apply(AtmConfig::with_seed(seed))
    }

    /// Apply this scenario's config overrides onto a caller-chosen base
    /// (preserving its scan mode, shard grid and seed).
    pub fn apply(&self, mut cfg: AtmConfig) -> AtmConfig {
        if self.kind == ScenarioKind::RadarDropout {
            cfg.radar_dropout = self.params.dropout;
        }
        cfg
    }

    /// Generate the fleet for `(n, seed)` under the scenario's config.
    /// Deterministic: one [`SimRng`] seeded from `seed`, drained in a fixed
    /// order ([`fleet_hash`] pins the exact bits).
    pub fn fleet(&self, n: usize, seed: u64) -> Vec<Aircraft> {
        let cfg = self.config(seed);
        let mut rng = SimRng::seed_from_u64(seed);
        let p = &self.params;
        match self.kind {
            ScenarioKind::CrossingFlows => crossing(n, p, &cfg, &mut rng),
            ScenarioKind::ConvergingStreams => converging(n, p, &cfg, &mut rng),
            ScenarioKind::HoldingStacks => holding_stacks(n, p, &cfg, &mut rng),
            ScenarioKind::CorridorFunnel => corridor(n, p, &cfg, &mut rng),
            ScenarioKind::DroneSwarm => drone_swarm(n, p, &cfg, &mut rng),
            // Degraded radar is the paper's own generator under a lossy
            // radar; the field's seeded RNG reproduces `SetupFlight`.
            ScenarioKind::RadarDropout => Airfield::new(n, cfg).aircraft,
            ScenarioKind::HotspotSurge => hotspot(n, p, &cfg, &mut rng),
        }
    }

    /// The scenario as a ready-to-run [`Airfield`] (fleet + config).
    pub fn airfield(&self, n: usize, seed: u64) -> Airfield {
        self.airfield_with(n, &self.config(seed))
    }

    /// [`Scenario::airfield`] over a caller-chosen base config: the
    /// caller's scan mode, shard grid and seed survive, the scenario's
    /// overrides and fleet are applied on top. The fleet depends only on
    /// `(n, cfg.seed)`, never on the scan/shard knobs.
    pub fn airfield_with(&self, n: usize, base: &AtmConfig) -> Airfield {
        let cfg = self.apply(base.clone());
        let fleet = self.fleet(n, cfg.seed);
        Airfield::from_aircraft(fleet, cfg)
    }
}

/// FNV-1a over the exact bit patterns of every aircraft field, in record
/// order: a content hash that moves when any generated bit moves (the
/// seed-stability fixtures commit these per `(scenario, n, seed)`).
pub fn fleet_hash(fleet: &[Aircraft]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |w: u32| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for a in fleet {
        eat(a.x.to_bits());
        eat(a.y.to_bits());
        eat(a.dx.to_bits());
        eat(a.dy.to_bits());
        eat(a.batx.to_bits());
        eat(a.baty.to_bits());
        eat(a.alt.to_bits());
        eat(a.col as u32);
        eat(a.time_till.to_bits());
        eat(a.col_with as u32);
        eat(a.r_match as u32);
        eat(a.expected_x.to_bits());
        eat(a.expected_y.to_bits());
    }
    h
}

/// One aircraft with `setup_flight`'s bookkeeping conventions (trial path
/// primed with the committed velocity, safe collision horizon).
fn craft(x: f32, y: f32, dx: f32, dy: f32, alt: f32, cfg: &AtmConfig) -> Aircraft {
    let mut a = Aircraft::at(x, y).with_velocity(dx, dy).with_altitude(alt);
    a.batx = dx;
    a.baty = dy;
    a.time_till = cfg.critical_periods;
    a
}

/// A ground speed drawn in knots, converted to nm/period.
fn speed(rng: &mut SimRng, lo_kts: f32, hi_kts: f32, cfg: &AtmConfig) -> f32 {
    rng.range_f32_inclusive(lo_kts, hi_kts) / cfg.periods_per_hour
}

/// Straight streams through the origin on headings spread over 180°; each
/// aircraft sits somewhere along its stream (both approaching and past the
/// center) in one of a few parallel lanes, at one of four 900-ft levels.
fn crossing(n: usize, p: &ScenarioParams, cfg: &AtmConfig, rng: &mut SimRng) -> Vec<Aircraft> {
    let flows = p.flows.max(2);
    let lanes = p.lanes.max(1) as u32;
    let reach = cfg.half_width - 10.0;
    (0..n)
        .map(|i| {
            let theta = PI * (i % flows) as f32 / flows as f32;
            let (ux, uy) = (theta.cos(), theta.sin());
            let (px, py) = (-uy, ux);
            let along = rng.range_f32_inclusive(-reach, reach);
            let lane = rng.range_u32_inclusive(0, lanes - 1) as f32 - (lanes as f32 - 1.0) / 2.0;
            let off = lane * p.lane_spacing_nm + rng.range_f32_inclusive(-0.4, 0.4);
            let s = speed(rng, 240.0, 480.0, cfg);
            let alt = 9_000.0 + rng.range_u32_inclusive(0, 3) as f32 * 900.0;
            craft(
                ux * along + px * off,
                uy * along + py * off,
                ux * s,
                uy * s,
                alt,
                cfg,
            )
        })
        .collect()
}

/// Arms of traffic all pointed at one merge fix; aircraft approach from
/// `flows` directions and fly straight through it.
fn converging(n: usize, p: &ScenarioParams, cfg: &AtmConfig, rng: &mut SimRng) -> Vec<Aircraft> {
    let arms = p.flows.max(2);
    let (mx, my) = (38.0_f32, -26.0_f32);
    let lim = cfg.half_width - 6.0;
    (0..n)
        .map(|i| {
            let phi = 2.0 * PI * (i % arms) as f32 / arms as f32 + 0.3;
            let d = rng.range_f32_inclusive(6.0, 110.0);
            let jx = rng.range_f32_inclusive(-1.2, 1.2);
            let jy = rng.range_f32_inclusive(-1.2, 1.2);
            let x = (mx + phi.cos() * d + jx).clamp(-lim, lim);
            let y = (my + phi.sin() * d + jy).clamp(-lim, lim);
            // Velocity toward the merge fix.
            let (vx, vy) = (mx - x, my - y);
            let norm = (vx * vx + vy * vy).sqrt().max(1e-3);
            let s = speed(rng, 180.0, 420.0, cfg);
            let alt = 7_000.0 + rng.range_u32_inclusive(0, 4) as f32 * 900.0;
            craft(x, y, vx / norm * s, vy / norm * s, alt, cfg)
        })
        .collect()
}

/// Loitering rings around a few fixes, levels stacked 900 ft apart (inside
/// the 1000 ft separation, so adjacent levels pass the vertical gate):
/// many aircraft per grid cell, the banded/incremental stress case.
fn holding_stacks(
    n: usize,
    p: &ScenarioParams,
    cfg: &AtmConfig,
    rng: &mut SimRng,
) -> Vec<Aircraft> {
    const FIXES: [(f32, f32); 3] = [(-52.0, 44.0), (10.0, -8.0), (68.0, -64.0)];
    let stacks = p.stacks.clamp(1, FIXES.len());
    let levels = p.stack_levels.max(1);
    (0..n)
        .map(|i| {
            let (cx, cy) = FIXES[i % stacks];
            let level = (i / stacks) % levels;
            let phi = rng.range_f32_inclusive(0.0, 2.0 * PI);
            let r = rng.range_f32_inclusive(1.2, p.holding_radius_nm.max(1.3));
            // Tangential velocity; alternate turn direction per level.
            let turn = if level.is_multiple_of(2) { 1.0 } else { -1.0 };
            let s = speed(rng, 160.0, 230.0, cfg);
            let alt = 6_000.0 + level as f32 * 900.0 + rng.range_f32_inclusive(-120.0, 120.0);
            craft(
                cx + phi.cos() * r,
                cy + phi.sin() * r,
                -phi.sin() * turn * s,
                phi.cos() * turn * s,
                alt,
                cfg,
            )
        })
        .collect()
}

/// Traffic in a corridor along +x whose half-width narrows linearly from
/// the entry to the exit, with enough speed spread for overtaking.
fn corridor(n: usize, p: &ScenarioParams, cfg: &AtmConfig, rng: &mut SimRng) -> Vec<Aircraft> {
    let reach = cfg.half_width - 8.0;
    let entry_half = (p.corridor_width_nm / 2.0).max(1.0);
    let exit_half = 0.8_f32.min(entry_half);
    (0..n)
        .map(|_| {
            let x = rng.range_f32_inclusive(-reach, reach);
            // Linear funnel: widest at the entry (x = -reach).
            let t = (x + reach) / (2.0 * reach);
            let half = entry_half + (exit_half - entry_half) * t;
            let y = rng.range_f32_inclusive(-half, half);
            let s = speed(rng, 280.0, 560.0, cfg);
            let dy = rng.range_f32_inclusive(-0.03, 0.03) * s;
            let alt = 11_000.0 + rng.range_u32_inclusive(0, 1) as f32 * 900.0;
            craft(x, y, s, dy, alt, cfg)
        })
        .collect()
}

/// A dense, slow, low-altitude cluster with random headings.
fn drone_swarm(n: usize, p: &ScenarioParams, cfg: &AtmConfig, rng: &mut SimRng) -> Vec<Aircraft> {
    let cx = rng.range_f32_inclusive(-40.0, 40.0);
    let cy = rng.range_f32_inclusive(-40.0, 40.0);
    let r = p.swarm_radius_nm.max(0.5);
    (0..n)
        .map(|_| {
            let x = cx + rng.range_f32_inclusive(-r, r);
            let y = cy + rng.range_f32_inclusive(-r, r);
            let phi = rng.range_f32_inclusive(0.0, 2.0 * PI);
            let s = speed(rng, 30.0, 90.0, cfg);
            let alt = 1_000.0 + rng.range_u32_inclusive(0, 8) as f32 * 450.0;
            craft(x, y, phi.cos() * s, phi.sin() * s, alt, cfg)
        })
        .collect()
}

/// `hotspot_frac` of the fleet in a 56-nm box straddling the (64, 64)
/// shard corner (for S = 4 over ±128 nm the box spans four shard cells'
/// meeting point), packed into four altitude levels; the rest is uniform
/// background traffic.
fn hotspot(n: usize, p: &ScenarioParams, cfg: &AtmConfig, rng: &mut SimRng) -> Vec<Aircraft> {
    let hot = ((p.hotspot_frac.clamp(0.0, 1.0)) * n as f32).round() as usize;
    let lim = cfg.half_width - 8.0;
    (0..n)
        .map(|i| {
            if i < hot {
                let x = rng.range_f32_inclusive(36.0, 92.0);
                let y = rng.range_f32_inclusive(36.0, 92.0);
                let phi = rng.range_f32_inclusive(0.0, 2.0 * PI);
                let s = speed(rng, 120.0, 360.0, cfg);
                let alt = 8_000.0 + rng.range_u32_inclusive(0, 3) as f32 * 900.0;
                craft(x, y, phi.cos() * s, phi.sin() * s, alt, cfg)
            } else {
                let x = rng.range_f32_inclusive(-lim, lim);
                let y = rng.range_f32_inclusive(-lim, lim);
                let phi = rng.range_f32_inclusive(0.0, 2.0 * PI);
                let s = speed(rng, 120.0, 540.0, cfg);
                let alt = rng.range_f32_inclusive(cfg.alt_min_ft, cfg.alt_max_ft);
                craft(x, y, phi.cos() * s, phi.sin() * s, alt, cfg)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seven_unique_slugs() {
        let catalog = Scenario::catalog();
        assert_eq!(catalog.len(), 7);
        let mut slugs: Vec<&str> = catalog.iter().map(|s| s.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 7, "slugs must be unique");
        for s in &catalog {
            let found = Scenario::by_slug(s.slug()).expect("slug roundtrip");
            assert_eq!(found.kind, s.kind);
        }
        assert!(Scenario::by_slug("no-such-scenario").is_none());
    }

    #[test]
    fn fleets_are_deterministic_per_n_and_seed() {
        for scn in Scenario::catalog() {
            let a = scn.fleet(64, 11);
            let b = scn.fleet(64, 11);
            assert_eq!(a, b, "{} must be deterministic", scn.slug());
            let c = scn.fleet(64, 12);
            assert_ne!(a, c, "{} must depend on the seed", scn.slug());
            assert_eq!(a.len(), 64);
        }
    }

    #[test]
    fn fleets_respect_field_and_config_ranges() {
        for scn in Scenario::catalog() {
            let cfg = scn.config(3);
            for a in scn.fleet(200, 3) {
                assert!(a.x.abs() <= cfg.half_width, "{}: x={}", scn.slug(), a.x);
                assert!(a.y.abs() <= cfg.half_width, "{}: y={}", scn.slug(), a.y);
                assert!(
                    a.alt >= cfg.alt_min_ft && a.alt <= cfg.alt_max_ft,
                    "{}: alt={}",
                    scn.slug(),
                    a.alt
                );
                let kts = a.speed() * cfg.periods_per_hour;
                assert!(
                    kts >= cfg.speed_min_kts - 0.5 && kts <= cfg.speed_max_kts + 0.5,
                    "{}: speed {kts} kts",
                    scn.slug()
                );
                assert_eq!(a.batx, a.dx);
                assert_eq!(a.baty, a.dy);
            }
        }
    }

    #[test]
    fn holding_stacks_stack_vertically_in_place() {
        let scn = Scenario::new(ScenarioKind::HoldingStacks);
        let fleet = scn.fleet(120, 5);
        let mut levels: Vec<i64> = fleet.iter().map(|a| (a.alt / 900.0) as i64).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(
            levels.len() >= scn.params.stack_levels,
            "expected >= {} distinct levels, got {}",
            scn.params.stack_levels,
            levels.len()
        );
        // Everyone loiters near one of the three fixes.
        for a in &fleet {
            let near = [(-52.0, 44.0), (10.0, -8.0), (68.0, -64.0)]
                .iter()
                .any(|(cx, cy)| ((a.x - cx).powi(2) + (a.y - cy).powi(2)).sqrt() < 4.0);
            assert!(near, "aircraft at ({}, {}) is far from every fix", a.x, a.y);
        }
    }

    #[test]
    fn crossing_flows_use_distinct_headings() {
        let scn = Scenario::new(ScenarioKind::CrossingFlows);
        let fleet = scn.fleet(90, 4);
        let mut headings: Vec<i64> = fleet
            .iter()
            .map(|a| (a.dy.atan2(a.dx).to_degrees().rem_euclid(180.0) / 10.0) as i64)
            .collect();
        headings.sort_unstable();
        headings.dedup();
        assert!(headings.len() >= 3, "expected >= 3 stream headings");
    }

    #[test]
    fn hotspot_concentrates_the_configured_fraction() {
        let scn = Scenario::new(ScenarioKind::HotspotSurge);
        let fleet = scn.fleet(400, 9);
        let inside = fleet
            .iter()
            .filter(|a| (36.0..=92.0).contains(&a.x) && (36.0..=92.0).contains(&a.y))
            .count();
        assert!(
            inside as f32 >= 0.70 * 400.0,
            "only {inside}/400 in the hotspot box"
        );
    }

    #[test]
    fn radar_dropout_scenario_configures_a_lossy_radar() {
        let scn = Scenario::new(ScenarioKind::RadarDropout);
        assert_eq!(scn.config(1).radar_dropout, scn.params.dropout);
        // The fleet itself is the paper's uniform traffic.
        assert_eq!(scn.fleet(50, 1), {
            let mut cfg = AtmConfig::with_seed(1);
            cfg.radar_dropout = scn.params.dropout;
            Airfield::new(50, cfg).aircraft
        });
        // Every other scenario keeps the paper's perfect radar.
        for other in Scenario::catalog() {
            if other.kind != ScenarioKind::RadarDropout {
                assert_eq!(other.config(1).radar_dropout, 0.0, "{}", other.slug());
            }
        }
    }

    #[test]
    fn airfield_with_preserves_scan_and_shard_knobs() {
        use crate::config::ScanMode;
        let scn = Scenario::new(ScenarioKind::CrossingFlows);
        let base = AtmConfig {
            scan: ScanMode::Incremental,
            shards: 4,
            ..AtmConfig::with_seed(77)
        };
        let field = scn.airfield_with(60, &base);
        assert_eq!(field.config().scan, ScanMode::Incremental);
        assert_eq!(field.config().shards, 4);
        assert_eq!(field.len(), 60);
        // The fleet only depends on (n, seed), never on those knobs.
        assert_eq!(field.aircraft, scn.fleet(60, 77));
    }

    #[test]
    fn fleet_hash_tracks_every_bit() {
        let scn = Scenario::new(ScenarioKind::DroneSwarm);
        let fleet = scn.fleet(32, 2);
        let h = fleet_hash(&fleet);
        assert_eq!(h, fleet_hash(&scn.fleet(32, 2)), "hash must be stable");
        let mut tweaked = fleet.clone();
        tweaked[17].alt += 1.0;
        assert_ne!(h, fleet_hash(&tweaked), "hash must see field changes");
        assert_ne!(h, fleet_hash(&fleet[..31]), "hash must see length changes");
    }
}
