//! Tasks 2 and 3: collision detection and resolution (the paper's
//! Algorithm 2, the `CheckCollisionPath` kernel).
//!
//! Per track aircraft `i`:
//!
//! 1. reset `time_till` to the safe horizon and scan every other aircraft
//!    at the same altitude band with Batcher's conflict window
//!    ([`crate::batcher`]);
//! 2. if a conflict starts inside the critical window, mark both aircraft
//!    (`col`, `col_with`, `time_till`) and **rotate** the track's trial
//!    velocity by the next angle in the ±5°…±30° sequence, then restart
//!    the scan against the new trial path (the paper's `t = 19; break`
//!    loop-reset idiom);
//! 3. when a scan completes without a critical conflict and course
//!    corrections were attempted (`chk > 0`), commit the trial velocity as
//!    the new path and clear the collision flags; if the angle sequence is
//!    exhausted, keep the original path and leave the aircraft flagged
//!    (the paper accepts that complete avoidance is not always possible
//!    and defers to altitude changes).
//!
//! The paper combines both tasks in a single kernel to avoid host↔device
//! round-trips; [`check_collision_path`] is that fused per-aircraft
//! routine, reused verbatim by every backend. The split-kernel variant the
//! fusion ablation compares against lives in [`detect_only`].

use crate::batcher::{conflict_window, same_altitude_band};
use crate::config::{AtmConfig, ScanMode};
use crate::types::{Aircraft, NO_COLLISION};
use sim_clock::{CostSink, NullSink};

/// Largest bucket index magnitude the banded index will use. Beyond this
/// the f64 rounding slack in `alt / width` is no longer provably below the
/// half-ulp margin of the f32 altitude gate, so [`AltitudeBands::build`]
/// falls back to a single catch-all bucket (still correct, no pruning).
/// Real configurations sit around |bucket| ≤ 40.
const MAX_BUCKET_MAGNITUDE: f64 = (1u64 << 24) as f64;

/// An altitude-band bucketed index over a fleet snapshot.
///
/// Bucket `b` holds the aircraft with `floor(alt / width) == b`, where
/// `width` is the vertical-separation threshold. Any pair passing the f32
/// altitude gate `|a.alt − b.alt| < width` is at most one bucket apart
/// (`|Δalt| < width` bounds the exact quotients within 1.0 of each other,
/// and the f64 division error is ≪ the gate's own f32 half-ulp margin under
/// [`MAX_BUCKET_MAGNITUDE`]), so a scan that visits buckets `b−1..=b+1` sees
/// every candidate the naive O(n²) scan would accept. Altitudes never change
/// during Tasks 2+3 — only velocities and collision flags do — so an index
/// built once per detect execution stays valid through every rotation
/// rescan of every aircraft.
///
/// This is purely a host-side wall-clock structure: callers book the skipped
/// pairs' operation mix in aggregate (see [`scan_for_conflicts_banded`]), so
/// every [`CostSink`] tallies exactly what the naive scan books.
#[derive(Clone, Debug)]
pub struct AltitudeBands {
    /// Band width in feet as f64 (0.0 marks the degenerate single-bucket
    /// fallback).
    width: f64,
    /// Bucket index of `buckets[0]`.
    min_bucket: i64,
    /// Aircraft indices grouped by altitude bucket, ascending bucket order.
    buckets: Vec<Vec<u32>>,
}

impl AltitudeBands {
    /// Bucket index of one altitude, or `None` when the assignment is not
    /// provably gate-consistent (non-finite altitude or huge quotient).
    fn bucket_for(alt: f32, width: f64) -> Option<i64> {
        let q = (alt as f64 / width).floor();
        if q.is_finite() && q.abs() <= MAX_BUCKET_MAGNITUDE {
            Some(q as i64)
        } else {
            None
        }
    }

    /// Build the index for a fleet under vertical separation
    /// `alt_separation_ft`. Degenerate parameters (non-positive or
    /// non-finite width, unbucketable altitudes, or a bucket span so wide
    /// the index would waste memory) yield a single catch-all bucket, which
    /// keeps every scan correct at naive cost.
    pub fn build(aircraft: &[Aircraft], alt_separation_ft: f32) -> AltitudeBands {
        let n = aircraft.len();
        let width = alt_separation_ft as f64;
        let fallback = || AltitudeBands {
            width: 0.0,
            min_bucket: 0,
            buckets: vec![(0..n as u32).collect()],
        };
        if n == 0 || !width.is_finite() || width <= 0.0 {
            return fallback();
        }
        let mut min_b = i64::MAX;
        let mut max_b = i64::MIN;
        for a in aircraft {
            match Self::bucket_for(a.alt, width) {
                Some(b) => {
                    min_b = min_b.min(b);
                    max_b = max_b.max(b);
                }
                None => return fallback(),
            }
        }
        let span = (max_b as i128 - min_b as i128) + 1;
        if span > (4 * n as i128).max(4_096) {
            return fallback();
        }
        let mut buckets = vec![Vec::new(); span as usize];
        for (idx, a) in aircraft.iter().enumerate() {
            let b = Self::bucket_for(a.alt, width).expect("bucketed above");
            buckets[(b - min_b) as usize].push(idx as u32);
        }
        AltitudeBands {
            width,
            min_bucket: min_b,
            buckets,
        }
    }

    /// Half-open range into `buckets` covering `bucket(alt) ± 1`.
    fn candidate_range(&self, alt: f32) -> (usize, usize) {
        if self.width <= 0.0 {
            return (0, self.buckets.len());
        }
        let len = self.buckets.len() as i64;
        let Some(b) = Self::bucket_for(alt, self.width) else {
            // Unbucketable query altitude: scan everything (correctness
            // over pruning; cannot happen for altitudes the index was
            // built from).
            return (0, self.buckets.len());
        };
        let lo = (b - 1 - self.min_bucket).clamp(0, len);
        let hi = (b + 2 - self.min_bucket).clamp(0, len);
        (lo as usize, hi.max(lo) as usize)
    }

    /// Aircraft indices that could pass the altitude gate against an
    /// aircraft at `alt` (a superset: callers re-check the real gate).
    pub fn candidates(&self, alt: f32) -> impl Iterator<Item = usize> + '_ {
        let (lo, hi) = self.candidate_range(alt);
        self.buckets[lo..hi]
            .iter()
            .flat_map(|b| b.iter().map(|&i| i as usize))
    }

    /// Number of buckets (1 for the degenerate fallback).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The index a backend should use for one detect execution under
    /// `cfg.scan`: `None` for [`ScanMode::Naive`], a freshly built index
    /// for [`ScanMode::Banded`].
    pub fn for_config(aircraft: &[Aircraft], cfg: &AtmConfig) -> Option<AltitudeBands> {
        match cfg.scan {
            ScanMode::Naive => None,
            ScanMode::Banded => Some(AltitudeBands::build(aircraft, cfg.alt_separation_ft)),
        }
    }
}

/// Outcome counters of one Tasks 2+3 execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Pair windows evaluated (Batcher computations).
    pub pair_checks: u64,
    /// Critical conflicts encountered (before resolution).
    pub critical_conflicts: u64,
    /// Path rotations attempted.
    pub rotations: u64,
    /// Aircraft whose path was changed to a conflict-free trial.
    pub resolved: u64,
    /// Aircraft left with an unresolvable critical conflict.
    pub unresolved: u64,
}

impl DetectStats {
    /// Fold another aircraft's stats into this total.
    pub fn absorb(&mut self, s: &DetectStats) {
        self.pair_checks += s.pair_checks;
        self.critical_conflicts += s.critical_conflicts;
        self.rotations += s.rotations;
        self.resolved += s.resolved;
        self.unresolved += s.unresolved;
    }
}

/// Result of scanning one track aircraft against the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanResult {
    /// Earliest critical conflict: (partner index, window start).
    pub critical: Option<(usize, f32)>,
    /// Pairs examined.
    pub checks: u64,
}

/// One full scan of aircraft `i` (with trial velocity `vel`) against all
/// others: the Task 2 half. Read-only; backends that cannot mutate shared
/// state mid-scan (the threaded MIMD implementation) drive the rotation
/// loop themselves around this function.
pub fn scan_for_conflicts(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for (p, trial) in aircraft.iter().enumerate() {
        sink.ialu(1);
        sink.branch(false);
        if p == i {
            continue;
        }
        // Every track thread walks the same shared aircraft array.
        sink.load_shared(Aircraft::RECORD_BYTES);
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, sink) {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                match earliest {
                    Some((_, best)) if best <= tmin => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// The banded fast path of [`scan_for_conflicts`]: visit only the aircraft
/// within ±1 altitude band of the track, which is every pair the naive scan
/// could accept (see [`AltitudeBands`]). The operation mix the naive scan
/// books for *every* pair — loop index work, the self check, the shared
/// record read and the altitude-gate compare — is booked up front in
/// aggregate, so the sink's totals (and therefore every backend's modeled
/// time) are bit-identical to the naive scan; only candidates that pass the
/// real altitude gate book their conflict windows individually, exactly as
/// the naive scan does. Returns the same result and the same check count.
pub fn scan_for_conflicts_banded(
    aircraft: &[Aircraft],
    bands: &AltitudeBands,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let n = aircraft.len() as u64;
    // Aggregate of what the naive scan books unconditionally: n iterations
    // of `ialu(1); branch(false)` plus, for the n−1 non-self pairs, one
    // shared record read and the altitude gate's `fadd(2); branch(false)`.
    sink.ialu(n);
    sink.branches(2 * n - 1, false);
    sink.loads_shared(n - 1, Aircraft::RECORD_BYTES);
    sink.fadd(2 * (n - 1));

    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for p in bands.candidates(track.alt) {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        // Re-check the real f32 gate (candidates are a superset); its cost
        // is already in the aggregate above, so book it to a null sink.
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink) {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                // Bucket order is not index order, so pick the lexicographic
                // minimum over (tmin, p) explicitly — the same pair the
                // naive ascending-index scan settles on.
                match earliest {
                    Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// Dispatch between the naive scan and the banded fast path (`None` means
/// naive). Backends hold an `Option<AltitudeBands>` per detect execution
/// and call this from their per-aircraft loops.
#[inline]
pub fn scan_for_conflicts_with(
    aircraft: &[Aircraft],
    bands: Option<&AltitudeBands>,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    match bands {
        Some(b) => scan_for_conflicts_banded(aircraft, b, i, vel, cfg, sink),
        None => scan_for_conflicts(aircraft, i, vel, cfg, sink),
    }
}

/// Rotate a velocity vector by `angle` radians (the Task 3 course change).
pub fn rotate_velocity(vel: (f32, f32), angle: f32, sink: &mut impl CostSink) -> (f32, f32) {
    sink.sfu(2); // sin + cos
    sink.fmul(4);
    sink.fadd(2);
    let (s, c) = angle.sin_cos();
    (vel.0 * c - vel.1 * s, vel.0 * s + vel.1 * c)
}

/// The fused Tasks 2+3 routine for track aircraft `i` (the paper's
/// `CheckCollisionPath` kernel body). Mutates `aircraft[i]` (trial path,
/// committed path, collision bookkeeping) and the collision flags of the
/// partner aircraft it conflicts with, exactly as Algorithm 2 describes.
pub fn check_collision_path(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    check_collision_path_with(aircraft, None, i, cfg, sink)
}

/// [`check_collision_path`] over a prebuilt altitude-band index: identical
/// mutations, stats and booked cost totals, fewer candidate visits. The
/// index stays valid across the internal rotation rescans (altitudes do not
/// change) and across all aircraft of one detect execution.
pub fn check_collision_path_banded(
    aircraft: &mut [Aircraft],
    bands: &AltitudeBands,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    check_collision_path_with(aircraft, Some(bands), i, cfg, sink)
}

/// [`check_collision_path`] with an optional band index (`None` = naive).
pub fn check_collision_path_with(
    aircraft: &mut [Aircraft],
    bands: Option<&AltitudeBands>,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();

    // Reset this aircraft's horizon bookkeeping (Algorithm 2 init).
    aircraft[i].time_till = cfg.critical_periods;
    aircraft[i].batx = aircraft[i].dx;
    aircraft[i].baty = aircraft[i].dy;
    sink.store(12);

    let rotations = cfg.rotation_sequence();
    let mut next_rotation = 0usize;
    let mut vel = (aircraft[i].dx, aircraft[i].dy);
    let mut chk = 0u32; // course corrections attempted (paper's `chk`)

    loop {
        let scan = scan_for_conflicts_with(aircraft, bands, i, vel, cfg, sink);
        stats.pair_checks += scan.checks;

        let Some((partner, tmin)) = scan.critical else {
            break; // current (trial) path is clear of critical conflicts
        };
        stats.critical_conflicts += 1;

        // Mark both aircraft (Algorithm 2 line 9).
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        aircraft[partner].col = true;
        aircraft[partner].col_with = i as i32;
        aircraft[partner].time_till = aircraft[partner].time_till.min(tmin);
        sink.store(24);

        sink.branch(false);
        if next_rotation >= rotations.len() {
            // Angle sequence exhausted: keep the original path, leave the
            // conflict flagged for altitude-based resolution.
            stats.unresolved += 1;
            aircraft[i].batx = aircraft[i].dx;
            aircraft[i].baty = aircraft[i].dy;
            sink.store(8);
            return stats;
        }

        // Task 3: rotate the *original* path by the next angle in the
        // sequence and rescan from the top (the paper's loop reset).
        let base = (aircraft[i].dx, aircraft[i].dy);
        vel = rotate_velocity(base, rotations[next_rotation], sink);
        next_rotation += 1;
        chk += 1;
        stats.rotations += 1;
        aircraft[i].batx = vel.0;
        aircraft[i].baty = vel.1;
        sink.store(8);
    }

    sink.branch(false);
    if chk > 0 {
        // Commit the collision-free trial path and clear the flags
        // (Algorithm 2 line 12).
        aircraft[i].dx = vel.0;
        aircraft[i].dy = vel.1;
        aircraft[i].col = false;
        aircraft[i].col_with = NO_COLLISION;
        aircraft[i].time_till = cfg.critical_periods;
        sink.store(20);
        stats.resolved += 1;
    }
    stats
}

/// Detection without resolution (the split-kernel ablation's Task 2): one
/// scan with the committed velocity, flag critical conflicts, change
/// nothing else. Returns the stats of the scan.
pub fn detect_only(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    detect_only_with(aircraft, None, i, cfg, sink)
}

/// [`detect_only`] over a prebuilt altitude-band index (same contract as
/// [`check_collision_path_banded`]).
pub fn detect_only_banded(
    aircraft: &mut [Aircraft],
    bands: &AltitudeBands,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    detect_only_with(aircraft, Some(bands), i, cfg, sink)
}

/// [`detect_only`] with an optional band index (`None` = naive).
pub fn detect_only_with(
    aircraft: &mut [Aircraft],
    bands: Option<&AltitudeBands>,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();
    aircraft[i].time_till = cfg.critical_periods;
    sink.store(4);
    let vel = (aircraft[i].dx, aircraft[i].dy);
    let scan = scan_for_conflicts_with(aircraft, bands, i, vel, cfg, sink);
    stats.pair_checks = scan.checks;
    if let Some((partner, tmin)) = scan.critical {
        stats.critical_conflicts = 1;
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        sink.store(12);
    }
    stats
}

/// Sequential reference driver: run the fused routine for every aircraft in
/// index order and fold the stats. Honors [`AtmConfig::scan`]: under
/// [`ScanMode::Banded`] one altitude-band index is built up front and reused
/// for every aircraft (altitudes never change during Tasks 2+3).
pub fn detect_resolve_all(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let bands = AltitudeBands::for_config(aircraft, cfg);
    let mut total = DetectStats::default();
    for i in 0..aircraft.len() {
        total.absorb(&check_collision_path_with(
            aircraft,
            bands.as_ref(),
            i,
            cfg,
            sink,
        ));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::NullSink;

    fn cfg() -> AtmConfig {
        AtmConfig::default()
    }

    /// Two aircraft, head-on at the same altitude, colliding within the
    /// critical window (gap 28 nm, closing 0.1 nm/period → conflict from
    /// t = 250 < 300, and far enough out that a ≤30° turn can clear it).
    fn head_on_pair() -> Vec<Aircraft> {
        vec![
            Aircraft::at(0.0, 0.0)
                .with_velocity(0.05, 0.0)
                .with_altitude(10_000.0),
            Aircraft::at(28.0, 0.0)
                .with_velocity(-0.05, 0.0)
                .with_altitude(10_000.0),
        ]
    }

    #[test]
    fn head_on_pair_is_detected_and_resolved() {
        let mut ac = head_on_pair();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.critical_conflicts >= 1);
        assert!(s.rotations >= 1);
        assert_eq!(s.resolved, 1);
        assert!(!ac[0].col, "flags cleared after committing a clear path");
        // The committed path really is conflict-free.
        let s2 = detect_only(&mut ac.clone(), 0, &cfg(), &mut NullSink);
        assert_eq!(s2.critical_conflicts, 0);
    }

    #[test]
    fn resolution_preserves_speed() {
        let mut ac = head_on_pair();
        let speed_before = ac[0].speed();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(
            (ac[0].speed() - speed_before).abs() < 1e-6,
            "rotation must not change speed"
        );
    }

    #[test]
    fn distant_pair_is_left_alone() {
        let mut ac = vec![
            Aircraft::at(-100.0, -100.0).with_velocity(0.01, 0.0),
            Aircraft::at(100.0, 100.0).with_velocity(-0.01, 0.0),
        ];
        let before = ac.clone();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
        assert_eq!(ac[0].dx, before[0].dx);
        assert!(!ac[0].col);
    }

    #[test]
    fn altitude_separated_pair_is_not_a_conflict() {
        let mut ac = head_on_pair();
        ac[1].alt = ac[0].alt + 2_000.0;
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0, "altitude gate must skip the pair");
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn non_critical_far_future_conflict_is_not_resolved() {
        // Conflict at t ≈ 1000 periods: inside the horizon, outside the
        // 300-period critical window → detected pairs are left to resolve
        // naturally.
        let mut ac = vec![
            Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0),
            Aircraft::at(100.0, 0.0).with_velocity(-0.05, 0.0),
        ];
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
    }

    #[test]
    fn partner_is_flagged_during_detection() {
        let mut ac = head_on_pair();
        // Use detect_only so the flags survive (the fused routine clears
        // its own after resolving).
        detect_only(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(ac[0].col);
        assert_eq!(ac[0].col_with, 1);
        assert!(ac[0].time_till < cfg().critical_periods);
    }

    #[test]
    fn fused_routine_flags_partner_while_resolving() {
        let mut ac = head_on_pair();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        // Aircraft 0 resolved itself; the partner keeps the conflict mark
        // until its own turn (matching the kernel's behaviour).
        assert!(ac[1].col);
        assert_eq!(ac[1].col_with, 0);
    }

    #[test]
    fn dense_crowd_can_be_unresolvable() {
        // Ring of aircraft all converging on the origin at the same
        // altitude: no 30° rotation escapes.
        let n = 24;
        let mut ac: Vec<Aircraft> = (0..n)
            .map(|k| {
                let ang = k as f32 * std::f32::consts::TAU / n as f32;
                let r = 5.0;
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(10_000.0)
            })
            .collect();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.unresolved == 1 || s.resolved == 1);
        if s.unresolved == 1 {
            // Original path kept, conflict flagged.
            assert!(ac[0].col);
            assert!((ac[0].dx + 0.05).abs() < 1e-6);
        }
    }

    #[test]
    fn rotations_escalate_through_the_sequence() {
        let mut ac = head_on_pair();
        let mut counter = sim_clock::OpCounter::new();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut counter);
        // Each rotation costs two SFU ops (sin+cos).
        assert_eq!(counter.count(sim_clock::OpClass::Sfu), 2 * s.rotations);
        assert!(s.rotations <= 12, "sequence is bounded at ±30°");
    }

    #[test]
    fn rotate_velocity_is_a_rotation() {
        let v = rotate_velocity((1.0, 0.0), std::f32::consts::FRAC_PI_2, &mut NullSink);
        assert!(v.0.abs() < 1e-6);
        assert!((v.1 - 1.0).abs() < 1e-6);
        let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
        assert!((mag - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detect_resolve_all_folds_stats() {
        let mut ac = head_on_pair();
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert!(s.pair_checks >= 2);
        // At least one of the pair had to act.
        assert!(s.rotations >= 1);
    }

    #[test]
    fn single_aircraft_has_nothing_to_check() {
        let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0)];
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0);
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut ac = head_on_pair();
            let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
            (s, ac)
        };
        assert_eq!(mk(), mk());
    }

    /// A small deterministic fleet spread over several altitude bands with
    /// real conflicts in it.
    fn banded_fleet() -> Vec<Aircraft> {
        let mut ac = Vec::new();
        for k in 0..40u32 {
            let ang = k as f32 * 0.7;
            let alt = 5_000.0 + (k % 7) as f32 * 900.0; // straddles bands
            ac.push(
                Aircraft::at(30.0 * ang.cos(), 30.0 * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(alt),
            );
        }
        ac
    }

    #[test]
    fn banded_scan_matches_naive_scan_exactly() {
        let ac = banded_fleet();
        let bands = AltitudeBands::build(&ac, cfg().alt_separation_ft);
        for i in 0..ac.len() {
            let vel = (ac[i].dx, ac[i].dy);
            let mut cn = sim_clock::OpCounter::new();
            let mut cb = sim_clock::OpCounter::new();
            let rn = scan_for_conflicts(&ac, i, vel, &cfg(), &mut cn);
            let rb = scan_for_conflicts_banded(&ac, &bands, i, vel, &cfg(), &mut cb);
            assert_eq!(rn, rb, "scan result must match for aircraft {i}");
            assert_eq!(cn, cb, "booked cost totals must match for aircraft {i}");
        }
    }

    #[test]
    fn banded_detect_resolve_matches_naive_end_to_end() {
        let run = |mode: ScanMode| {
            let mut ac = banded_fleet();
            let mut ops = sim_clock::OpCounter::new();
            let c = AtmConfig {
                scan: mode,
                ..cfg()
            };
            let s = detect_resolve_all(&mut ac, &c, &mut ops);
            (ac, s, ops)
        };
        let naive = run(ScanMode::Naive);
        let banded = run(ScanMode::Banded);
        assert_eq!(naive.0, banded.0, "mutated fleets must be identical");
        assert_eq!(naive.1, banded.1, "DetectStats must be identical");
        assert_eq!(naive.2, banded.2, "cost totals must be identical");
        assert!(
            naive.1.critical_conflicts > 0,
            "fleet should have conflicts"
        );
    }

    #[test]
    fn bands_prune_candidates_but_cover_all_gate_passers() {
        let ac = banded_fleet();
        let sep = cfg().alt_separation_ft;
        let bands = AltitudeBands::build(&ac, sep);
        assert!(bands.bucket_count() > 1, "fleet spans several bands");
        for i in 0..ac.len() {
            let cands: Vec<usize> = bands.candidates(ac[i].alt).collect();
            assert!(cands.len() < ac.len(), "banding should prune aircraft {i}");
            for p in 0..ac.len() {
                if p != i && (ac[i].alt - ac[p].alt).abs() < sep {
                    assert!(cands.contains(&p), "gate-passing pair ({i},{p}) missed");
                }
            }
        }
    }

    #[test]
    fn degenerate_band_width_falls_back_to_one_bucket() {
        let ac = banded_fleet();
        for width in [0.0_f32, -5.0, f32::NAN, f32::INFINITY] {
            let bands = AltitudeBands::build(&ac, width);
            assert_eq!(bands.bucket_count(), 1);
            assert_eq!(bands.candidates(ac[0].alt).count(), ac.len());
        }
        assert_eq!(AltitudeBands::build(&[], 1_000.0).bucket_count(), 1);
    }

    #[test]
    fn detect_only_banded_matches_naive() {
        let base = banded_fleet();
        let bands = AltitudeBands::build(&base, cfg().alt_separation_ft);
        for i in 0..base.len() {
            let mut an = base.clone();
            let mut ab = base.clone();
            let mut cn = sim_clock::OpCounter::new();
            let mut cb = sim_clock::OpCounter::new();
            let sn = detect_only(&mut an, i, &cfg(), &mut cn);
            let sb = detect_only_banded(&mut ab, &bands, i, &cfg(), &mut cb);
            assert_eq!(sn, sb);
            assert_eq!(an, ab);
            assert_eq!(cn, cb);
        }
    }
}
