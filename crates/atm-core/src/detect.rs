//! Tasks 2 and 3: collision detection and resolution (the paper's
//! Algorithm 2, the `CheckCollisionPath` kernel).
//!
//! Per track aircraft `i`:
//!
//! 1. reset `time_till` to the safe horizon and scan every other aircraft
//!    at the same altitude band with Batcher's conflict window
//!    ([`crate::batcher`]);
//! 2. if a conflict starts inside the critical window, mark both aircraft
//!    (`col`, `col_with`, `time_till`) and **rotate** the track's trial
//!    velocity by the next angle in the ±5°…±30° sequence, then restart
//!    the scan against the new trial path (the paper's `t = 19; break`
//!    loop-reset idiom);
//! 3. when a scan completes without a critical conflict and course
//!    corrections were attempted (`chk > 0`), commit the trial velocity as
//!    the new path and clear the collision flags; if the angle sequence is
//!    exhausted, keep the original path and leave the aircraft flagged
//!    (the paper accepts that complete avoidance is not always possible
//!    and defers to altitude changes).
//!
//! The paper combines both tasks in a single kernel to avoid host↔device
//! round-trips; [`check_collision_path`] is that fused per-aircraft
//! routine, reused verbatim by every backend. The split-kernel variant the
//! fusion ablation compares against lives in [`detect_only`].

use crate::batcher::{conflict_window, same_altitude_band};
use crate::config::AtmConfig;
use crate::types::{Aircraft, NO_COLLISION};
use sim_clock::CostSink;

/// Outcome counters of one Tasks 2+3 execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Pair windows evaluated (Batcher computations).
    pub pair_checks: u64,
    /// Critical conflicts encountered (before resolution).
    pub critical_conflicts: u64,
    /// Path rotations attempted.
    pub rotations: u64,
    /// Aircraft whose path was changed to a conflict-free trial.
    pub resolved: u64,
    /// Aircraft left with an unresolvable critical conflict.
    pub unresolved: u64,
}

/// Result of scanning one track aircraft against the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanResult {
    /// Earliest critical conflict: (partner index, window start).
    pub critical: Option<(usize, f32)>,
    /// Pairs examined.
    pub checks: u64,
}

/// One full scan of aircraft `i` (with trial velocity `vel`) against all
/// others: the Task 2 half. Read-only; backends that cannot mutate shared
/// state mid-scan (the threaded MIMD implementation) drive the rotation
/// loop themselves around this function.
pub fn scan_for_conflicts(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for (p, trial) in aircraft.iter().enumerate() {
        sink.ialu(1);
        sink.branch(false);
        if p == i {
            continue;
        }
        // Every track thread walks the same shared aircraft array.
        sink.load_shared(Aircraft::RECORD_BYTES);
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, sink) {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                match earliest {
                    Some((_, best)) if best <= tmin => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// Rotate a velocity vector by `angle` radians (the Task 3 course change).
pub fn rotate_velocity(vel: (f32, f32), angle: f32, sink: &mut impl CostSink) -> (f32, f32) {
    sink.sfu(2); // sin + cos
    sink.fmul(4);
    sink.fadd(2);
    let (s, c) = angle.sin_cos();
    (vel.0 * c - vel.1 * s, vel.0 * s + vel.1 * c)
}

/// The fused Tasks 2+3 routine for track aircraft `i` (the paper's
/// `CheckCollisionPath` kernel body). Mutates `aircraft[i]` (trial path,
/// committed path, collision bookkeeping) and the collision flags of the
/// partner aircraft it conflicts with, exactly as Algorithm 2 describes.
pub fn check_collision_path(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();

    // Reset this aircraft's horizon bookkeeping (Algorithm 2 init).
    aircraft[i].time_till = cfg.critical_periods;
    aircraft[i].batx = aircraft[i].dx;
    aircraft[i].baty = aircraft[i].dy;
    sink.store(12);

    let rotations = cfg.rotation_sequence();
    let mut next_rotation = 0usize;
    let mut vel = (aircraft[i].dx, aircraft[i].dy);
    let mut chk = 0u32; // course corrections attempted (paper's `chk`)

    loop {
        let scan = scan_for_conflicts(aircraft, i, vel, cfg, sink);
        stats.pair_checks += scan.checks;

        let Some((partner, tmin)) = scan.critical else {
            break; // current (trial) path is clear of critical conflicts
        };
        stats.critical_conflicts += 1;

        // Mark both aircraft (Algorithm 2 line 9).
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        aircraft[partner].col = true;
        aircraft[partner].col_with = i as i32;
        aircraft[partner].time_till = aircraft[partner].time_till.min(tmin);
        sink.store(24);

        sink.branch(false);
        if next_rotation >= rotations.len() {
            // Angle sequence exhausted: keep the original path, leave the
            // conflict flagged for altitude-based resolution.
            stats.unresolved += 1;
            aircraft[i].batx = aircraft[i].dx;
            aircraft[i].baty = aircraft[i].dy;
            sink.store(8);
            return stats;
        }

        // Task 3: rotate the *original* path by the next angle in the
        // sequence and rescan from the top (the paper's loop reset).
        let base = (aircraft[i].dx, aircraft[i].dy);
        vel = rotate_velocity(base, rotations[next_rotation], sink);
        next_rotation += 1;
        chk += 1;
        stats.rotations += 1;
        aircraft[i].batx = vel.0;
        aircraft[i].baty = vel.1;
        sink.store(8);
    }

    sink.branch(false);
    if chk > 0 {
        // Commit the collision-free trial path and clear the flags
        // (Algorithm 2 line 12).
        aircraft[i].dx = vel.0;
        aircraft[i].dy = vel.1;
        aircraft[i].col = false;
        aircraft[i].col_with = NO_COLLISION;
        aircraft[i].time_till = cfg.critical_periods;
        sink.store(20);
        stats.resolved += 1;
    }
    stats
}

/// Detection without resolution (the split-kernel ablation's Task 2): one
/// scan with the committed velocity, flag critical conflicts, change
/// nothing else. Returns the stats of the scan.
pub fn detect_only(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();
    aircraft[i].time_till = cfg.critical_periods;
    sink.store(4);
    let vel = (aircraft[i].dx, aircraft[i].dy);
    let scan = scan_for_conflicts(aircraft, i, vel, cfg, sink);
    stats.pair_checks = scan.checks;
    if let Some((partner, tmin)) = scan.critical {
        stats.critical_conflicts = 1;
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        sink.store(12);
    }
    stats
}

/// Sequential reference driver: run the fused routine for every aircraft in
/// index order and fold the stats.
pub fn detect_resolve_all(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut total = DetectStats::default();
    for i in 0..aircraft.len() {
        let s = check_collision_path(aircraft, i, cfg, sink);
        total.pair_checks += s.pair_checks;
        total.critical_conflicts += s.critical_conflicts;
        total.rotations += s.rotations;
        total.resolved += s.resolved;
        total.unresolved += s.unresolved;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::NullSink;

    fn cfg() -> AtmConfig {
        AtmConfig::default()
    }

    /// Two aircraft, head-on at the same altitude, colliding within the
    /// critical window (gap 28 nm, closing 0.1 nm/period → conflict from
    /// t = 250 < 300, and far enough out that a ≤30° turn can clear it).
    fn head_on_pair() -> Vec<Aircraft> {
        vec![
            Aircraft::at(0.0, 0.0)
                .with_velocity(0.05, 0.0)
                .with_altitude(10_000.0),
            Aircraft::at(28.0, 0.0)
                .with_velocity(-0.05, 0.0)
                .with_altitude(10_000.0),
        ]
    }

    #[test]
    fn head_on_pair_is_detected_and_resolved() {
        let mut ac = head_on_pair();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.critical_conflicts >= 1);
        assert!(s.rotations >= 1);
        assert_eq!(s.resolved, 1);
        assert!(!ac[0].col, "flags cleared after committing a clear path");
        // The committed path really is conflict-free.
        let s2 = detect_only(&mut ac.clone(), 0, &cfg(), &mut NullSink);
        assert_eq!(s2.critical_conflicts, 0);
    }

    #[test]
    fn resolution_preserves_speed() {
        let mut ac = head_on_pair();
        let speed_before = ac[0].speed();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(
            (ac[0].speed() - speed_before).abs() < 1e-6,
            "rotation must not change speed"
        );
    }

    #[test]
    fn distant_pair_is_left_alone() {
        let mut ac = vec![
            Aircraft::at(-100.0, -100.0).with_velocity(0.01, 0.0),
            Aircraft::at(100.0, 100.0).with_velocity(-0.01, 0.0),
        ];
        let before = ac.clone();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
        assert_eq!(ac[0].dx, before[0].dx);
        assert!(!ac[0].col);
    }

    #[test]
    fn altitude_separated_pair_is_not_a_conflict() {
        let mut ac = head_on_pair();
        ac[1].alt = ac[0].alt + 2_000.0;
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0, "altitude gate must skip the pair");
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn non_critical_far_future_conflict_is_not_resolved() {
        // Conflict at t ≈ 1000 periods: inside the horizon, outside the
        // 300-period critical window → detected pairs are left to resolve
        // naturally.
        let mut ac = vec![
            Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0),
            Aircraft::at(100.0, 0.0).with_velocity(-0.05, 0.0),
        ];
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
    }

    #[test]
    fn partner_is_flagged_during_detection() {
        let mut ac = head_on_pair();
        // Use detect_only so the flags survive (the fused routine clears
        // its own after resolving).
        detect_only(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(ac[0].col);
        assert_eq!(ac[0].col_with, 1);
        assert!(ac[0].time_till < cfg().critical_periods);
    }

    #[test]
    fn fused_routine_flags_partner_while_resolving() {
        let mut ac = head_on_pair();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        // Aircraft 0 resolved itself; the partner keeps the conflict mark
        // until its own turn (matching the kernel's behaviour).
        assert!(ac[1].col);
        assert_eq!(ac[1].col_with, 0);
    }

    #[test]
    fn dense_crowd_can_be_unresolvable() {
        // Ring of aircraft all converging on the origin at the same
        // altitude: no 30° rotation escapes.
        let n = 24;
        let mut ac: Vec<Aircraft> = (0..n)
            .map(|k| {
                let ang = k as f32 * std::f32::consts::TAU / n as f32;
                let r = 5.0;
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(10_000.0)
            })
            .collect();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.unresolved == 1 || s.resolved == 1);
        if s.unresolved == 1 {
            // Original path kept, conflict flagged.
            assert!(ac[0].col);
            assert!((ac[0].dx + 0.05).abs() < 1e-6);
        }
    }

    #[test]
    fn rotations_escalate_through_the_sequence() {
        let mut ac = head_on_pair();
        let mut counter = sim_clock::OpCounter::new();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut counter);
        // Each rotation costs two SFU ops (sin+cos).
        assert_eq!(counter.count(sim_clock::OpClass::Sfu), 2 * s.rotations);
        assert!(s.rotations <= 12, "sequence is bounded at ±30°");
    }

    #[test]
    fn rotate_velocity_is_a_rotation() {
        let v = rotate_velocity((1.0, 0.0), std::f32::consts::FRAC_PI_2, &mut NullSink);
        assert!(v.0.abs() < 1e-6);
        assert!((v.1 - 1.0).abs() < 1e-6);
        let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
        assert!((mag - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detect_resolve_all_folds_stats() {
        let mut ac = head_on_pair();
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert!(s.pair_checks >= 2);
        // At least one of the pair had to act.
        assert!(s.rotations >= 1);
    }

    #[test]
    fn single_aircraft_has_nothing_to_check() {
        let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0)];
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0);
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut ac = head_on_pair();
            let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
            (s, ac)
        };
        assert_eq!(mk(), mk());
    }
}
