//! Tasks 2 and 3: collision detection and resolution (the paper's
//! Algorithm 2, the `CheckCollisionPath` kernel).
//!
//! Per track aircraft `i`:
//!
//! 1. reset `time_till` to the safe horizon and scan every other aircraft
//!    that is at the same altitude band *and* within critical reach
//!    (both gates evaluated unconditionally, predication-style) with
//!    Batcher's conflict window ([`crate::batcher`]);
//! 2. if a conflict starts inside the critical window, mark both aircraft
//!    (`col`, `col_with`, `time_till`) and **rotate** the track's trial
//!    velocity by the next angle in the ±5°…±30° sequence, then restart
//!    the scan against the new trial path (the paper's `t = 19; break`
//!    loop-reset idiom);
//! 3. when a scan completes without a critical conflict and course
//!    corrections were attempted (`chk > 0`), commit the trial velocity as
//!    the new path and clear the collision flags; if the angle sequence is
//!    exhausted, keep the original path and leave the aircraft flagged
//!    (the paper accepts that complete avoidance is not always possible
//!    and defers to altitude changes).
//!
//! The paper combines both tasks in a single kernel to avoid host↔device
//! round-trips; [`check_collision_path`] is that fused per-aircraft
//! routine, reused verbatim by every backend. The split-kernel variant the
//! fusion ablation compares against lives in [`detect_only`].

use crate::batcher::{conflict_window, same_altitude_band, within_critical_reach};
use crate::config::{AtmConfig, ScanMode};
use crate::shard::ShardedIndex;
use crate::types::{Aircraft, NO_COLLISION};
use sim_clock::{CostSink, NullSink};

/// Largest bucket index magnitude the banded index will use. Beyond this
/// the f64 rounding slack in `alt / width` is no longer provably below the
/// half-ulp margin of the f32 altitude gate, so [`AltitudeBands::build`]
/// falls back to a single catch-all bucket (still correct, no pruning).
/// Real configurations sit around |bucket| ≤ 40.
const MAX_BUCKET_MAGNITUDE: f64 = (1u64 << 24) as f64;

/// An altitude-band bucketed index over a fleet snapshot.
///
/// Bucket `b` holds the aircraft with `floor(alt / width) == b`, where
/// `width` is the vertical-separation threshold. Any pair passing the f32
/// altitude gate `|a.alt − b.alt| < width` is at most one bucket apart
/// (`|Δalt| < width` bounds the exact quotients within 1.0 of each other,
/// and the f64 division error is ≪ the gate's own f32 half-ulp margin under
/// [`MAX_BUCKET_MAGNITUDE`]), so a scan that visits buckets `b−1..=b+1` sees
/// every candidate the naive O(n²) scan would accept. Altitudes never change
/// during Tasks 2+3 — only velocities and collision flags do — so an index
/// built once per detect execution stays valid through every rotation
/// rescan of every aircraft.
///
/// This is purely a host-side wall-clock structure: callers book the skipped
/// pairs' operation mix in aggregate (see [`scan_for_conflicts_banded`]), so
/// every [`CostSink`] tallies exactly what the naive scan books.
#[derive(Clone, Debug)]
pub struct AltitudeBands {
    /// Band width in feet as f64 (0.0 marks the degenerate single-bucket
    /// fallback).
    width: f64,
    /// Bucket index of `buckets[0]`.
    min_bucket: i64,
    /// Aircraft indices grouped by altitude bucket, ascending bucket order.
    buckets: Vec<Vec<u32>>,
}

impl AltitudeBands {
    /// Bucket index of one altitude, or `None` when the assignment is not
    /// provably gate-consistent (non-finite altitude or huge quotient).
    fn bucket_for(alt: f32, width: f64) -> Option<i64> {
        let q = (alt as f64 / width).floor();
        if q.is_finite() && q.abs() <= MAX_BUCKET_MAGNITUDE {
            Some(q as i64)
        } else {
            None
        }
    }

    /// Build the index for a fleet under vertical separation
    /// `alt_separation_ft`. Degenerate parameters (non-positive or
    /// non-finite width, unbucketable altitudes, or a bucket span so wide
    /// the index would waste memory) yield a single catch-all bucket, which
    /// keeps every scan correct at naive cost.
    pub fn build(aircraft: &[Aircraft], alt_separation_ft: f32) -> AltitudeBands {
        let n = aircraft.len();
        let width = alt_separation_ft as f64;
        let fallback = || AltitudeBands {
            width: 0.0,
            min_bucket: 0,
            buckets: vec![(0..n as u32).collect()],
        };
        if n == 0 || !width.is_finite() || width <= 0.0 {
            return fallback();
        }
        let mut min_b = i64::MAX;
        let mut max_b = i64::MIN;
        for a in aircraft {
            match Self::bucket_for(a.alt, width) {
                Some(b) => {
                    min_b = min_b.min(b);
                    max_b = max_b.max(b);
                }
                None => return fallback(),
            }
        }
        let span = (max_b as i128 - min_b as i128) + 1;
        if span > (4 * n as i128).max(4_096) {
            return fallback();
        }
        let mut buckets = vec![Vec::new(); span as usize];
        for (idx, a) in aircraft.iter().enumerate() {
            let b = Self::bucket_for(a.alt, width).expect("bucketed above");
            buckets[(b - min_b) as usize].push(idx as u32);
        }
        AltitudeBands {
            width,
            min_bucket: min_b,
            buckets,
        }
    }

    /// Half-open range into `buckets` covering `bucket(alt) ± 1`.
    fn candidate_range(&self, alt: f32) -> (usize, usize) {
        if self.width <= 0.0 {
            return (0, self.buckets.len());
        }
        let len = self.buckets.len() as i64;
        let Some(b) = Self::bucket_for(alt, self.width) else {
            // Unbucketable query altitude: scan everything (correctness
            // over pruning; cannot happen for altitudes the index was
            // built from).
            return (0, self.buckets.len());
        };
        let lo = (b - 1 - self.min_bucket).clamp(0, len);
        let hi = (b + 2 - self.min_bucket).clamp(0, len);
        (lo as usize, hi.max(lo) as usize)
    }

    /// Aircraft indices that could pass the altitude gate against an
    /// aircraft at `alt` (a superset: callers re-check the real gate).
    pub fn candidates(&self, alt: f32) -> impl Iterator<Item = usize> + '_ {
        let (lo, hi) = self.candidate_range(alt);
        self.buckets[lo..hi]
            .iter()
            .flat_map(|b| b.iter().map(|&i| i as usize))
    }

    /// Number of buckets (1 for the degenerate fallback).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the index is the single catch-all bucket (no pruning).
    pub fn is_degenerate(&self) -> bool {
        self.width <= 0.0
    }

    /// Bucket index of one altitude under this index's width, or `None`
    /// when the index is degenerate or the altitude is unbucketable.
    pub fn bucket_of(&self, alt: f32) -> Option<i64> {
        if self.is_degenerate() {
            None
        } else {
            Self::bucket_for(alt, self.width)
        }
    }
}

/// A coarse uniform x/y grid over the airfield, composed with the altitude
/// bands: the [`ScanMode::Grid`] index.
///
/// Cell width is the critical-reach envelope
/// ([`AtmConfig::critical_reach_nm`]) padded by a relative 1e-6 — strictly
/// wider than any separation the range gate's inclusive `<=` compare can
/// accept, so a pair passing the gate sits at most one cell apart per axis
/// (the f64 floor-division error is ≪ the pad under
/// [`MAX_BUCKET_MAGNITUDE`], the same argument as [`AltitudeBands`]). A
/// scan that visits the track's cell ±1 on both axes therefore sees every
/// pair the naive scan's two gates could accept. An explicit
/// `cfg.grid_cell_nm` only ever *coarsens* the cells.
///
/// Positions, like altitudes, never change during Tasks 2+3, so one index
/// per detect execution stays valid through every rotation rescan. Purely a
/// host-side wall-clock structure: callers book skipped pairs in aggregate
/// (see [`scan_for_conflicts_grid`]).
///
/// Storage is CSR over `(spatial cell, altitude bucket)` slots with the
/// bucket dimension fastest-varying: the ±1-bucket range of one spatial
/// cell is a single contiguous `idx` slice found by two O(1) offset loads,
/// so a scan touches exactly the intersection of both dimensions with no
/// per-candidate filtering and no per-cell searching.
#[derive(Clone, Debug)]
pub struct ConflictGrid {
    /// The altitude dimension (candidates slice on bucket ±1).
    bands: AltitudeBands,
    /// Cell width in nm as f64 (0.0 marks the degenerate single cell).
    cell_nm: f64,
    /// Cell-coordinate origin of the first slot's spatial cell.
    min_cx: i64,
    min_cy: i64,
    /// Grid extent in spatial cells.
    cols: usize,
    rows: usize,
    /// Altitude-bucket span composed into the slots (1 when `bands` is
    /// degenerate) and the bucket index of slot offset 0.
    nb: usize,
    min_b: i64,
    /// CSR offsets: slot `(cy·cols + cx)·nb + b` holds aircraft of spatial
    /// cell `(cx, cy)` and altitude bucket `min_b + b`; len `slots + 1`.
    offsets: Vec<u32>,
    /// Aircraft indices grouped by slot, ascending index within a slot.
    idx: Vec<u32>,
}

impl ConflictGrid {
    /// Build the index for one detect execution. Degenerate inputs (empty
    /// fleet, non-finite reach or positions, a cell span so wide the grid
    /// would waste memory) fall back to one catch-all cell — correct at
    /// banded cost.
    pub fn build(aircraft: &[Aircraft], cfg: &AtmConfig) -> ConflictGrid {
        let bands = AltitudeBands::build(aircraft, cfg.alt_separation_ft);
        let n = aircraft.len();
        let (nb, min_b) = if bands.is_degenerate() {
            (1usize, 0i64)
        } else {
            (bands.bucket_count(), bands.min_bucket)
        };
        // The pad restores a strict inequality margin over the gate's
        // inclusive `<=` compare (and dwarfs the f64 division error).
        let cell = (cfg.critical_reach_nm() as f64 * 1.000_001).max(cfg.grid_cell_nm as f64);

        // Pick the spatial extent, or fall back to a single catch-all cell
        // (degenerate inputs, unbucketable positions, or a slot table so
        // large it would waste memory) — correct at banded cost either way,
        // since the bucket dimension survives the fallback.
        let mut spatial = None;
        if n > 0 && cell.is_finite() && cell > 0.0 {
            let (mut min_cx, mut max_cx) = (i64::MAX, i64::MIN);
            let (mut min_cy, mut max_cy) = (i64::MAX, i64::MIN);
            let mut bucketable = true;
            for a in aircraft {
                match (
                    AltitudeBands::bucket_for(a.x, cell),
                    AltitudeBands::bucket_for(a.y, cell),
                ) {
                    (Some(cx), Some(cy)) => {
                        min_cx = min_cx.min(cx);
                        max_cx = max_cx.max(cx);
                        min_cy = min_cy.min(cy);
                        max_cy = max_cy.max(cy);
                    }
                    _ => {
                        bucketable = false;
                        break;
                    }
                }
            }
            if bucketable {
                let cols = (max_cx as i128 - min_cx as i128) + 1;
                let rows = (max_cy as i128 - min_cy as i128) + 1;
                let cap = (4 * n as i128).max(4_096);
                if cols * rows <= cap && cols * rows * nb as i128 <= 2 * cap {
                    spatial = Some((cell, min_cx, min_cy, cols as usize, rows as usize));
                }
            }
        }
        let (cell_nm, min_cx, min_cy, cols, rows) = spatial.unwrap_or((0.0, 0, 0, 1, 1));

        // Counting-sort into (cell, bucket) slots, bucket fastest-varying;
        // iteration order keeps indices ascending within each slot.
        let slots = cols * rows * nb;
        let slot_of = |a: &Aircraft| -> usize {
            let spatial = if cell_nm > 0.0 {
                let cx = AltitudeBands::bucket_for(a.x, cell_nm).expect("bucketed above");
                let cy = AltitudeBands::bucket_for(a.y, cell_nm).expect("bucketed above");
                (cy - min_cy) as usize * cols + (cx - min_cx) as usize
            } else {
                0
            };
            let b = match bands.bucket_of(a.alt) {
                Some(b) => (b - min_b) as usize,
                None => 0, // degenerate bands: everyone shares slot 0
            };
            spatial * nb + b
        };
        let mut offsets = vec![0u32; slots + 1];
        for a in aircraft {
            offsets[slot_of(a) + 1] += 1;
        }
        for k in 1..=slots {
            offsets[k] += offsets[k - 1];
        }
        let mut cursor = offsets.clone();
        let mut idx = vec![0u32; n];
        for (i, a) in aircraft.iter().enumerate() {
            let s = slot_of(a);
            idx[cursor[s] as usize] = i as u32;
            cursor[s] += 1;
        }
        ConflictGrid {
            bands,
            cell_nm,
            min_cx,
            min_cy,
            cols,
            rows,
            nb,
            min_b,
            offsets,
            idx,
        }
    }

    /// Half-open cell-coordinate ranges covering `cell(v) ± 1` per axis.
    fn cell_ranges(&self, x: f32, y: f32) -> (usize, usize, usize, usize) {
        if self.cell_nm <= 0.0 {
            return (0, self.cols, 0, self.rows);
        }
        let clamp_axis = |c: Option<i64>, min: i64, len: usize| match c {
            Some(c) => {
                let lo = (c - 1 - min).clamp(0, len as i64);
                let hi = (c + 2 - min).clamp(0, len as i64);
                (lo as usize, hi.max(lo) as usize)
            }
            // Unbucketable query position: scan everything (cannot happen
            // for positions the grid was built from).
            None => (0, len),
        };
        let (x_lo, x_hi) = clamp_axis(
            AltitudeBands::bucket_for(x, self.cell_nm),
            self.min_cx,
            self.cols,
        );
        let (y_lo, y_hi) = clamp_axis(
            AltitudeBands::bucket_for(y, self.cell_nm),
            self.min_cy,
            self.rows,
        );
        (x_lo, x_hi, y_lo, y_hi)
    }

    /// Aircraft indices that could pass *both* scan gates against `track`:
    /// the 3×3 cell neighborhood intersected with altitude bucket ±1 (a
    /// superset — callers re-check the real f32 gates). Slots are CSR with
    /// the bucket dimension fastest-varying, so each spatial cell's
    /// ±1-bucket range is one contiguous `idx` slice found by two offset
    /// loads — the iteration count is the intersection's size, never the
    /// looser of the two dimensions alone.
    pub fn candidates<'g>(&'g self, track: &Aircraft) -> impl Iterator<Item = usize> + 'g {
        let (x_lo, x_hi, y_lo, y_hi) = self.cell_ranges(track.x, track.y);
        let (b_lo, b_hi) = match self.bands.bucket_of(track.alt) {
            Some(tb) => {
                let lo = (tb - 1 - self.min_b).clamp(0, self.nb as i64) as usize;
                let hi = (tb + 2 - self.min_b).clamp(0, self.nb as i64) as usize;
                (lo, hi.max(lo))
            }
            // Degenerate bands or unbucketable query altitude: all buckets.
            None => (0, self.nb),
        };
        (y_lo..y_hi)
            .flat_map(move |cy| (x_lo..x_hi).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| {
                let base = cell * self.nb;
                let lo = self.offsets[base + b_lo] as usize;
                let hi = self.offsets[base + b_hi] as usize;
                self.idx[lo..hi].iter().map(|&i| i as usize)
            })
    }

    /// Number of spatial cells (1 for the degenerate fallback).
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The composed altitude-band index.
    pub fn bands(&self) -> &AltitudeBands {
        &self.bands
    }
}

/// The per-execution candidate index selected by [`AtmConfig::scan`].
///
/// Backends build one with [`ScanIndex::for_config`] at the top of a detect
/// execution and thread it through [`check_collision_path_with`] /
/// [`detect_only_with`]; positions and altitudes never change during Tasks
/// 2+3, so the index stays valid across every rotation rescan of every
/// aircraft.
#[derive(Clone, Debug)]
pub enum ScanIndex {
    /// No index: the naive O(n²) scan (the seed path).
    Naive,
    /// Altitude-band index ([`ScanMode::Banded`]).
    Banded(AltitudeBands),
    /// Spatial grid composed with altitude bands ([`ScanMode::Grid`]).
    Grid(ConflictGrid),
    /// Geographic shards with boundary halos ([`AtmConfig::shards`] > 1);
    /// composes the shard partition with `cfg.scan` per shard.
    Sharded(ShardedIndex),
}

impl ScanIndex {
    /// Build the index `cfg.scan` selects for one detect execution. A shard
    /// grid ([`AtmConfig::shards`] > 1) wraps the selected scan mode in the
    /// sharded index, which builds the mode's inner index per shard.
    pub fn for_config(aircraft: &[Aircraft], cfg: &AtmConfig) -> ScanIndex {
        if cfg.shards > 1 {
            return ScanIndex::Sharded(ShardedIndex::build(aircraft, cfg));
        }
        match cfg.scan {
            ScanMode::Naive => ScanIndex::Naive,
            ScanMode::Banded => {
                ScanIndex::Banded(AltitudeBands::build(aircraft, cfg.alt_separation_ft))
            }
            ScanMode::Grid => ScanIndex::Grid(ConflictGrid::build(aircraft, cfg)),
        }
    }
}

/// Outcome counters of one Tasks 2+3 execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Pair windows evaluated (Batcher computations).
    pub pair_checks: u64,
    /// Critical conflicts encountered (before resolution).
    pub critical_conflicts: u64,
    /// Path rotations attempted.
    pub rotations: u64,
    /// Aircraft whose path was changed to a conflict-free trial.
    pub resolved: u64,
    /// Aircraft left with an unresolvable critical conflict.
    pub unresolved: u64,
}

impl DetectStats {
    /// Fold another aircraft's stats into this total.
    pub fn absorb(&mut self, s: &DetectStats) {
        self.pair_checks += s.pair_checks;
        self.critical_conflicts += s.critical_conflicts;
        self.rotations += s.rotations;
        self.resolved += s.resolved;
        self.unresolved += s.unresolved;
    }
}

/// Result of scanning one track aircraft against the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanResult {
    /// Earliest critical conflict: (partner index, window start).
    pub critical: Option<(usize, f32)>,
    /// Pairs examined.
    pub checks: u64,
}

/// One full scan of aircraft `i` (with trial velocity `vel`) against all
/// others: the Task 2 half. Each non-self pair passes through two
/// data-independent gates — altitude band and critical reach — and only
/// pairs passing both count as a check and evaluate their conflict window.
/// Read-only; backends that cannot mutate shared state mid-scan (the
/// threaded MIMD implementation) drive the rotation loop themselves around
/// this function.
pub fn scan_for_conflicts(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for (p, trial) in aircraft.iter().enumerate() {
        sink.ialu(1);
        sink.branch(false);
        if p == i {
            continue;
        }
        // Every track thread walks the same shared aircraft array.
        sink.load_shared(Aircraft::RECORD_BYTES);
        // Both gates evaluate unconditionally (predicated, lockstep-style —
        // the SIMD substrates execute both sides of a divergence anyway),
        // so every skipped pair books the same fixed mix regardless of
        // *which* gate rejected it; the fast paths rely on that to book
        // their skipped pairs in aggregate.
        let same_band = same_altitude_band(track, trial, cfg.alt_separation_ft, sink);
        let in_reach = within_critical_reach(track, trial, reach, sink);
        if !(same_band && in_reach) {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                match earliest {
                    Some((_, best)) if best <= tmin => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// Book the aggregate operation mix the naive scan accrues unconditionally
/// over a fleet of `n`: n iterations of `ialu(1); branch(false)` plus, for
/// the n−1 non-self pairs, one shared record read, the altitude gate's
/// `fadd(2); branch(false)` and the range gate's `fadd(4); branch(false)`.
/// All three sinks are purely accumulative, so totals — not call sequences
/// — determine modeled time (DESIGN.md §8).
fn book_unconditional_mix(n: u64, sink: &mut impl CostSink) {
    sink.ialu(n);
    sink.branches(3 * n - 2, false);
    sink.loads_shared(n - 1, Aircraft::RECORD_BYTES);
    sink.fadd(6 * (n - 1));
}

/// The banded fast path of [`scan_for_conflicts`]: visit only the aircraft
/// within ±1 altitude band of the track, which is every pair the naive scan
/// could accept (see [`AltitudeBands`]). The operation mix the naive scan
/// books for *every* pair — loop index work, the self check, the shared
/// record read and both gate compares — is booked up front in aggregate, so
/// the sink's totals (and therefore every backend's modeled time) are
/// bit-identical to the naive scan; only candidates that pass the real
/// gates book their conflict windows individually, exactly as the naive
/// scan does. Returns the same result and the same check count.
pub fn scan_for_conflicts_banded(
    aircraft: &[Aircraft],
    bands: &AltitudeBands,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    book_unconditional_mix(aircraft.len() as u64, sink);

    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for p in bands.candidates(track.alt) {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        // Re-check the real f32 gates (candidates are a superset); their
        // cost is already in the aggregate above, so book to a null sink.
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                // Bucket order is not index order, so pick the lexicographic
                // minimum over (tmin, p) explicitly — the same pair the
                // naive ascending-index scan settles on.
                match earliest {
                    Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// The grid fast path of [`scan_for_conflicts`]: visit only the aircraft in
/// the track's 3×3 cell neighborhood and ±1 altitude band, which is every
/// pair the naive scan's two gates could accept (see [`ConflictGrid`]).
/// Same aggregate-booking contract as [`scan_for_conflicts_banded`]: the
/// sink's totals, the result and the check count are bit-identical to the
/// naive scan's.
pub fn scan_for_conflicts_grid(
    aircraft: &[Aircraft],
    grid: &ConflictGrid,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    book_unconditional_mix(aircraft.len() as u64, sink);

    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for p in grid.candidates(track) {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        // Re-check the real f32 gates (candidates are a superset); their
        // cost is already in the aggregate above, so book to a null sink.
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                // Cell order is not index order, so pick the lexicographic
                // minimum over (tmin, p) explicitly — the same pair the
                // naive ascending-index scan settles on.
                match earliest {
                    Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// The sharded fast path of [`scan_for_conflicts`]: visit only the member
/// set of the track's owner shard (its owned aircraft plus the boundary
/// halo), pruned further by the shard's inner banded/grid index — a
/// superset of every pair the naive scan's gates could accept (see
/// [`ShardedIndex`]). Same aggregate-booking contract as
/// [`scan_for_conflicts_banded`]: the sink's totals, the result and the
/// check count are bit-identical to the naive scan's.
pub fn scan_for_conflicts_sharded(
    aircraft: &[Aircraft],
    sharded: &ShardedIndex,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    book_unconditional_mix(aircraft.len() as u64, sink);

    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for p in sharded.candidates_for(i, track) {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        // Re-check the real f32 gates (candidates are a superset); their
        // cost is already in the aggregate above, so book to a null sink.
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        if let Some((tmin, _tmax)) = conflict_window(
            track,
            vel,
            trial,
            cfg.separation_nm,
            cfg.horizon_periods,
            sink,
        ) {
            sink.branch(true);
            if tmin < cfg.critical_periods {
                // Member order is not index order under the inner grid, so
                // pick the lexicographic minimum over (tmin, p) explicitly —
                // the same pair the naive ascending-index scan settles on.
                match earliest {
                    Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                    _ => earliest = Some((p, tmin)),
                }
            }
        }
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// Dispatch between the naive scan and the fast paths. Backends hold a
/// [`ScanIndex`] per detect execution and call this from their
/// per-aircraft loops.
#[inline]
pub fn scan_for_conflicts_with(
    aircraft: &[Aircraft],
    index: &ScanIndex,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    match index {
        ScanIndex::Naive => scan_for_conflicts(aircraft, i, vel, cfg, sink),
        ScanIndex::Banded(b) => scan_for_conflicts_banded(aircraft, b, i, vel, cfg, sink),
        ScanIndex::Grid(g) => scan_for_conflicts_grid(aircraft, g, i, vel, cfg, sink),
        ScanIndex::Sharded(s) => scan_for_conflicts_sharded(aircraft, s, i, vel, cfg, sink),
    }
}

/// Rotate a velocity vector by `angle` radians (the Task 3 course change).
pub fn rotate_velocity(vel: (f32, f32), angle: f32, sink: &mut impl CostSink) -> (f32, f32) {
    sink.sfu(2); // sin + cos
    sink.fmul(4);
    sink.fadd(2);
    let (s, c) = angle.sin_cos();
    (vel.0 * c - vel.1 * s, vel.0 * s + vel.1 * c)
}

/// The fused Tasks 2+3 routine for track aircraft `i` (the paper's
/// `CheckCollisionPath` kernel body). Mutates `aircraft[i]` (trial path,
/// committed path, collision bookkeeping) and the collision flags of the
/// partner aircraft it conflicts with, exactly as Algorithm 2 describes.
pub fn check_collision_path(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    check_collision_path_with(aircraft, &ScanIndex::Naive, i, cfg, sink)
}

/// [`check_collision_path`] over a prebuilt [`ScanIndex`]: identical
/// mutations, stats and booked cost totals, fewer candidate visits. The
/// index stays valid across the internal rotation rescans (positions and
/// altitudes do not change) and across all aircraft of one detect
/// execution.
pub fn check_collision_path_with(
    aircraft: &mut [Aircraft],
    index: &ScanIndex,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();

    // Reset this aircraft's horizon bookkeeping (Algorithm 2 init).
    aircraft[i].time_till = cfg.critical_periods;
    aircraft[i].batx = aircraft[i].dx;
    aircraft[i].baty = aircraft[i].dy;
    sink.store(12);

    let rotations = cfg.rotation_sequence();
    let mut next_rotation = 0usize;
    let mut vel = (aircraft[i].dx, aircraft[i].dy);
    let mut chk = 0u32; // course corrections attempted (paper's `chk`)

    loop {
        let scan = scan_for_conflicts_with(aircraft, index, i, vel, cfg, sink);
        stats.pair_checks += scan.checks;

        let Some((partner, tmin)) = scan.critical else {
            break; // current (trial) path is clear of critical conflicts
        };
        stats.critical_conflicts += 1;

        // Mark both aircraft (Algorithm 2 line 9).
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        aircraft[partner].col = true;
        aircraft[partner].col_with = i as i32;
        aircraft[partner].time_till = aircraft[partner].time_till.min(tmin);
        sink.store(24);

        sink.branch(false);
        if next_rotation >= rotations.len() {
            // Angle sequence exhausted: keep the original path, leave the
            // conflict flagged for altitude-based resolution.
            stats.unresolved += 1;
            aircraft[i].batx = aircraft[i].dx;
            aircraft[i].baty = aircraft[i].dy;
            sink.store(8);
            return stats;
        }

        // Task 3: rotate the *original* path by the next angle in the
        // sequence and rescan from the top (the paper's loop reset).
        let base = (aircraft[i].dx, aircraft[i].dy);
        vel = rotate_velocity(base, rotations[next_rotation], sink);
        next_rotation += 1;
        chk += 1;
        stats.rotations += 1;
        aircraft[i].batx = vel.0;
        aircraft[i].baty = vel.1;
        sink.store(8);
    }

    sink.branch(false);
    if chk > 0 {
        // Commit the collision-free trial path and clear the flags
        // (Algorithm 2 line 12).
        aircraft[i].dx = vel.0;
        aircraft[i].dy = vel.1;
        aircraft[i].col = false;
        aircraft[i].col_with = NO_COLLISION;
        aircraft[i].time_till = cfg.critical_periods;
        sink.store(20);
        stats.resolved += 1;
    }
    stats
}

/// Detection without resolution (the split-kernel ablation's Task 2): one
/// scan with the committed velocity, flag critical conflicts, change
/// nothing else. Returns the stats of the scan.
pub fn detect_only(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    detect_only_with(aircraft, &ScanIndex::Naive, i, cfg, sink)
}

/// [`detect_only`] over a prebuilt [`ScanIndex`] (same contract as
/// [`check_collision_path_with`]).
pub fn detect_only_with(
    aircraft: &mut [Aircraft],
    index: &ScanIndex,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();
    aircraft[i].time_till = cfg.critical_periods;
    sink.store(4);
    let vel = (aircraft[i].dx, aircraft[i].dy);
    let scan = scan_for_conflicts_with(aircraft, index, i, vel, cfg, sink);
    stats.pair_checks = scan.checks;
    if let Some((partner, tmin)) = scan.critical {
        stats.critical_conflicts = 1;
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        sink.store(12);
    }
    stats
}

/// Sequential reference driver: run the fused routine for every aircraft in
/// index order and fold the stats. Honors [`AtmConfig::scan`]: one
/// [`ScanIndex`] is built up front and reused for every aircraft (positions
/// and altitudes never change during Tasks 2+3).
pub fn detect_resolve_all(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let index = ScanIndex::for_config(aircraft, cfg);
    let mut total = DetectStats::default();
    for i in 0..aircraft.len() {
        total.absorb(&check_collision_path_with(aircraft, &index, i, cfg, sink));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::NullSink;

    fn cfg() -> AtmConfig {
        AtmConfig::default()
    }

    /// Two aircraft, head-on at the same altitude, colliding within the
    /// critical window (gap 28 nm, closing 0.1 nm/period → conflict from
    /// t = 250 < 300, and far enough out that a ≤30° turn can clear it).
    fn head_on_pair() -> Vec<Aircraft> {
        vec![
            Aircraft::at(0.0, 0.0)
                .with_velocity(0.05, 0.0)
                .with_altitude(10_000.0),
            Aircraft::at(28.0, 0.0)
                .with_velocity(-0.05, 0.0)
                .with_altitude(10_000.0),
        ]
    }

    #[test]
    fn head_on_pair_is_detected_and_resolved() {
        let mut ac = head_on_pair();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.critical_conflicts >= 1);
        assert!(s.rotations >= 1);
        assert_eq!(s.resolved, 1);
        assert!(!ac[0].col, "flags cleared after committing a clear path");
        // The committed path really is conflict-free.
        let s2 = detect_only(&mut ac.clone(), 0, &cfg(), &mut NullSink);
        assert_eq!(s2.critical_conflicts, 0);
    }

    #[test]
    fn resolution_preserves_speed() {
        let mut ac = head_on_pair();
        let speed_before = ac[0].speed();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(
            (ac[0].speed() - speed_before).abs() < 1e-6,
            "rotation must not change speed"
        );
    }

    #[test]
    fn distant_pair_is_left_alone() {
        let mut ac = vec![
            Aircraft::at(-100.0, -100.0).with_velocity(0.01, 0.0),
            Aircraft::at(100.0, 100.0).with_velocity(-0.01, 0.0),
        ];
        let before = ac.clone();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
        assert_eq!(ac[0].dx, before[0].dx);
        assert!(!ac[0].col);
    }

    #[test]
    fn altitude_separated_pair_is_not_a_conflict() {
        let mut ac = head_on_pair();
        ac[1].alt = ac[0].alt + 2_000.0;
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0, "altitude gate must skip the pair");
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn non_critical_far_future_conflict_is_not_resolved() {
        // Conflict at t ≈ 1000 periods: inside the horizon, outside the
        // 300-period critical window (and outside critical reach, so the
        // range gate already excludes it) → the pair is left to resolve
        // naturally.
        let mut ac = vec![
            Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0),
            Aircraft::at(100.0, 0.0).with_velocity(-0.05, 0.0),
        ];
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert_eq!(s.critical_conflicts, 0);
        assert_eq!(s.rotations, 0);
    }

    #[test]
    fn partner_is_flagged_during_detection() {
        let mut ac = head_on_pair();
        // Use detect_only so the flags survive (the fused routine clears
        // its own after resolving).
        detect_only(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(ac[0].col);
        assert_eq!(ac[0].col_with, 1);
        assert!(ac[0].time_till < cfg().critical_periods);
    }

    #[test]
    fn fused_routine_flags_partner_while_resolving() {
        let mut ac = head_on_pair();
        check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        // Aircraft 0 resolved itself; the partner keeps the conflict mark
        // until its own turn (matching the kernel's behaviour).
        assert!(ac[1].col);
        assert_eq!(ac[1].col_with, 0);
    }

    #[test]
    fn dense_crowd_can_be_unresolvable() {
        // Ring of aircraft all converging on the origin at the same
        // altitude: no 30° rotation escapes.
        let n = 24;
        let mut ac: Vec<Aircraft> = (0..n)
            .map(|k| {
                let ang = k as f32 * std::f32::consts::TAU / n as f32;
                let r = 5.0;
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(10_000.0)
            })
            .collect();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
        assert!(s.unresolved == 1 || s.resolved == 1);
        if s.unresolved == 1 {
            // Original path kept, conflict flagged.
            assert!(ac[0].col);
            assert!((ac[0].dx + 0.05).abs() < 1e-6);
        }
    }

    #[test]
    fn rotations_escalate_through_the_sequence() {
        let mut ac = head_on_pair();
        let mut counter = sim_clock::OpCounter::new();
        let s = check_collision_path(&mut ac, 0, &cfg(), &mut counter);
        // Each rotation costs two SFU ops (sin+cos).
        assert_eq!(counter.count(sim_clock::OpClass::Sfu), 2 * s.rotations);
        assert!(s.rotations <= 12, "sequence is bounded at ±30°");
    }

    #[test]
    fn rotate_velocity_is_a_rotation() {
        let v = rotate_velocity((1.0, 0.0), std::f32::consts::FRAC_PI_2, &mut NullSink);
        assert!(v.0.abs() < 1e-6);
        assert!((v.1 - 1.0).abs() < 1e-6);
        let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
        assert!((mag - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detect_resolve_all_folds_stats() {
        let mut ac = head_on_pair();
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert!(s.pair_checks >= 2);
        // At least one of the pair had to act.
        assert!(s.rotations >= 1);
    }

    #[test]
    fn single_aircraft_has_nothing_to_check() {
        let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0)];
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        assert_eq!(s.pair_checks, 0);
        assert_eq!(s.critical_conflicts, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut ac = head_on_pair();
            let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
            (s, ac)
        };
        assert_eq!(mk(), mk());
    }

    /// A small deterministic fleet spread over several altitude bands with
    /// real conflicts in it.
    fn banded_fleet() -> Vec<Aircraft> {
        let mut ac = Vec::new();
        for k in 0..40u32 {
            let ang = k as f32 * 0.7;
            let alt = 5_000.0 + (k % 7) as f32 * 900.0; // straddles bands
            ac.push(
                Aircraft::at(30.0 * ang.cos(), 30.0 * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(alt),
            );
        }
        ac
    }

    #[test]
    fn banded_scan_matches_naive_scan_exactly() {
        let ac = banded_fleet();
        let bands = AltitudeBands::build(&ac, cfg().alt_separation_ft);
        for i in 0..ac.len() {
            let vel = (ac[i].dx, ac[i].dy);
            let mut cn = sim_clock::OpCounter::new();
            let mut cb = sim_clock::OpCounter::new();
            let rn = scan_for_conflicts(&ac, i, vel, &cfg(), &mut cn);
            let rb = scan_for_conflicts_banded(&ac, &bands, i, vel, &cfg(), &mut cb);
            assert_eq!(rn, rb, "scan result must match for aircraft {i}");
            assert_eq!(cn, cb, "booked cost totals must match for aircraft {i}");
        }
    }

    #[test]
    fn grid_scan_matches_naive_scan_exactly() {
        let ac = banded_fleet();
        let grid = ConflictGrid::build(&ac, &cfg());
        for i in 0..ac.len() {
            let vel = (ac[i].dx, ac[i].dy);
            let mut cn = sim_clock::OpCounter::new();
            let mut cg = sim_clock::OpCounter::new();
            let rn = scan_for_conflicts(&ac, i, vel, &cfg(), &mut cn);
            let rg = scan_for_conflicts_grid(&ac, &grid, i, vel, &cfg(), &mut cg);
            assert_eq!(rn, rg, "scan result must match for aircraft {i}");
            assert_eq!(cn, cg, "booked cost totals must match for aircraft {i}");
        }
    }

    #[test]
    fn fast_path_detect_resolve_matches_naive_end_to_end() {
        let run = |mode: ScanMode| {
            let mut ac = banded_fleet();
            let mut ops = sim_clock::OpCounter::new();
            let c = AtmConfig {
                scan: mode,
                ..cfg()
            };
            let s = detect_resolve_all(&mut ac, &c, &mut ops);
            (ac, s, ops)
        };
        let naive = run(ScanMode::Naive);
        for mode in [ScanMode::Banded, ScanMode::Grid] {
            let fast = run(mode);
            assert_eq!(
                naive.0, fast.0,
                "{mode:?}: mutated fleets must be identical"
            );
            assert_eq!(naive.1, fast.1, "{mode:?}: DetectStats must be identical");
            assert_eq!(naive.2, fast.2, "{mode:?}: cost totals must be identical");
        }
        assert!(
            naive.1.critical_conflicts > 0,
            "fleet should have conflicts"
        );
    }

    #[test]
    fn bands_prune_candidates_but_cover_all_gate_passers() {
        let ac = banded_fleet();
        let sep = cfg().alt_separation_ft;
        let bands = AltitudeBands::build(&ac, sep);
        assert!(bands.bucket_count() > 1, "fleet spans several bands");
        for i in 0..ac.len() {
            let cands: Vec<usize> = bands.candidates(ac[i].alt).collect();
            assert!(cands.len() < ac.len(), "banding should prune aircraft {i}");
            for p in 0..ac.len() {
                if p != i && (ac[i].alt - ac[p].alt).abs() < sep {
                    assert!(cands.contains(&p), "gate-passing pair ({i},{p}) missed");
                }
            }
        }
    }

    #[test]
    fn degenerate_band_width_falls_back_to_one_bucket() {
        let ac = banded_fleet();
        for width in [0.0_f32, -5.0, f32::NAN, f32::INFINITY] {
            let bands = AltitudeBands::build(&ac, width);
            assert_eq!(bands.bucket_count(), 1);
            assert_eq!(bands.candidates(ac[0].alt).count(), ac.len());
        }
        assert_eq!(AltitudeBands::build(&[], 1_000.0).bucket_count(), 1);
    }

    #[test]
    fn detect_only_fast_paths_match_naive() {
        let base = banded_fleet();
        let indices = [
            ScanIndex::Banded(AltitudeBands::build(&base, cfg().alt_separation_ft)),
            ScanIndex::Grid(ConflictGrid::build(&base, &cfg())),
        ];
        for index in &indices {
            for i in 0..base.len() {
                let mut an = base.clone();
                let mut af = base.clone();
                let mut cn = sim_clock::OpCounter::new();
                let mut cf = sim_clock::OpCounter::new();
                let sn = detect_only(&mut an, i, &cfg(), &mut cn);
                let sf = detect_only_with(&mut af, index, i, &cfg(), &mut cf);
                assert_eq!(sn, sf);
                assert_eq!(an, af);
                assert_eq!(cn, cf);
            }
        }
    }

    /// A fleet wide enough to span several grid cells (the banded fleet
    /// sits at radius 30 nm, inside one ~56 nm cell of its neighbors).
    fn spread_fleet() -> Vec<Aircraft> {
        let mut ac = Vec::new();
        for k in 0..60u32 {
            let ang = k as f32 * 0.47;
            let r = 20.0 + (k % 9) as f32 * 12.0; // radii 20..116 nm
            let alt = 5_000.0 + (k % 5) as f32 * 700.0;
            ac.push(
                Aircraft::at(r * ang.cos(), r * ang.sin())
                    .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                    .with_altitude(alt),
            );
        }
        ac
    }

    #[test]
    fn grid_prunes_candidates_but_covers_all_gate_passers() {
        let ac = spread_fleet();
        let c = cfg();
        let grid = ConflictGrid::build(&ac, &c);
        assert!(grid.cell_count() > 1, "fleet spans several cells");
        let reach = c.critical_reach_nm();
        let mut pruned_somewhere = false;
        for i in 0..ac.len() {
            let cands: Vec<usize> = grid.candidates(&ac[i]).collect();
            pruned_somewhere |= cands.len() < ac.len();
            for p in 0..ac.len() {
                let both_gates = (ac[i].alt - ac[p].alt).abs() < c.alt_separation_ft
                    && (ac[i].x - ac[p].x).abs() <= reach
                    && (ac[i].y - ac[p].y).abs() <= reach;
                if p != i && both_gates {
                    assert!(cands.contains(&p), "gate-passing pair ({i},{p}) missed");
                }
            }
        }
        assert!(pruned_somewhere, "grid should prune at least one scan");
    }

    #[test]
    fn grid_detect_resolve_matches_naive_on_a_spread_fleet() {
        let run = |mode: ScanMode| {
            let mut ac = spread_fleet();
            let mut ops = sim_clock::OpCounter::new();
            let c = AtmConfig {
                scan: mode,
                ..cfg()
            };
            let s = detect_resolve_all(&mut ac, &c, &mut ops);
            (ac, s, ops)
        };
        let naive = run(ScanMode::Naive);
        let grid = run(ScanMode::Grid);
        assert_eq!(naive, grid);
    }

    #[test]
    fn degenerate_grid_falls_back_to_one_cell() {
        let ac = spread_fleet();
        // Non-finite reach (degenerate separation) → one catch-all cell.
        let c = AtmConfig {
            separation_nm: f32::NAN,
            ..cfg()
        };
        let grid = ConflictGrid::build(&ac, &c);
        assert_eq!(grid.cell_count(), 1);
        // Candidates still altitude-filtered through the composed bands.
        assert!(grid.candidates(&ac[0]).count() <= ac.len());
        // Non-finite positions → unbucketable → one catch-all cell.
        let mut bad = ac.clone();
        bad[3].x = f32::NAN;
        let grid = ConflictGrid::build(&bad, &cfg());
        assert_eq!(grid.cell_count(), 1);
        assert_eq!(ConflictGrid::build(&[], &cfg()).cell_count(), 1);
    }

    #[test]
    fn explicit_cell_size_only_coarsens_the_grid() {
        let ac = spread_fleet();
        let auto = ConflictGrid::build(&ac, &cfg());
        // A finer request than the envelope is clamped up to it.
        let fine = ConflictGrid::build(
            &ac,
            &AtmConfig {
                grid_cell_nm: 1.0,
                ..cfg()
            },
        );
        assert_eq!(fine.cell_count(), auto.cell_count());
        // A coarser request is honored and still covers every pair.
        let coarse_cfg = AtmConfig {
            grid_cell_nm: 200.0,
            scan: ScanMode::Grid,
            ..cfg()
        };
        let coarse = ConflictGrid::build(&ac, &coarse_cfg);
        assert!(coarse.cell_count() <= auto.cell_count());
        let mut a1 = ac.clone();
        let mut a2 = ac.clone();
        let s1 = detect_resolve_all(&mut a1, &cfg(), &mut NullSink);
        let s2 = detect_resolve_all(&mut a2, &coarse_cfg, &mut NullSink);
        assert_eq!(s1, s2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn scan_index_follows_the_config() {
        let ac = banded_fleet();
        let for_mode = |m| ScanIndex::for_config(&ac, &AtmConfig { scan: m, ..cfg() });
        assert!(matches!(for_mode(ScanMode::Naive), ScanIndex::Naive));
        assert!(matches!(for_mode(ScanMode::Banded), ScanIndex::Banded(_)));
        assert!(matches!(for_mode(ScanMode::Grid), ScanIndex::Grid(_)));
        let sharded = ScanIndex::for_config(&ac, &AtmConfig { shards: 4, ..cfg() });
        assert!(matches!(sharded, ScanIndex::Sharded(_)));
    }

    #[test]
    fn sharded_scan_matches_naive_scan_exactly() {
        for fleet in [banded_fleet(), spread_fleet()] {
            for scan in [ScanMode::Naive, ScanMode::Banded, ScanMode::Grid] {
                let c = AtmConfig {
                    shards: 4,
                    scan,
                    ..cfg()
                };
                let sharded = crate::shard::ShardedIndex::build(&fleet, &c);
                for i in 0..fleet.len() {
                    let vel = (fleet[i].dx, fleet[i].dy);
                    let mut cn = sim_clock::OpCounter::new();
                    let mut cs = sim_clock::OpCounter::new();
                    let rn = scan_for_conflicts(&fleet, i, vel, &c, &mut cn);
                    let rs = scan_for_conflicts_sharded(&fleet, &sharded, i, vel, &c, &mut cs);
                    assert_eq!(rn, rs, "{scan:?}: scan result must match for aircraft {i}");
                    assert_eq!(cn, cs, "{scan:?}: cost totals must match for aircraft {i}");
                }
            }
        }
    }

    #[test]
    fn sharded_detect_resolve_matches_naive_end_to_end() {
        let run = |shards: usize, mode: ScanMode| {
            let mut ac = banded_fleet();
            let mut ops = sim_clock::OpCounter::new();
            let c = AtmConfig {
                shards,
                scan: mode,
                ..cfg()
            };
            let s = detect_resolve_all(&mut ac, &c, &mut ops);
            (ac, s, ops)
        };
        let naive = run(1, ScanMode::Naive);
        for shards in [2usize, 4] {
            for mode in [ScanMode::Naive, ScanMode::Banded, ScanMode::Grid] {
                let sharded = run(shards, mode);
                assert_eq!(
                    naive.0, sharded.0,
                    "shards={shards} {mode:?}: mutated fleets must be identical"
                );
                assert_eq!(
                    naive.1, sharded.1,
                    "shards={shards} {mode:?}: DetectStats must be identical"
                );
                assert_eq!(
                    naive.2, sharded.2,
                    "shards={shards} {mode:?}: cost totals must be identical"
                );
            }
        }
        assert!(naive.1.critical_conflicts > 0);
    }
}
