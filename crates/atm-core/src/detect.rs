//! Tasks 2 and 3: collision detection and resolution (the paper's
//! Algorithm 2, the `CheckCollisionPath` kernel).
//!
//! Per track aircraft `i`:
//!
//! 1. reset `time_till` to the safe horizon and scan every other aircraft
//!    that is at the same altitude band *and* within critical reach
//!    (both gates evaluated unconditionally, predication-style) with
//!    Batcher's conflict window ([`crate::batcher`]);
//! 2. if a conflict starts inside the critical window, mark both aircraft
//!    (`col`, `col_with`, `time_till`) and **rotate** the track's trial
//!    velocity by the next angle in the ±5°…±30° sequence, then restart
//!    the scan against the new trial path (the paper's `t = 19; break`
//!    loop-reset idiom);
//! 3. when a scan completes without a critical conflict and course
//!    corrections were attempted (`chk > 0`), commit the trial velocity as
//!    the new path and clear the collision flags; if the angle sequence is
//!    exhausted, keep the original path and leave the aircraft flagged
//!    (the paper accepts that complete avoidance is not always possible
//!    and defers to altitude changes).
//!
//! The paper combines both tasks in a single kernel to avoid host↔device
//! round-trips; [`check_collision_path`] is that fused per-aircraft
//! routine, reused verbatim by every backend. The split-kernel variant the
//! fusion ablation compares against lives in [`detect_only`].
//!
//! The module is organized as a **CandidateSource pipeline** (DESIGN.md
//! §10): [`index`] owns *which* pairs a scan visits (the [`ScanIndex`]
//! enumerators — naive, banded, grid, sharded), [`kernel`] owns *what
//! happens* to every visited pair (the single [`scan_pairs`] kernel: gate
//! checks, cost booking, earliest-conflict selection), and [`stats`] owns
//! the outcome counters. Enumeration is a wall-clock choice only — every
//! source produces bit-identical results, stats and booked cost totals.

mod incremental;
mod index;
mod kernel;
mod soa;
mod stats;
#[cfg(test)]
mod tests;

pub use incremental::{IncrementalEngine, IncrementalGrid, ScanOps, TeeSink};
pub use index::{AltitudeBands, ConflictGrid, ScanIndex};
pub use kernel::{
    check_collision_path, check_collision_path_scanned, check_collision_path_with, detect_only,
    detect_only_with, detect_resolve_all, detect_resolve_indexed, rotate_velocity,
    scan_candidate_list, scan_candidate_list_booked, scan_member_list_booked, scan_pair_range,
    scan_pairs,
};
pub use soa::SoaFleet;
pub use stats::{DetectStats, ScanActivity, ScanResult};
