//! Incremental dirty-cell conflict scanning ([`ScanMode::Incremental`]).
//!
//! Every other candidate source rebuilds its pruning structure from scratch
//! at the top of each detect execution and re-scans every aircraft. Between
//! consecutive radar cycles only a fraction of the fleet actually crosses a
//! grid cell or changes its scan-relevant state, so this module keeps one
//! grid *alive* across rescans:
//!
//! * [`IncrementalGrid`] persists per-aircraft cell assignments and moves
//!   aircraft between slots as they drift, marking the slots they leave and
//!   enter **dirty** under a monotone clock. Cells are sized from the
//!   *measured* per-rescan fleet envelope (the min/max x/y/altitude
//!   observed during the update pass) — the same derivation
//!   [`ConflictGrid::build`] performs per execution — with the coarsen-only
//!   `grid_cell_nm` knob still honored; when the measured geometry changes
//!   (envelope drift, fleet growth, collapse) the grid rebuilds in place
//!   and every slot goes dirty.
//! * [`IncrementalEngine`] adds a **clean-pair replay cache** on top: for
//!   each aircraft whose first scan of a rescan came back clear, it stores
//!   the scan's check count and recorded cost-booking totals
//!   ([`ScanOps`]). On a later rescan the cached result may be *replayed* —
//!   the cascade's mutations re-applied and the recorded totals re-booked —
//!   iff every slot in the aircraft's current 3×3-cell × ±1-bucket
//!   neighborhood has stayed clean since the entry was stored.
//!
//! # Why replay is byte-identical (DESIGN.md §12)
//!
//! The scan kernel's contract makes this sound: results are the
//! lexicographic minimum over gate-passers (order-free), `checks` counts
//! gate-passers only, and every pruning source books the identical
//! aggregate mix plus per-gate-passer window costs (DESIGN.md §8, §10).
//! An aircraft's first scan therefore depends only on (a) its own scan key
//! — position, altitude, velocity — and (b) the scan keys of the aircraft
//! inside its cell neighborhood (everything outside fails the gates and
//! contributes only the n-dependent aggregate mix). Any change to either
//! dirties a neighborhood slot: the update pass marks the slots an aircraft
//! leaves *and* enters whenever its key bits change, and mid-execution
//! velocity commits bump the clock and mark the committer's slot. A cached
//! clear scan whose neighborhood is clean since it was stored is thus
//! bit-for-bit the scan a full rebuild would produce, and a clear first
//! scan is exactly the cascade's no-op path (reset, scan, no commit), so
//! replaying `reset stores → recorded scan totals → exit branch` books and
//! mutates precisely what the live path would.

use crate::config::AtmConfig;
use crate::detect::index::AltitudeBands;
use crate::detect::kernel::{check_collision_path_scanned, scan_candidate_list_booked};
use crate::detect::stats::{DetectStats, ScanActivity, ScanResult};
use crate::shard::ShardedIncremental;
use crate::types::Aircraft;
use sim_clock::{CostSink, NullSink, OpClass, ALL_OP_CLASSES, OP_CLASS_COUNT};

/// Recorded cost-booking totals of one scan: a [`CostSink`] that tallies
/// the aggregate a scan books so the identical totals can be re-booked
/// later without re-running the scan. Sinks are purely accumulative —
/// totals, not call sequences, determine modeled time (DESIGN.md §8) — so
/// replaying per-class totals is exact.
///
/// The scan path provably books only op-classes, branches and
/// group-uniform record reads of one fixed width; a recording that sees
/// anything else (raw loads/stores, mixed shared-read widths) flags itself
/// [`ScanOps::irregular`] and is never cached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanOps {
    /// Per-class totals from `op()` calls (branch() / branches() are kept
    /// separate to preserve their divergence hints).
    ops: [u64; OP_CLASS_COUNT],
    /// Branches booked with `diverged == false`.
    branches_uniform: u64,
    /// Branches booked with `diverged == true`.
    branches_divergent: u64,
    /// Group-uniform shared reads (requests, not bytes).
    shared_loads: u64,
    /// Uniform width of every shared read (valid while `shared_loads > 0`).
    shared_load_bytes: u64,
    /// The recording saw a booking shape replay cannot reproduce.
    irregular: bool,
}

impl ScanOps {
    /// Whether the recording saw a booking replay cannot reproduce.
    pub fn irregular(&self) -> bool {
        self.irregular
    }

    fn note_shared(&mut self, count: u64, bytes_each: u64) {
        if count == 0 {
            return;
        }
        if self.shared_loads == 0 {
            self.shared_load_bytes = bytes_each;
        } else if self.shared_load_bytes != bytes_each {
            self.irregular = true;
        }
        self.shared_loads += count;
    }

    /// Re-book the recorded totals into `sink`. Tallies exactly what the
    /// recorded calls did on any contract-conforming sink.
    pub fn replay(&self, sink: &mut impl CostSink) {
        for (class, &count) in ALL_OP_CLASSES.iter().zip(self.ops.iter()) {
            if count > 0 {
                sink.op(*class, count);
            }
        }
        if self.branches_uniform > 0 {
            sink.branches(self.branches_uniform, false);
        }
        if self.branches_divergent > 0 {
            sink.branches(self.branches_divergent, true);
        }
        if self.shared_loads > 0 {
            sink.loads_shared(self.shared_loads, self.shared_load_bytes);
        }
    }
}

impl CostSink for ScanOps {
    fn op(&mut self, class: OpClass, count: u64) {
        self.ops[class as usize] += count;
    }
    fn load(&mut self, _bytes: u64) {
        self.irregular = true;
    }
    fn load_shared(&mut self, bytes: u64) {
        self.note_shared(1, bytes);
    }
    fn store(&mut self, _bytes: u64) {
        self.irregular = true;
    }
    fn branch(&mut self, diverged: bool) {
        if diverged {
            self.branches_divergent += 1;
        } else {
            self.branches_uniform += 1;
        }
    }
    fn branches(&mut self, count: u64, diverged: bool) {
        if diverged {
            self.branches_divergent += count;
        } else {
            self.branches_uniform += count;
        }
    }
    fn loads_shared(&mut self, count: u64, bytes_each: u64) {
        self.note_shared(count, bytes_each);
    }
}

/// A sink that forwards every booking to a real sink *and* a [`ScanOps`]
/// recorder: how the engine's live first scans capture their totals without
/// perturbing what the real sink tallies.
pub struct TeeSink<'a, S: CostSink> {
    sink: &'a mut S,
    rec: &'a mut ScanOps,
}

impl<'a, S: CostSink> TeeSink<'a, S> {
    /// Tee `sink`, also recording into `rec`.
    pub fn new(sink: &'a mut S, rec: &'a mut ScanOps) -> TeeSink<'a, S> {
        TeeSink { sink, rec }
    }
}

impl<S: CostSink> CostSink for TeeSink<'_, S> {
    fn op(&mut self, class: OpClass, count: u64) {
        self.sink.op(class, count);
        self.rec.op(class, count);
    }
    fn load(&mut self, bytes: u64) {
        self.sink.load(bytes);
        self.rec.load(bytes);
    }
    fn load_shared(&mut self, bytes: u64) {
        self.sink.load_shared(bytes);
        self.rec.load_shared(bytes);
    }
    fn store(&mut self, bytes: u64) {
        self.sink.store(bytes);
        self.rec.store(bytes);
    }
    fn branch(&mut self, diverged: bool) {
        self.sink.branch(diverged);
        self.rec.branch(diverged);
    }
    fn branches(&mut self, count: u64, diverged: bool) {
        self.sink.branches(count, diverged);
        self.rec.branches(count, diverged);
    }
    fn loads_shared(&mut self, count: u64, bytes_each: u64) {
        self.sink.loads_shared(count, bytes_each);
        self.rec.loads_shared(count, bytes_each);
    }
}

/// The measured-envelope grid geometry of one rescan: cell width from the
/// critical reach (coarsened by `grid_cell_nm`), spatial extent and
/// altitude-bucket span from the min/max actually observed over the fleet.
/// Derivation and degenerate fallbacks mirror [`ConflictGrid::build`]
/// exactly, so the incremental grid assigns every aircraft to the same
/// conceptual slot the full-rebuild grid would.
///
/// [`ConflictGrid::build`]: crate::detect::ConflictGrid::build
#[derive(Clone, Copy, Debug, PartialEq)]
struct GridGeometry {
    /// Cell width in nm (0.0 marks the degenerate single cell).
    cell_nm: f64,
    min_cx: i64,
    min_cy: i64,
    cols: usize,
    rows: usize,
    /// Altitude bucket width in ft (0.0 marks the degenerate single bucket).
    band_width: f64,
    min_b: i64,
    nb: usize,
}

impl GridGeometry {
    /// Measure the fleet envelope and derive this rescan's geometry.
    fn measure(aircraft: &[Aircraft], cfg: &AtmConfig) -> GridGeometry {
        let n = aircraft.len();
        let cap = (4 * n as i128).max(4_096);

        // Altitude buckets: same derivation as `AltitudeBands::build`.
        let mut band = (0.0f64, 0i64, 1usize);
        let width = cfg.alt_separation_ft as f64;
        if n > 0 && width.is_finite() && width > 0.0 {
            let (mut min_b, mut max_b) = (i64::MAX, i64::MIN);
            let mut ok = true;
            for a in aircraft {
                match AltitudeBands::bucket_for(a.alt, width) {
                    Some(b) => {
                        min_b = min_b.min(b);
                        max_b = max_b.max(b);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let span = (max_b as i128 - min_b as i128) + 1;
                if span <= cap {
                    band = (width, min_b, span as usize);
                }
            }
        }
        let (band_width, min_b, nb) = band;

        // Spatial cells: same derivation as `ConflictGrid::build`, envelope
        // measured from the aircraft actually present this rescan.
        let cell = (cfg.critical_reach_nm() as f64 * 1.000_001).max(cfg.grid_cell_nm as f64);
        let mut spatial = None;
        if n > 0 && cell.is_finite() && cell > 0.0 {
            let (mut min_cx, mut max_cx) = (i64::MAX, i64::MIN);
            let (mut min_cy, mut max_cy) = (i64::MAX, i64::MIN);
            let mut ok = true;
            for a in aircraft {
                match (
                    AltitudeBands::bucket_for(a.x, cell),
                    AltitudeBands::bucket_for(a.y, cell),
                ) {
                    (Some(cx), Some(cy)) => {
                        min_cx = min_cx.min(cx);
                        max_cx = max_cx.max(cx);
                        min_cy = min_cy.min(cy);
                        max_cy = max_cy.max(cy);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let cols = (max_cx as i128 - min_cx as i128) + 1;
                let rows = (max_cy as i128 - min_cy as i128) + 1;
                if cols * rows <= cap && cols * rows * nb as i128 <= 2 * cap {
                    spatial = Some((cell, min_cx, min_cy, cols as usize, rows as usize));
                }
            }
        }
        let (cell_nm, min_cx, min_cy, cols, rows) = spatial.unwrap_or((0.0, 0, 0, 1, 1));

        GridGeometry {
            cell_nm,
            min_cx,
            min_cy,
            cols,
            rows,
            band_width,
            min_b,
            nb,
        }
    }

    fn slot_count(&self) -> usize {
        self.cols * self.rows * self.nb
    }

    /// Slot of one aircraft; `None` cannot occur for aircraft the geometry
    /// was measured from (unbucketable fleets degrade to the single slot).
    fn slot_of(&self, a: &Aircraft) -> usize {
        let spatial = if self.cell_nm > 0.0 {
            let cx = AltitudeBands::bucket_for(a.x, self.cell_nm).expect("measured above");
            let cy = AltitudeBands::bucket_for(a.y, self.cell_nm).expect("measured above");
            (cy - self.min_cy) as usize * self.cols + (cx - self.min_cx) as usize
        } else {
            0
        };
        let b = if self.band_width > 0.0 {
            match AltitudeBands::bucket_for(a.alt, self.band_width) {
                Some(b) => (b - self.min_b) as usize,
                None => 0,
            }
        } else {
            0
        };
        spatial * self.nb + b
    }

    /// Half-open cell-coordinate spans covering `cell(x,y) ± 1` per axis.
    fn cell_spans(&self, x: f32, y: f32) -> (usize, usize, usize, usize) {
        if self.cell_nm <= 0.0 {
            return (0, self.cols, 0, self.rows);
        }
        let clamp_axis = |c: Option<i64>, min: i64, len: usize| match c {
            Some(c) => {
                let lo = (c - 1 - min).clamp(0, len as i64);
                let hi = (c + 2 - min).clamp(0, len as i64);
                (lo as usize, hi.max(lo) as usize)
            }
            None => (0, len),
        };
        let (x_lo, x_hi) = clamp_axis(
            AltitudeBands::bucket_for(x, self.cell_nm),
            self.min_cx,
            self.cols,
        );
        let (y_lo, y_hi) = clamp_axis(
            AltitudeBands::bucket_for(y, self.cell_nm),
            self.min_cy,
            self.rows,
        );
        (x_lo, x_hi, y_lo, y_hi)
    }

    /// Half-open bucket span covering `bucket(alt) ± 1`.
    fn bucket_span(&self, alt: f32) -> (usize, usize) {
        if self.band_width <= 0.0 {
            return (0, self.nb);
        }
        match AltitudeBands::bucket_for(alt, self.band_width) {
            Some(b) => {
                let lo = (b - 1 - self.min_b).clamp(0, self.nb as i64) as usize;
                let hi = (b + 2 - self.min_b).clamp(0, self.nb as i64) as usize;
                (lo, hi.max(lo))
            }
            None => (0, self.nb),
        }
    }
}

/// Bits of every scan-relevant field of one aircraft: position, altitude
/// and velocity. Exact-bit comparison — the only changes a rescan may
/// ignore are *no* changes.
fn scan_key(a: &Aircraft) -> [u32; 5] {
    [
        a.x.to_bits(),
        a.y.to_bits(),
        a.alt.to_bits(),
        a.dx.to_bits(),
        a.dy.to_bits(),
    ]
}

/// A conflict grid that persists across rescans: slot membership is moved
/// incrementally as aircraft drift, and every slot an aircraft leaves,
/// enters or changes inside carries a dirty clock that validity checks
/// compare against.
#[derive(Clone, Debug, Default)]
pub struct IncrementalGrid {
    geo: Option<GridGeometry>,
    /// Aircraft indices per slot, ascending within each slot.
    slots: Vec<Vec<u32>>,
    /// Per-slot dirty clock: the last [`IncrementalGrid::clock`] value at
    /// which the slot's scan-relevant contents changed.
    dirty: Vec<u64>,
    /// Aircraft index → slot.
    assign: Vec<u32>,
    /// Aircraft index → scan-key bits at last sighting.
    keys: Vec<[u32; 5]>,
    /// Monotone change clock: bumped once per update pass and once per
    /// mid-execution velocity commit.
    clock: u64,
    /// Slots marked dirty since the last [`IncrementalGrid::take_cells_dirty`].
    cells_dirty: u64,
}

impl IncrementalGrid {
    /// An empty grid; the first [`IncrementalGrid::update`] populates it.
    pub fn new() -> IncrementalGrid {
        IncrementalGrid::default()
    }

    /// Build a grid for one fleet snapshot (a fresh, all-dirty update) —
    /// the stateless entry [`ScanIndex::for_config`] uses.
    ///
    /// [`ScanIndex::for_config`]: crate::detect::ScanIndex::for_config
    pub fn build(aircraft: &[Aircraft], cfg: &AtmConfig) -> IncrementalGrid {
        let mut g = IncrementalGrid::new();
        g.update(aircraft, cfg);
        g
    }

    /// The change clock's current value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Tracked fleet size.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True before the first update.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of slots (spatial cells × altitude buckets).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Drain the dirty-slot counter accumulated since the last call.
    pub fn take_cells_dirty(&mut self) -> u64 {
        std::mem::take(&mut self.cells_dirty)
    }

    fn mark_dirty(&mut self, slot: usize) {
        if self.dirty[slot] != self.clock {
            self.dirty[slot] = self.clock;
            self.cells_dirty += 1;
        }
    }

    /// One update pass: advance the clock, re-measure the fleet envelope,
    /// and bring slot membership up to date. Aircraft whose scan key
    /// changed dirty the slots they leave and enter (or sit in, for
    /// sub-cell moves and velocity changes). A geometry change — envelope
    /// drift past a cell edge, fleet size change, collapse to a point —
    /// rebuilds in place with every slot dirty. Returns whether a full
    /// rebuild happened.
    pub fn update(&mut self, aircraft: &[Aircraft], cfg: &AtmConfig) -> bool {
        self.clock += 1;
        let geo = GridGeometry::measure(aircraft, cfg);
        if self.geo != Some(geo) || aircraft.len() != self.assign.len() {
            self.rebuild(aircraft, geo);
            return true;
        }
        for (i, a) in aircraft.iter().enumerate() {
            let key = scan_key(a);
            if key == self.keys[i] {
                continue;
            }
            let old = self.assign[i] as usize;
            let new = geo.slot_of(a);
            if new != old {
                let members = &mut self.slots[old];
                let at = members
                    .binary_search(&(i as u32))
                    .expect("assignment tracks membership");
                members.remove(at);
                let members = &mut self.slots[new];
                let at = members.binary_search(&(i as u32)).unwrap_err();
                members.insert(at, i as u32);
                self.assign[i] = new as u32;
                self.mark_dirty(old);
                self.mark_dirty(new);
            } else {
                self.mark_dirty(old);
            }
            self.keys[i] = key;
        }
        false
    }

    /// Rebuild membership from scratch under `geo`, reusing the slot
    /// allocations; every slot comes out dirty at the current clock.
    fn rebuild(&mut self, aircraft: &[Aircraft], geo: GridGeometry) {
        self.geo = Some(geo);
        let slots = geo.slot_count();
        for s in &mut self.slots {
            s.clear();
        }
        self.slots.resize_with(slots, Vec::new);
        self.dirty.clear();
        self.dirty.resize(slots, self.clock);
        self.cells_dirty += slots as u64;
        self.assign.clear();
        self.keys.clear();
        for (i, a) in aircraft.iter().enumerate() {
            let s = geo.slot_of(a);
            self.slots[s].push(i as u32);
            self.assign.push(s as u32);
            self.keys.push(scan_key(a));
        }
    }

    /// Record a mid-execution velocity commit of aircraft `i`: bump the
    /// clock, dirty the aircraft's slot (invalidating every cached scan
    /// whose neighborhood contains it, including its own) and refresh its
    /// key mirror so the next update pass does not re-mark it.
    pub fn note_commit(&mut self, i: usize, a: &Aircraft) {
        self.clock += 1;
        let slot = self.assign[i] as usize;
        self.mark_dirty(slot);
        self.keys[i] = scan_key(a);
    }

    /// Whether every slot in `track`'s current 3×3-cell × ±1-bucket
    /// neighborhood has stayed clean since clock value `since`: the replay
    /// validity test. The track's own slot is always inside its own
    /// neighborhood, so its own changes are covered.
    pub fn clean_since(&self, track: &Aircraft, since: u64) -> bool {
        let Some(geo) = self.geo else {
            return false;
        };
        let (x_lo, x_hi, y_lo, y_hi) = geo.cell_spans(track.x, track.y);
        let (b_lo, b_hi) = geo.bucket_span(track.alt);
        for cy in y_lo..y_hi {
            for cx in x_lo..x_hi {
                let base = (cy * geo.cols + cx) * geo.nb;
                for b in b_lo..b_hi {
                    if self.dirty[base + b] > since {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Candidate superset of `track`'s gate-passers: the 3×3 cell
    /// neighborhood intersected with altitude bucket ±1, cells y-major,
    /// indices ascending within each slot — the same coverage argument as
    /// [`ConflictGrid::candidates`].
    ///
    /// [`ConflictGrid::candidates`]: crate::detect::ConflictGrid::candidates
    pub fn candidates<'g>(&'g self, track: &Aircraft) -> impl Iterator<Item = usize> + 'g {
        let (x_lo, x_hi, y_lo, y_hi, b_lo, b_hi, cols, nb) = match self.geo {
            Some(geo) => {
                let (x_lo, x_hi, y_lo, y_hi) = geo.cell_spans(track.x, track.y);
                let (b_lo, b_hi) = geo.bucket_span(track.alt);
                (x_lo, x_hi, y_lo, y_hi, b_lo, b_hi, geo.cols, geo.nb)
            }
            None => (0, 0, 0, 0, 0, 0, 1, 1),
        };
        (y_lo..y_hi)
            .flat_map(move |cy| (x_lo..x_hi).map(move |cx| cy * cols + cx))
            .flat_map(move |cell| {
                (b_lo..b_hi)
                    .flat_map(move |b| self.slots[cell * nb + b].iter().map(|&i| i as usize))
            })
    }

    /// Gather [`IncrementalGrid::candidates`] into a reusable buffer.
    pub fn candidates_into(&self, track: &Aircraft, out: &mut Vec<u32>) {
        out.clear();
        let Some(geo) = self.geo else {
            return;
        };
        let (x_lo, x_hi, y_lo, y_hi) = geo.cell_spans(track.x, track.y);
        let (b_lo, b_hi) = geo.bucket_span(track.alt);
        for cy in y_lo..y_hi {
            for cx in x_lo..x_hi {
                let base = (cy * geo.cols + cx) * geo.nb;
                for b in b_lo..b_hi {
                    out.extend_from_slice(&self.slots[base + b]);
                }
            }
        }
    }
}

/// One cached clear first scan.
#[derive(Clone, Debug)]
struct CacheEntry {
    /// Grid clock when the scan ran (validity horizon).
    stored_at: u64,
    /// Gate-passers the scan counted.
    checks: u64,
    /// The scan's recorded cost-booking totals.
    ops: ScanOps,
}

/// Which driver populated the cache: booked entries carry recorded cost
/// totals, unbooked (measured-path) entries book nothing. The two must
/// never replay each other's entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DriverKind {
    Booked,
    Unbooked,
}

/// The persistent incremental detect engine: a dirty-cell grid plus the
/// clean-pair replay cache, with the sharded enumerator layered on when
/// the config shards the airfield. Backends own one and call
/// [`IncrementalEngine::detect_resolve`] (modeled cost paths) or
/// [`IncrementalEngine::detect_resolve_unbooked`] (measured paths) per
/// rescan; outputs are bit-identical to
/// [`crate::detect::detect_resolve_all`] under [`ScanMode::Grid`] — fleet
/// bytes, stats and booked sink totals alike.
///
/// [`ScanMode::Grid`]: crate::config::ScanMode::Grid
/// [`ScanMode::Incremental`]: crate::config::ScanMode::Incremental
#[derive(Debug, Default)]
pub struct IncrementalEngine {
    grid: IncrementalGrid,
    sharded: Option<ShardedIncremental>,
    cache: Vec<Option<CacheEntry>>,
    activity: ScanActivity,
    total_activity: ScanActivity,
    cands: Vec<u32>,
    last_cfg: Option<AtmConfig>,
    driver: Option<DriverKind>,
}

impl IncrementalEngine {
    /// A fresh engine with no history.
    pub fn new() -> IncrementalEngine {
        IncrementalEngine::default()
    }

    /// Dirty-cell hit-rate counters of the most recent rescan.
    pub fn activity(&self) -> &ScanActivity {
        &self.activity
    }

    /// Counters accumulated over the engine's lifetime.
    pub fn total_activity(&self) -> &ScanActivity {
        &self.total_activity
    }

    /// Drop every cached scan and start from scratch on the next rescan.
    pub fn reset(&mut self) {
        *self = IncrementalEngine::new();
    }

    /// Bring the grid (and sharded enumerator, when configured) up to date
    /// for this rescan; any config or driver change resets the engine.
    fn prepare(&mut self, aircraft: &[Aircraft], cfg: &AtmConfig, kind: DriverKind) {
        if self.last_cfg.as_ref() != Some(cfg) || self.driver != Some(kind) {
            self.reset();
            self.last_cfg = Some(cfg.clone());
            self.driver = Some(kind);
        }
        self.activity = ScanActivity::default();
        let rebuilt = self.grid.update(aircraft, cfg);
        if rebuilt {
            self.cache.clear();
        }
        self.cache.resize(aircraft.len(), None);
        if cfg.shards > 1 {
            self.sharded
                .get_or_insert_with(ShardedIncremental::new)
                .update(aircraft, cfg);
        } else {
            self.sharded = None;
        }
    }

    /// Gather track `i`'s candidate superset into the reusable buffer.
    fn gather(&mut self, aircraft: &[Aircraft], i: usize) {
        match &self.sharded {
            Some(sh) => sh.candidates_into(i, &aircraft[i], &mut self.cands),
            None => self.grid.candidates_into(&aircraft[i], &mut self.cands),
        }
    }

    /// Replay aircraft `i`'s cached clear scan if its neighborhood is
    /// provably unchanged: re-apply the cascade's no-op-path mutations and
    /// re-book the recorded totals. Returns the replayed check count.
    fn try_replay(
        &mut self,
        aircraft: &mut [Aircraft],
        i: usize,
        cfg: &AtmConfig,
        sink: &mut impl CostSink,
    ) -> Option<u64> {
        let entry = self.cache[i].as_ref()?;
        if !self.grid.clean_since(&aircraft[i], entry.stored_at) {
            return None;
        }
        // The cascade's clear path verbatim: reset stores, the recorded
        // scan, the loop-exit branch, no commit (chk == 0).
        aircraft[i].time_till = cfg.critical_periods;
        aircraft[i].batx = aircraft[i].dx;
        aircraft[i].baty = aircraft[i].dy;
        sink.store(12);
        entry.ops.replay(sink);
        sink.branch(false);
        self.activity.scans_replayed += 1;
        self.activity.pairs_replayed += entry.checks;
        Some(entry.checks)
    }

    /// One booked rescan: bit-identical fleet mutations, stats and sink
    /// totals to `detect_resolve_all` under `ScanMode::Grid`.
    pub fn detect_resolve(
        &mut self,
        aircraft: &mut [Aircraft],
        cfg: &AtmConfig,
        sink: &mut impl CostSink,
    ) -> DetectStats {
        self.prepare(aircraft, cfg, DriverKind::Booked);
        let mut total = DetectStats::default();
        for i in 0..aircraft.len() {
            if let Some(checks) = self.try_replay(aircraft, i, cfg, sink) {
                total.pair_checks += checks;
                continue;
            }
            self.gather(aircraft, i);
            let vel_before = (aircraft[i].dx.to_bits(), aircraft[i].dy.to_bits());
            let cands: &[u32] = &self.cands;
            let mut first: Option<(u64, ScanOps, bool)> = None;
            let stats = check_collision_path_scanned(aircraft, i, cfg, sink, |ac, i, vel, sink| {
                if first.is_none() {
                    let mut rec = ScanOps::default();
                    let r = {
                        let mut tee = TeeSink::new(sink, &mut rec);
                        scan_candidate_list_booked(ac, i, vel, cfg, cands, &mut tee)
                    };
                    first = Some((r.checks, rec, r.critical.is_none()));
                    r
                } else {
                    scan_candidate_list_booked(ac, i, vel, cfg, cands, sink)
                }
            });
            total.absorb(&stats);
            self.activity.scans_live += 1;
            self.activity.pairs_rescanned += stats.pair_checks;
            let (checks, rec, clear) = first.expect("cascade always scans at least once");
            if clear && !rec.irregular() {
                self.cache[i] = Some(CacheEntry {
                    stored_at: self.grid.clock(),
                    checks,
                    ops: rec,
                });
            }
            if (aircraft[i].dx.to_bits(), aircraft[i].dy.to_bits()) != vel_before {
                self.grid.note_commit(i, &aircraft[i]);
            }
        }
        self.finish();
        total
    }

    /// One unbooked rescan for measured backends: the caller supplies the
    /// live scan (thread-pool chunks, SoA kernel — anything
    /// result-identical to the booked scan over the same candidates) and
    /// an `after_each(aircraft, i)` hook that runs after each live
    /// aircraft (the SoA backend mirrors committed velocities there).
    /// Nothing is booked; outputs stay bit-identical.
    pub fn detect_resolve_unbooked<F, G>(
        &mut self,
        aircraft: &mut [Aircraft],
        cfg: &AtmConfig,
        mut scan: F,
        mut after_each: G,
    ) -> DetectStats
    where
        F: FnMut(&[Aircraft], usize, (f32, f32), &[u32]) -> ScanResult,
        G: FnMut(&[Aircraft], usize),
    {
        self.prepare(aircraft, cfg, DriverKind::Unbooked);
        let mut total = DetectStats::default();
        for i in 0..aircraft.len() {
            if let Some(checks) = self.try_replay(aircraft, i, cfg, &mut NullSink) {
                total.pair_checks += checks;
                continue;
            }
            self.gather(aircraft, i);
            let vel_before = (aircraft[i].dx.to_bits(), aircraft[i].dy.to_bits());
            let cands: &[u32] = &self.cands;
            let mut first: Option<(u64, bool)> = None;
            let stats =
                check_collision_path_scanned(aircraft, i, cfg, &mut NullSink, |ac, i, vel, _| {
                    let r = scan(ac, i, vel, cands);
                    if first.is_none() {
                        first = Some((r.checks, r.critical.is_none()));
                    }
                    r
                });
            total.absorb(&stats);
            self.activity.scans_live += 1;
            self.activity.pairs_rescanned += stats.pair_checks;
            let (checks, clear) = first.expect("cascade always scans at least once");
            if clear {
                self.cache[i] = Some(CacheEntry {
                    stored_at: self.grid.clock(),
                    checks,
                    ops: ScanOps::default(),
                });
            }
            if (aircraft[i].dx.to_bits(), aircraft[i].dy.to_bits()) != vel_before {
                self.grid.note_commit(i, &aircraft[i]);
            }
            after_each(aircraft, i);
        }
        self.finish();
        total
    }

    /// Close out one rescan's counters.
    fn finish(&mut self) {
        self.activity.cells_dirty = self.grid.take_cells_dirty();
        self.total_activity.absorb(&self.activity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::config::ScanMode;
    use crate::detect::index::ConflictGrid;
    use crate::detect::kernel::detect_resolve_all;
    use sim_clock::OpCounter;

    fn fleet(n: usize, seed: u64) -> (Vec<Aircraft>, AtmConfig) {
        let field = Airfield::with_seed(n, seed);
        let mut cfg = field.config().clone();
        cfg.scan = ScanMode::Grid;
        (field.aircraft, cfg)
    }

    /// Deterministic xorshift for displacement patterns.
    fn rng(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn displace(aircraft: &mut [Aircraft], frac: f64, seed: &mut u64) {
        let n = aircraft.len();
        let moves = ((n as f64) * frac).ceil() as usize;
        for _ in 0..moves {
            let i = (rng(seed) % n as u64) as usize;
            let a = &mut aircraft[i];
            a.x += ((rng(seed) % 200) as f32 - 100.0) * 0.3;
            a.y += ((rng(seed) % 200) as f32 - 100.0) * 0.3;
            if rng(seed).is_multiple_of(4) {
                a.alt += ((rng(seed) % 20) as f32 - 10.0) * 100.0;
            }
        }
    }

    #[test]
    fn incremental_candidates_match_the_full_rebuild_grid() {
        let (ac, cfg) = fleet(600, 21);
        let full = ConflictGrid::build(&ac, &cfg);
        let inc = IncrementalGrid::build(&ac, &cfg);
        for i in (0..ac.len()).step_by(13) {
            let mut a: Vec<usize> = full.candidates(&ac[i]).collect();
            let mut b: Vec<usize> = inc.candidates(&ac[i]).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "candidate sets diverged for track {i}");
            let mut buf = Vec::new();
            inc.candidates_into(&ac[i], &mut buf);
            let mut c: Vec<usize> = buf.iter().map(|&p| p as usize).collect();
            c.sort_unstable();
            assert_eq!(b, c, "buffer gather diverged for track {i}");
        }
    }

    #[test]
    fn updated_grid_equals_a_fresh_build_after_moves() {
        let (mut ac, cfg) = fleet(400, 5);
        let mut inc = IncrementalGrid::build(&ac, &cfg);
        let mut seed = 0xfeed_f00d_u64;
        for cycle in 0..6 {
            displace(&mut ac, 0.1, &mut seed);
            inc.update(&ac, &cfg);
            let fresh = IncrementalGrid::build(&ac, &cfg);
            for i in (0..ac.len()).step_by(7) {
                let mut a: Vec<usize> = inc.candidates(&ac[i]).collect();
                let mut b: Vec<usize> = fresh.candidates(&ac[i]).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "cycle {cycle} track {i}");
            }
        }
    }

    #[test]
    fn scan_ops_replay_books_identical_totals() {
        let (ac, cfg) = fleet(300, 8);
        let inc = IncrementalGrid::build(&ac, &cfg);
        let mut cands = Vec::new();
        for i in [0usize, 37, 150, 299] {
            inc.candidates_into(&ac[i], &mut cands);
            let vel = (ac[i].dx, ac[i].dy);
            let mut direct = OpCounter::new();
            scan_candidate_list_booked(&ac, i, vel, &cfg, &cands, &mut direct);
            let mut live = OpCounter::new();
            let mut rec = ScanOps::default();
            {
                let mut tee = TeeSink::new(&mut live, &mut rec);
                scan_candidate_list_booked(&ac, i, vel, &cfg, &cands, &mut tee);
            }
            assert_eq!(live, direct, "tee must not perturb the real sink");
            assert!(!rec.irregular(), "scan path books no raw loads/stores");
            let mut replayed = OpCounter::new();
            rec.replay(&mut replayed);
            assert_eq!(replayed, direct, "replay totals diverged for track {i}");
        }
    }

    /// The core differential: a persistent engine over many rescans of a
    /// drifting fleet stays bit-identical — fleet bytes, stats and booked
    /// sink totals — to a full grid rebuild every cycle.
    #[test]
    fn engine_matches_full_rebuild_over_many_cycles() {
        for (n, seed, frac) in [(300usize, 11u64, 0.02f64), (500, 77, 0.25)] {
            let (ac0, cfg) = fleet(n, seed);
            let mut reference = ac0.clone();
            let mut incremental = ac0;
            let mut engine = IncrementalEngine::new();
            let mut seed = seed | 1;
            for cycle in 0..8 {
                displace(&mut reference, frac, &mut seed.clone());
                displace(&mut incremental, frac, &mut seed);
                let mut ref_ops = OpCounter::new();
                let ref_stats = detect_resolve_all(&mut reference, &cfg, &mut ref_ops);
                let mut inc_ops = OpCounter::new();
                let inc_stats = engine.detect_resolve(&mut incremental, &cfg, &mut inc_ops);
                assert_eq!(incremental, reference, "fleet diverged, cycle {cycle}");
                assert_eq!(inc_stats, ref_stats, "stats diverged, cycle {cycle}");
                assert_eq!(inc_ops, ref_ops, "sink totals diverged, cycle {cycle}");
            }
            let act = engine.total_activity();
            assert_eq!(
                act.scans_live + act.scans_replayed,
                8 * n as u64,
                "every aircraft's scan must be either live or replayed"
            );
        }
    }

    #[test]
    fn static_fleet_replays_the_clear_scans_once_settled() {
        let (ac0, cfg) = fleet(250, 3);
        let mut reference = ac0.clone();
        let mut incremental = ac0;
        let mut engine = IncrementalEngine::new();
        let mut settled_live = None;
        for cycle in 0..5 {
            let ref_stats = detect_resolve_all(&mut reference, &cfg, &mut NullSink);
            let inc_stats = engine.detect_resolve(&mut incremental, &cfg, &mut NullSink);
            assert_eq!(incremental, reference, "cycle {cycle}");
            assert_eq!(inc_stats, ref_stats, "cycle {cycle}");
            let act = *engine.activity();
            assert_eq!(act.scans_live + act.scans_replayed, 250, "cycle {cycle}");
            if cycle >= 2 {
                // Once resolutions from the first cycles have committed, a
                // static fleet reaches a fixed point: only aircraft stuck
                // with an unresolvable conflict (whose first scan is never
                // clear, hence never cacheable) still scan live, and their
                // count stops changing.
                match settled_live {
                    None => settled_live = Some(act.scans_live),
                    Some(prev) => assert_eq!(act.scans_live, prev, "cycle {cycle} ({act:?})"),
                }
                assert!(
                    act.scans_replayed > 125,
                    "most of a settled static fleet must replay, cycle {cycle} ({act:?})"
                );
            }
        }
    }

    #[test]
    fn envelope_collapse_rebuilds_and_stays_identical() {
        let (ac0, cfg) = fleet(200, 13);
        let mut reference = ac0.clone();
        let mut incremental = ac0;
        let mut engine = IncrementalEngine::new();
        engine.detect_resolve(&mut incremental, &cfg, &mut NullSink);
        detect_resolve_all(&mut reference, &cfg, &mut NullSink);
        // Collapse the measured envelope to (nearly) a point.
        for (r, i) in reference.iter_mut().zip(incremental.iter_mut()) {
            r.x = 1.0;
            r.y = -2.0;
            i.x = 1.0;
            i.y = -2.0;
        }
        let mut ref_ops = OpCounter::new();
        let ref_stats = detect_resolve_all(&mut reference, &cfg, &mut ref_ops);
        let mut inc_ops = OpCounter::new();
        let inc_stats = engine.detect_resolve(&mut incremental, &cfg, &mut inc_ops);
        assert_eq!(incremental, reference, "fleet diverged after collapse");
        assert_eq!(inc_stats, ref_stats);
        assert_eq!(inc_ops, ref_ops);
    }

    #[test]
    fn fleet_size_change_resets_cleanly() {
        let (ac0, cfg) = fleet(180, 9);
        let mut engine = IncrementalEngine::new();
        let mut incremental = ac0.clone();
        engine.detect_resolve(&mut incremental, &cfg, &mut NullSink);
        // Shrink the fleet: the engine must rebuild, not index out of range.
        let (smaller, _) = fleet(60, 9);
        let mut reference = smaller.clone();
        let mut incremental = smaller;
        detect_resolve_all(&mut reference, &cfg, &mut NullSink);
        engine.detect_resolve(&mut incremental, &cfg, &mut NullSink);
        assert_eq!(incremental, reference);
    }

    #[test]
    fn unbooked_driver_matches_the_booked_one() {
        use crate::detect::kernel::scan_candidate_list;
        let (ac0, cfg) = fleet(350, 17);
        let mut booked = ac0.clone();
        let mut unbooked = ac0;
        let mut eng_a = IncrementalEngine::new();
        let mut eng_b = IncrementalEngine::new();
        let mut seed = 0x5eed_u64;
        for cycle in 0..5 {
            displace(&mut booked, 0.1, &mut seed.clone());
            displace(&mut unbooked, 0.1, &mut seed);
            let a = eng_a.detect_resolve(&mut booked, &cfg, &mut NullSink);
            let b = eng_b.detect_resolve_unbooked(
                &mut unbooked,
                &cfg,
                |ac, i, vel, cands| scan_candidate_list(ac, i, vel, &cfg, cands),
                |_, _| {},
            );
            assert_eq!(unbooked, booked, "cycle {cycle}");
            assert_eq!(a, b, "cycle {cycle}");
        }
    }
}
