//! Candidate enumeration: the per-execution [`ScanIndex`] and the pruning
//! structures behind it.
//!
//! This is the **CandidateSource** side of the detect pipeline: a
//! [`ScanIndex`] enumerates, for one track aircraft, a superset of every
//! partner that could pass the scan's pair gates. The single scan kernel
//! ([`crate::detect::scan_pairs`]) owns the gate checks, cost booking and
//! selection; the enumerators here only decide *which* pairs get visited —
//! a wall-clock choice that can never change a result.

use crate::config::{AtmConfig, ScanMode};
use crate::detect::incremental::IncrementalGrid;
use crate::shard::ShardedIndex;
use crate::types::Aircraft;
use ap_sim::ResponderSet;

/// Largest bucket index magnitude the banded index will use. Beyond this
/// the f64 rounding slack in `alt / width` is no longer provably below the
/// half-ulp margin of the f32 altitude gate, so [`AltitudeBands::build`]
/// falls back to a single catch-all bucket (still correct, no pruning).
/// Real configurations sit around |bucket| ≤ 40.
const MAX_BUCKET_MAGNITUDE: f64 = (1u64 << 24) as f64;

/// An altitude-band bucketed index over a fleet snapshot.
///
/// Bucket `b` holds the aircraft with `floor(alt / width) == b`, where
/// `width` is the vertical-separation threshold. Any pair passing the f32
/// altitude gate `|a.alt − b.alt| < width` is at most one bucket apart
/// (`|Δalt| < width` bounds the exact quotients within 1.0 of each other,
/// and the f64 division error is ≪ the gate's own f32 half-ulp margin under
/// [`MAX_BUCKET_MAGNITUDE`]), so a scan that visits buckets `b−1..=b+1` sees
/// every candidate the naive O(n²) scan would accept. Altitudes never change
/// during Tasks 2+3 — only velocities and collision flags do — so an index
/// built once per detect execution stays valid through every rotation
/// rescan of every aircraft.
///
/// This is purely a host-side wall-clock structure: the scan kernel books
/// the skipped pairs' operation mix in aggregate (see
/// [`crate::detect::scan_pairs`]), so every [`sim_clock::CostSink`] tallies
/// exactly what the naive scan books.
#[derive(Clone, Debug, PartialEq)]
pub struct AltitudeBands {
    /// Band width in feet as f64 (0.0 marks the degenerate single-bucket
    /// fallback).
    width: f64,
    /// Bucket index of `buckets[0]`.
    min_bucket: i64,
    /// Aircraft indices grouped by altitude bucket, ascending bucket order.
    buckets: Vec<Vec<u32>>,
}

impl AltitudeBands {
    /// Bucket index of one altitude, or `None` when the assignment is not
    /// provably gate-consistent (non-finite altitude or huge quotient).
    /// Crate-visible: the incremental grid reuses the exact same quantizer
    /// so its cell assignments agree with the full-rebuild grid's.
    pub(crate) fn bucket_for(alt: f32, width: f64) -> Option<i64> {
        let q = (alt as f64 / width).floor();
        if q.is_finite() && q.abs() <= MAX_BUCKET_MAGNITUDE {
            Some(q as i64)
        } else {
            None
        }
    }

    /// Build the index for a fleet under vertical separation
    /// `alt_separation_ft`. Degenerate parameters (non-positive or
    /// non-finite width, unbucketable altitudes, or a bucket span so wide
    /// the index would waste memory) yield a single catch-all bucket, which
    /// keeps every scan correct at naive cost.
    pub fn build(aircraft: &[Aircraft], alt_separation_ft: f32) -> AltitudeBands {
        let mut bands = AltitudeBands {
            width: 0.0,
            min_bucket: 0,
            buckets: Vec::new(),
        };
        bands.rebuild(aircraft, alt_separation_ft);
        bands
    }

    /// [`AltitudeBands::build`] in place: recompute the bucketing for a new
    /// fleet snapshot while reusing the bucket allocations — the state after
    /// a rebuild is indistinguishable from a fresh build. Kills the
    /// per-rescan allocation churn for backends that keep an index alive
    /// across executions ([`ScanIndex::refresh`]).
    pub fn rebuild(&mut self, aircraft: &[Aircraft], alt_separation_ft: f32) {
        let n = aircraft.len();
        let width = alt_separation_ft as f64;
        for b in &mut self.buckets {
            b.clear();
        }
        // Decide the bucket layout (or the degenerate single-bucket
        // fallback) before touching the storage.
        let mut layout = None;
        if n > 0 && width.is_finite() && width > 0.0 {
            let mut min_b = i64::MAX;
            let mut max_b = i64::MIN;
            let mut ok = true;
            for a in aircraft {
                match Self::bucket_for(a.alt, width) {
                    Some(b) => {
                        min_b = min_b.min(b);
                        max_b = max_b.max(b);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let span = (max_b as i128 - min_b as i128) + 1;
                if span <= (4 * n as i128).max(4_096) {
                    layout = Some((min_b, span as usize));
                }
            }
        }
        match layout {
            Some((min_b, span)) => {
                self.width = width;
                self.min_bucket = min_b;
                self.buckets.resize_with(span, Vec::new);
                for (idx, a) in aircraft.iter().enumerate() {
                    let b = Self::bucket_for(a.alt, width).expect("bucketed above");
                    self.buckets[(b - min_b) as usize].push(idx as u32);
                }
            }
            None => {
                self.width = 0.0;
                self.min_bucket = 0;
                self.buckets.resize_with(1, Vec::new);
                self.buckets[0].extend(0..n as u32);
            }
        }
    }

    /// Half-open range into `buckets` covering `bucket(alt) ± 1`.
    fn candidate_range(&self, alt: f32) -> (usize, usize) {
        if self.width <= 0.0 {
            return (0, self.buckets.len());
        }
        let len = self.buckets.len() as i64;
        let Some(b) = Self::bucket_for(alt, self.width) else {
            // Unbucketable query altitude: scan everything (correctness
            // over pruning; cannot happen for altitudes the index was
            // built from).
            return (0, self.buckets.len());
        };
        let lo = (b - 1 - self.min_bucket).clamp(0, len);
        let hi = (b + 2 - self.min_bucket).clamp(0, len);
        (lo as usize, hi.max(lo) as usize)
    }

    /// Aircraft indices that could pass the altitude gate against an
    /// aircraft at `alt` (a superset: callers re-check the real gate).
    pub fn candidates(&self, alt: f32) -> impl Iterator<Item = usize> + '_ {
        let (lo, hi) = self.candidate_range(alt);
        self.buckets[lo..hi]
            .iter()
            .flat_map(|b| b.iter().map(|&i| i as usize))
    }

    /// Number of buckets (1 for the degenerate fallback).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the index is the single catch-all bucket (no pruning).
    pub fn is_degenerate(&self) -> bool {
        self.width <= 0.0
    }

    /// Bucket index of one altitude under this index's width, or `None`
    /// when the index is degenerate or the altitude is unbucketable.
    pub fn bucket_of(&self, alt: f32) -> Option<i64> {
        if self.is_degenerate() {
            None
        } else {
            Self::bucket_for(alt, self.width)
        }
    }
}

/// A coarse uniform x/y grid over the airfield, composed with the altitude
/// bands: the [`ScanMode::Grid`] index.
///
/// Cell width is the critical-reach envelope
/// ([`AtmConfig::critical_reach_nm`]) padded by a relative 1e-6 — strictly
/// wider than any separation the range gate's inclusive `<=` compare can
/// accept, so a pair passing the gate sits at most one cell apart per axis
/// (the f64 floor-division error is ≪ the pad under
/// [`MAX_BUCKET_MAGNITUDE`], the same argument as [`AltitudeBands`]). A
/// scan that visits the track's cell ±1 on both axes therefore sees every
/// pair the naive scan's two gates could accept. An explicit
/// `cfg.grid_cell_nm` only ever *coarsens* the cells.
///
/// Positions, like altitudes, never change during Tasks 2+3, so one index
/// per detect execution stays valid through every rotation rescan. Purely a
/// host-side wall-clock structure: the scan kernel books skipped pairs in
/// aggregate (see [`crate::detect::scan_pairs`]).
///
/// Storage is CSR over `(spatial cell, altitude bucket)` slots with the
/// bucket dimension fastest-varying: the ±1-bucket range of one spatial
/// cell is a single contiguous `idx` slice found by two O(1) offset loads,
/// so a scan touches exactly the intersection of both dimensions with no
/// per-candidate filtering and no per-cell searching.
#[derive(Clone, Debug, PartialEq)]
pub struct ConflictGrid {
    /// The altitude dimension (candidates slice on bucket ±1).
    bands: AltitudeBands,
    /// Cell width in nm as f64 (0.0 marks the degenerate single cell).
    cell_nm: f64,
    /// Cell-coordinate origin of the first slot's spatial cell.
    min_cx: i64,
    min_cy: i64,
    /// Grid extent in spatial cells.
    cols: usize,
    rows: usize,
    /// Altitude-bucket span composed into the slots (1 when `bands` is
    /// degenerate) and the bucket index of slot offset 0.
    nb: usize,
    min_b: i64,
    /// CSR offsets: slot `(cy·cols + cx)·nb + b` holds aircraft of spatial
    /// cell `(cx, cy)` and altitude bucket `min_b + b`; len `slots + 1`.
    offsets: Vec<u32>,
    /// Aircraft indices grouped by slot, ascending index within a slot.
    idx: Vec<u32>,
}

impl ConflictGrid {
    /// Build the index for one detect execution. Degenerate inputs (empty
    /// fleet, non-finite reach or positions, a cell span so wide the grid
    /// would waste memory) fall back to one catch-all cell — correct at
    /// banded cost.
    pub fn build(aircraft: &[Aircraft], cfg: &AtmConfig) -> ConflictGrid {
        let mut grid = ConflictGrid {
            bands: AltitudeBands {
                width: 0.0,
                min_bucket: 0,
                buckets: Vec::new(),
            },
            cell_nm: 0.0,
            min_cx: 0,
            min_cy: 0,
            cols: 1,
            rows: 1,
            nb: 1,
            min_b: 0,
            offsets: Vec::new(),
            idx: Vec::new(),
        };
        grid.rebuild(aircraft, cfg);
        grid
    }

    /// [`ConflictGrid::build`] in place: recompute geometry and the CSR
    /// slot table for a new fleet snapshot while reusing the `offsets` /
    /// `idx` / bucket allocations — the state after a rebuild is
    /// indistinguishable from a fresh build ([`ScanIndex::refresh`]).
    pub fn rebuild(&mut self, aircraft: &[Aircraft], cfg: &AtmConfig) {
        self.bands.rebuild(aircraft, cfg.alt_separation_ft);
        let n = aircraft.len();
        let (nb, min_b) = if self.bands.is_degenerate() {
            (1usize, 0i64)
        } else {
            (self.bands.bucket_count(), self.bands.min_bucket)
        };
        // The pad restores a strict inequality margin over the gate's
        // inclusive `<=` compare (and dwarfs the f64 division error).
        let cell = (cfg.critical_reach_nm() as f64 * 1.000_001).max(cfg.grid_cell_nm as f64);

        // Pick the spatial extent, or fall back to a single catch-all cell
        // (degenerate inputs, unbucketable positions, or a slot table so
        // large it would waste memory) — correct at banded cost either way,
        // since the bucket dimension survives the fallback.
        let mut spatial = None;
        if n > 0 && cell.is_finite() && cell > 0.0 {
            let (mut min_cx, mut max_cx) = (i64::MAX, i64::MIN);
            let (mut min_cy, mut max_cy) = (i64::MAX, i64::MIN);
            let mut bucketable = true;
            for a in aircraft {
                match (
                    AltitudeBands::bucket_for(a.x, cell),
                    AltitudeBands::bucket_for(a.y, cell),
                ) {
                    (Some(cx), Some(cy)) => {
                        min_cx = min_cx.min(cx);
                        max_cx = max_cx.max(cx);
                        min_cy = min_cy.min(cy);
                        max_cy = max_cy.max(cy);
                    }
                    _ => {
                        bucketable = false;
                        break;
                    }
                }
            }
            if bucketable {
                let cols = (max_cx as i128 - min_cx as i128) + 1;
                let rows = (max_cy as i128 - min_cy as i128) + 1;
                let cap = (4 * n as i128).max(4_096);
                if cols * rows <= cap && cols * rows * nb as i128 <= 2 * cap {
                    spatial = Some((cell, min_cx, min_cy, cols as usize, rows as usize));
                }
            }
        }
        let (cell_nm, min_cx, min_cy, cols, rows) = spatial.unwrap_or((0.0, 0, 0, 1, 1));
        self.cell_nm = cell_nm;
        self.min_cx = min_cx;
        self.min_cy = min_cy;
        self.cols = cols;
        self.rows = rows;
        self.nb = nb;
        self.min_b = min_b;

        // Counting-sort into (cell, bucket) slots, bucket fastest-varying;
        // iteration order keeps indices ascending within each slot.
        let slots = cols * rows * nb;
        let bands = &self.bands;
        let slot_of = |a: &Aircraft| -> usize {
            let spatial = if cell_nm > 0.0 {
                let cx = AltitudeBands::bucket_for(a.x, cell_nm).expect("bucketed above");
                let cy = AltitudeBands::bucket_for(a.y, cell_nm).expect("bucketed above");
                (cy - min_cy) as usize * cols + (cx - min_cx) as usize
            } else {
                0
            };
            let b = match bands.bucket_of(a.alt) {
                Some(b) => (b - min_b) as usize,
                None => 0, // degenerate bands: everyone shares slot 0
            };
            spatial * nb + b
        };
        self.offsets.clear();
        self.offsets.resize(slots + 1, 0);
        for a in aircraft {
            self.offsets[slot_of(a) + 1] += 1;
        }
        for k in 1..=slots {
            self.offsets[k] += self.offsets[k - 1];
        }
        // Place with `offsets[s]` itself as the running cursor, then undo
        // the advancement by shifting right — no scratch cursor allocation.
        self.idx.clear();
        self.idx.resize(n, 0);
        for (i, a) in aircraft.iter().enumerate() {
            let s = slot_of(a);
            self.idx[self.offsets[s] as usize] = i as u32;
            self.offsets[s] += 1;
        }
        for s in (1..=slots).rev() {
            self.offsets[s] = self.offsets[s - 1];
        }
        self.offsets[0] = 0;
    }

    /// Half-open cell-coordinate ranges covering `cell(v) ± 1` per axis.
    fn cell_ranges(&self, x: f32, y: f32) -> (usize, usize, usize, usize) {
        if self.cell_nm <= 0.0 {
            return (0, self.cols, 0, self.rows);
        }
        let clamp_axis = |c: Option<i64>, min: i64, len: usize| match c {
            Some(c) => {
                let lo = (c - 1 - min).clamp(0, len as i64);
                let hi = (c + 2 - min).clamp(0, len as i64);
                (lo as usize, hi.max(lo) as usize)
            }
            // Unbucketable query position: scan everything (cannot happen
            // for positions the grid was built from).
            None => (0, len),
        };
        let (x_lo, x_hi) = clamp_axis(
            AltitudeBands::bucket_for(x, self.cell_nm),
            self.min_cx,
            self.cols,
        );
        let (y_lo, y_hi) = clamp_axis(
            AltitudeBands::bucket_for(y, self.cell_nm),
            self.min_cy,
            self.rows,
        );
        (x_lo, x_hi, y_lo, y_hi)
    }

    /// Aircraft indices that could pass *both* scan gates against `track`:
    /// the 3×3 cell neighborhood intersected with altitude bucket ±1 (a
    /// superset — callers re-check the real f32 gates). Slots are CSR with
    /// the bucket dimension fastest-varying, so each spatial cell's
    /// ±1-bucket range is one contiguous `idx` slice found by two offset
    /// loads — the iteration count is the intersection's size, never the
    /// looser of the two dimensions alone.
    pub fn candidates<'g>(&'g self, track: &Aircraft) -> impl Iterator<Item = usize> + 'g {
        let (x_lo, x_hi, y_lo, y_hi) = self.cell_ranges(track.x, track.y);
        let (b_lo, b_hi) = match self.bands.bucket_of(track.alt) {
            Some(tb) => {
                let lo = (tb - 1 - self.min_b).clamp(0, self.nb as i64) as usize;
                let hi = (tb + 2 - self.min_b).clamp(0, self.nb as i64) as usize;
                (lo, hi.max(lo))
            }
            // Degenerate bands or unbucketable query altitude: all buckets.
            None => (0, self.nb),
        };
        (y_lo..y_hi)
            .flat_map(move |cy| (x_lo..x_hi).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| {
                let base = cell * self.nb;
                let lo = self.offsets[base + b_lo] as usize;
                let hi = self.offsets[base + b_hi] as usize;
                self.idx[lo..hi].iter().map(|&i| i as usize)
            })
    }

    /// Number of spatial cells (1 for the degenerate fallback).
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The composed altitude-band index.
    pub fn bands(&self) -> &AltitudeBands {
        &self.bands
    }
}

/// The per-execution candidate source selected by [`AtmConfig::scan`].
///
/// Backends build one with [`ScanIndex::for_config`] at the top of a detect
/// execution and thread it through [`crate::detect::check_collision_path_with`]
/// / [`crate::detect::detect_only_with`]; positions and altitudes never
/// change during Tasks 2+3, so the index stays valid across every rotation
/// rescan of every aircraft.
///
/// All routing over the variants lives here: [`ScanIndex::candidates`] is
/// the one enumeration seam the scan kernel, the wave scheduler and the AP
/// responder masks all share.
#[derive(Clone, Debug)]
pub enum ScanIndex {
    /// No index: the naive O(n²) scan (the seed path).
    Naive,
    /// Altitude-band index ([`ScanMode::Banded`]).
    Banded(AltitudeBands),
    /// Spatial grid composed with altitude bands ([`ScanMode::Grid`]).
    Grid(ConflictGrid),
    /// Dirty-cell grid sized from the measured fleet envelope
    /// ([`ScanMode::Incremental`]). As a stateless per-execution index this
    /// is a fresh all-dirty build, enumeration-equivalent to `Grid`; the
    /// cross-rescan persistence and replay cache live in
    /// [`crate::detect::IncrementalEngine`], which the persistent backends
    /// own directly.
    Incremental(IncrementalGrid),
    /// Geographic shards with boundary halos ([`AtmConfig::shards`] > 1);
    /// composes the shard partition with `cfg.scan` per shard.
    Sharded(ShardedIndex),
}

impl ScanIndex {
    /// Build the index `cfg.scan` selects for one detect execution. A shard
    /// grid ([`AtmConfig::shards`] > 1) wraps the selected scan mode in the
    /// sharded index, which builds the mode's inner index per shard.
    pub fn for_config(aircraft: &[Aircraft], cfg: &AtmConfig) -> ScanIndex {
        if cfg.shards > 1 {
            return ScanIndex::Sharded(ShardedIndex::build(aircraft, cfg));
        }
        match cfg.scan {
            ScanMode::Naive => ScanIndex::Naive,
            ScanMode::Banded => {
                ScanIndex::Banded(AltitudeBands::build(aircraft, cfg.alt_separation_ft))
            }
            ScanMode::Grid => ScanIndex::Grid(ConflictGrid::build(aircraft, cfg)),
            ScanMode::Incremental => ScanIndex::Incremental(IncrementalGrid::build(aircraft, cfg)),
        }
    }

    /// Bring an existing index up to date for a new fleet snapshot,
    /// rebuilding in place (reusing allocations) when the variant already
    /// matches what `cfg` selects, and falling back to a fresh
    /// [`ScanIndex::for_config`] on any variant change. The refreshed index
    /// is indistinguishable from a freshly built one.
    pub fn refresh(&mut self, aircraft: &[Aircraft], cfg: &AtmConfig) {
        if cfg.shards > 1 {
            // The sharded composite rebuilds wholesale: its nested
            // per-shard indexes are rebuilt by `ShardedIndex::build`.
            *self = ScanIndex::Sharded(ShardedIndex::build(aircraft, cfg));
            return;
        }
        match (&mut *self, cfg.scan) {
            (ScanIndex::Naive, ScanMode::Naive) => {}
            (ScanIndex::Banded(b), ScanMode::Banded) => b.rebuild(aircraft, cfg.alt_separation_ft),
            (ScanIndex::Grid(g), ScanMode::Grid) => g.rebuild(aircraft, cfg),
            (ScanIndex::Incremental(g), ScanMode::Incremental) => {
                g.update(aircraft, cfg);
            }
            _ => *self = ScanIndex::for_config(aircraft, cfg),
        }
    }

    /// Global candidate ids for track aircraft `i` out of a fleet of `n`: a
    /// superset of every aircraft that could pass both pair gates against
    /// `track` (callers re-check the real f32 gates, so a generous source
    /// can never change a result — only waste a visit). The self index `i`
    /// may or may not appear; consumers skip it.
    pub fn candidates<'a>(
        &'a self,
        i: usize,
        track: &'a Aircraft,
        n: usize,
    ) -> Box<dyn Iterator<Item = usize> + 'a> {
        match self {
            ScanIndex::Naive => Box::new(0..n),
            ScanIndex::Banded(b) => Box::new(b.candidates(track.alt)),
            ScanIndex::Grid(g) => Box::new(g.candidates(track)),
            ScanIndex::Incremental(g) => Box::new(g.candidates(track)),
            ScanIndex::Sharded(s) => s.candidates_for(i, track),
        }
    }

    /// The candidate set of track `i` as an associative responder mask, or
    /// `None` for the naive source (which drives the full PE array and
    /// needs no mask). The mask depends only on positions and altitudes,
    /// which never change during Tasks 2+3 — the AP backend builds it once
    /// per track. Masked associative primitives price by the PE array
    /// width, so the mask is a host wall-clock knob only.
    pub fn responder_mask(&self, i: usize, track: &Aircraft, n: usize) -> Option<ResponderSet> {
        match self {
            ScanIndex::Naive => None,
            _ => {
                let mut mask = ResponderSet::new(n);
                for p in self.candidates(i, track, n) {
                    mask.set(p);
                }
                Some(mask)
            }
        }
    }

    /// Number of owner groups the source partitions the fleet into: the
    /// shard count for the sharded source, 1 otherwise. Together with
    /// [`ScanIndex::owner_of`] this is the wave scheduler's grouping seam.
    pub fn shard_count(&self) -> usize {
        match self {
            ScanIndex::Sharded(s) => s.shard_count(),
            _ => 1,
        }
    }

    /// Owner group of aircraft `i` (always 0 for unsharded sources).
    pub fn owner_of(&self, i: usize) -> usize {
        match self {
            ScanIndex::Sharded(s) => s.owner_of(i),
            _ => 0,
        }
    }
}
