//! The single scan kernel and the fused Tasks 2+3 routines built on it.
//!
//! [`scan_pairs`] is the one place gate checks, cost booking and earliest-
//! conflict selection happen; every candidate source ([`ScanIndex`]) feeds
//! it. The naive source books per pair inline (the reference mix); every
//! pruning source books the identical mix in aggregate up front and
//! re-checks the real f32 gates per candidate against a null sink, so the
//! sink's totals — and therefore every backend's modeled time — are
//! bit-identical to the naive scan's (DESIGN.md §8, §10).

use crate::batcher::{conflict_window, same_altitude_band, within_critical_reach};
use crate::config::AtmConfig;
use crate::types::{Aircraft, NO_COLLISION};
use sim_clock::{CostSink, NullSink};

use super::index::ScanIndex;
use super::stats::{DetectStats, ScanResult};

/// Book the aggregate operation mix the naive scan accrues unconditionally
/// over a fleet of `n`: n iterations of `ialu(1); branch(false)` plus, for
/// the n−1 non-self pairs, one shared record read, the altitude gate's
/// `fadd(2); branch(false)` and the range gate's `fadd(4); branch(false)`.
/// All three sinks are purely accumulative, so totals — not call sequences
/// — determine modeled time (DESIGN.md §8).
fn book_unconditional_mix(n: u64, sink: &mut impl CostSink) {
    sink.ialu(n);
    sink.branches(3 * n - 2, false);
    sink.loads_shared(n - 1, Aircraft::RECORD_BYTES);
    sink.fadd(6 * (n - 1));
}

/// Fold candidate `p`'s conflict window into the running earliest-critical
/// selection: the conditional tail every visited pair shares, after the
/// gates passed. Books the window itself and the hit branch to `sink`.
///
/// Selection is the lexicographic minimum over `(tmin, p)`. The naive scan
/// historically kept the *first* pair at a tied `tmin` (`best <= tmin`
/// keeps the incumbent), but under its ascending index order the first pair
/// at a tie is exactly the smallest `p` — so the explicit lexicographic
/// rule picks the identical pair for every enumeration order, which is what
/// lets one kernel serve sources that visit candidates bucket-by-bucket or
/// cell-by-cell instead of in index order.
#[inline]
fn fold_window(
    track: &Aircraft,
    vel: (f32, f32),
    trial: &Aircraft,
    p: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
    earliest: &mut Option<(usize, f32)>,
) {
    if let Some((tmin, _tmax)) = conflict_window(
        track,
        vel,
        trial,
        cfg.separation_nm,
        cfg.horizon_periods,
        sink,
    ) {
        sink.branch(true);
        if tmin < cfg.critical_periods {
            match *earliest {
                Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                _ => *earliest = Some((p, tmin)),
            }
        }
    }
}

/// One full scan of aircraft `i` (with trial velocity `vel`) against the
/// fleet: the Task 2 half, over any candidate source.
///
/// Each non-self pair passes through two data-independent gates — altitude
/// band and critical reach — and only pairs passing both count as a check
/// and evaluate their conflict window. The naive source walks every pair
/// and books per pair, both gates evaluated unconditionally
/// (predicated, lockstep-style — the SIMD substrates execute both sides of
/// a divergence anyway), so every skipped pair books the same fixed mix
/// regardless of *which* gate rejected it. Pruning sources rely on exactly
/// that: they book the identical mix in aggregate via
/// [`book_unconditional_mix`] and visit only their candidate superset,
/// re-checking the real gates against a null sink. Result, check count and
/// booked totals are bit-identical across every source.
///
/// Read-only; backends that cannot mutate shared state mid-scan (the
/// threaded MIMD implementation) drive the rotation loop themselves around
/// this function.
pub fn scan_pairs(
    aircraft: &[Aircraft],
    index: &ScanIndex,
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    if matches!(index, ScanIndex::Naive) {
        for (p, trial) in aircraft.iter().enumerate() {
            sink.ialu(1);
            sink.branch(false);
            if p == i {
                continue;
            }
            // Every track thread walks the same shared aircraft array.
            sink.load_shared(Aircraft::RECORD_BYTES);
            let same_band = same_altitude_band(track, trial, cfg.alt_separation_ft, sink);
            let in_reach = within_critical_reach(track, trial, reach, sink);
            if !(same_band && in_reach) {
                continue;
            }
            checks += 1;
            fold_window(track, vel, trial, p, cfg, sink, &mut earliest);
        }
    } else {
        return scan_candidates_booked_inner(
            aircraft,
            i,
            vel,
            cfg,
            index.candidates(i, track, aircraft.len()),
            sink,
        );
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// The pruning-source half of [`scan_pairs`]: book the full unconditional
/// mix in aggregate, then visit only the given candidate superset,
/// re-checking the real f32 gates against a null sink (their cost is
/// already in the aggregate). Shared by every pruning enumerator —
/// including the incremental dirty-cell source, whose live rescans must
/// book exactly what a full-rebuild grid scan would.
fn scan_candidates_booked_inner(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    candidates: impl Iterator<Item = usize>,
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    book_unconditional_mix(aircraft.len() as u64, sink);
    for p in candidates {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        // Re-check the real f32 gates (candidates are a superset); their
        // cost is already in the aggregate above, so book to a null sink.
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        fold_window(track, vel, trial, p, cfg, sink, &mut earliest);
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// [`scan_pairs`]' pruning-source scan over an explicit candidate slice:
/// the *booked* sibling of [`scan_candidate_list`]. Identical result,
/// check count and sink totals to running [`scan_pairs`] over any pruning
/// [`ScanIndex`] that enumerates a candidate superset with the same
/// gate-passer set — the primitive the incremental engine's live rescans
/// are built on.
pub fn scan_candidate_list_booked(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    candidates: &[u32],
    sink: &mut impl CostSink,
) -> ScanResult {
    scan_candidates_booked_inner(
        aircraft,
        i,
        vel,
        cfg,
        candidates.iter().map(|&p| p as usize),
        sink,
    )
}

/// The shard-worker sibling of [`scan_candidate_list_booked`]: scan a track
/// held in a shard's gathered *member* records (owned + halo, as exported
/// by `ShardedIndex` / the wire codec) against local candidate ids,
/// reporting **global** ids and booking the aggregate mix of the global
/// fleet size `global_n`.
///
/// `recs[l]` must be the record of global aircraft `members[l]` and `li`
/// the track's local position. Because the aggregate booking depends only
/// on the global fleet size, and the earliest-critical fold is the
/// order-independent lexicographic minimum over global `(tmin, p)`, a
/// worker holding only its member slice produces the exact result, check
/// count and sink totals the in-process scan produces from the full fleet —
/// the property that makes the process-per-shard transport byte-identical.
#[allow(clippy::too_many_arguments)] // the in-process signature + (members, global_n)
pub fn scan_member_list_booked(
    recs: &[Aircraft],
    members: &[u32],
    li: usize,
    global_n: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    candidates: &[u32],
    sink: &mut impl CostSink,
) -> ScanResult {
    let track = &recs[li];
    let reach = cfg.critical_reach_nm();
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    book_unconditional_mix(global_n as u64, sink);
    for &lp in candidates {
        let lp = lp as usize;
        if lp == li {
            continue;
        }
        let trial = &recs[lp];
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        fold_window(
            track,
            vel,
            trial,
            members[lp] as usize,
            cfg,
            sink,
            &mut earliest,
        );
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// The shared gate-and-fold body of the partial-scan primitives: visit the
/// given candidates, apply both pair gates, fold survivors into the running
/// earliest-critical selection. No cost booking — the partial scans exist
/// for *measured* backends, whose cost is real wall time; modeled paths go
/// through [`scan_pairs`].
fn scan_candidates_unbooked(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    candidates: impl Iterator<Item = usize>,
) -> ScanResult {
    let track = &aircraft[i];
    let reach = cfg.critical_reach_nm();
    let mut earliest: Option<(usize, f32)> = None;
    let mut checks = 0u64;
    for p in candidates {
        if p == i {
            continue;
        }
        let trial = &aircraft[p];
        if !same_altitude_band(track, trial, cfg.alt_separation_ft, &mut NullSink)
            || !within_critical_reach(track, trial, reach, &mut NullSink)
        {
            continue;
        }
        checks += 1;
        fold_window(track, vel, trial, p, cfg, &mut NullSink, &mut earliest);
    }
    ScanResult {
        critical: earliest,
        checks,
    }
}

/// Partial naive scan over one contiguous index subrange: the same gates,
/// fold rule and check counting as [`scan_pairs`] over `ScanIndex::Naive`,
/// restricted to `range`. Merging the per-range results of a disjoint cover
/// of `0..n` via [`ScanResult::merge`] reproduces the full scan exactly —
/// the chunk primitive of the measured thread-pool backend.
pub fn scan_pair_range(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    range: std::ops::Range<usize>,
) -> ScanResult {
    scan_candidates_unbooked(aircraft, i, vel, cfg, range)
}

/// Partial pruned scan over an explicit candidate slice (as produced by
/// [`ScanIndex::candidates`], in any order): the pruning-source half of
/// [`scan_pairs`] without the aggregate cost booking. Splitting one
/// enumeration across slices and merging via [`ScanResult::merge`]
/// reproduces the full scan exactly.
pub fn scan_candidate_list(
    aircraft: &[Aircraft],
    i: usize,
    vel: (f32, f32),
    cfg: &AtmConfig,
    candidates: &[u32],
) -> ScanResult {
    scan_candidates_unbooked(
        aircraft,
        i,
        vel,
        cfg,
        candidates.iter().map(|&p| p as usize),
    )
}

/// Rotate a velocity vector by `angle` radians (the Task 3 course change).
pub fn rotate_velocity(vel: (f32, f32), angle: f32, sink: &mut impl CostSink) -> (f32, f32) {
    sink.sfu(2); // sin + cos
    sink.fmul(4);
    sink.fadd(2);
    let (s, c) = angle.sin_cos();
    (vel.0 * c - vel.1 * s, vel.0 * s + vel.1 * c)
}

/// The fused Tasks 2+3 routine for track aircraft `i` (the paper's
/// `CheckCollisionPath` kernel body). Mutates `aircraft[i]` (trial path,
/// committed path, collision bookkeeping) and the collision flags of the
/// partner aircraft it conflicts with, exactly as Algorithm 2 describes.
pub fn check_collision_path(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    check_collision_path_with(aircraft, &ScanIndex::Naive, i, cfg, sink)
}

/// [`check_collision_path`] over a prebuilt [`ScanIndex`]: identical
/// mutations, stats and booked cost totals, fewer candidate visits. The
/// index stays valid across the internal rotation rescans (positions and
/// altitudes do not change) and across all aircraft of one detect
/// execution.
pub fn check_collision_path_with(
    aircraft: &mut [Aircraft],
    index: &ScanIndex,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    check_collision_path_scanned(aircraft, i, cfg, sink, |ac, i, vel, sink| {
        scan_pairs(ac, index, i, vel, cfg, sink)
    })
}

/// The fused-routine driver over a caller-supplied *scanner*: the exact
/// mutation cascade of [`check_collision_path_with`] (reset, mark, rotate,
/// commit — every store in the same order) with the Task 2 scan abstracted
/// out. `scan` must return what [`scan_pairs`] would for the same
/// `(aircraft, i, vel)` — the measured backends substitute a thread-pool
/// chunked scan or a structure-of-arrays scan here, which is what makes
/// their outputs byte-identical to the sequential reference by
/// construction: the cascade is shared code, and the scanners are proven
/// result-identical separately.
pub fn check_collision_path_scanned<S, F>(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut S,
    mut scan: F,
) -> DetectStats
where
    S: CostSink,
    F: FnMut(&[Aircraft], usize, (f32, f32), &mut S) -> ScanResult,
{
    let mut stats = DetectStats::default();

    // Reset this aircraft's horizon bookkeeping (Algorithm 2 init).
    aircraft[i].time_till = cfg.critical_periods;
    aircraft[i].batx = aircraft[i].dx;
    aircraft[i].baty = aircraft[i].dy;
    sink.store(12);

    let rotations = cfg.rotation_sequence();
    let mut next_rotation = 0usize;
    let mut vel = (aircraft[i].dx, aircraft[i].dy);
    let mut chk = 0u32; // course corrections attempted (paper's `chk`)

    loop {
        let scan = scan(aircraft, i, vel, sink);
        stats.pair_checks += scan.checks;

        let Some((partner, tmin)) = scan.critical else {
            break; // current (trial) path is clear of critical conflicts
        };
        stats.critical_conflicts += 1;

        // Mark both aircraft (Algorithm 2 line 9).
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        aircraft[partner].col = true;
        aircraft[partner].col_with = i as i32;
        aircraft[partner].time_till = aircraft[partner].time_till.min(tmin);
        sink.store(24);

        sink.branch(false);
        if next_rotation >= rotations.len() {
            // Angle sequence exhausted: keep the original path, leave the
            // conflict flagged for altitude-based resolution.
            stats.unresolved += 1;
            aircraft[i].batx = aircraft[i].dx;
            aircraft[i].baty = aircraft[i].dy;
            sink.store(8);
            return stats;
        }

        // Task 3: rotate the *original* path by the next angle in the
        // sequence and rescan from the top (the paper's loop reset).
        let base = (aircraft[i].dx, aircraft[i].dy);
        vel = rotate_velocity(base, rotations[next_rotation], sink);
        next_rotation += 1;
        chk += 1;
        stats.rotations += 1;
        aircraft[i].batx = vel.0;
        aircraft[i].baty = vel.1;
        sink.store(8);
    }

    sink.branch(false);
    if chk > 0 {
        // Commit the collision-free trial path and clear the flags
        // (Algorithm 2 line 12).
        aircraft[i].dx = vel.0;
        aircraft[i].dy = vel.1;
        aircraft[i].col = false;
        aircraft[i].col_with = NO_COLLISION;
        aircraft[i].time_till = cfg.critical_periods;
        sink.store(20);
        stats.resolved += 1;
    }
    stats
}

/// Detection without resolution (the split-kernel ablation's Task 2): one
/// scan with the committed velocity, flag critical conflicts, change
/// nothing else. Returns the stats of the scan.
pub fn detect_only(
    aircraft: &mut [Aircraft],
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    detect_only_with(aircraft, &ScanIndex::Naive, i, cfg, sink)
}

/// [`detect_only`] over a prebuilt [`ScanIndex`] (same contract as
/// [`check_collision_path_with`]).
pub fn detect_only_with(
    aircraft: &mut [Aircraft],
    index: &ScanIndex,
    i: usize,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut stats = DetectStats::default();
    aircraft[i].time_till = cfg.critical_periods;
    sink.store(4);
    let vel = (aircraft[i].dx, aircraft[i].dy);
    let scan = scan_pairs(aircraft, index, i, vel, cfg, sink);
    stats.pair_checks = scan.checks;
    if let Some((partner, tmin)) = scan.critical {
        stats.critical_conflicts = 1;
        aircraft[i].col = true;
        aircraft[i].col_with = partner as i32;
        aircraft[i].time_till = tmin;
        sink.store(12);
    }
    stats
}

/// Sequential reference driver: run the fused routine for every aircraft in
/// index order and fold the stats. Honors [`AtmConfig::scan`]: one
/// [`ScanIndex`] is built up front and reused for every aircraft (positions
/// and altitudes never change during Tasks 2+3).
pub fn detect_resolve_all(
    aircraft: &mut [Aircraft],
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let index = ScanIndex::for_config(aircraft, cfg);
    detect_resolve_indexed(aircraft, &index, cfg, sink)
}

/// [`detect_resolve_all`] over a caller-owned [`ScanIndex`]: the driver
/// loop without the index build, so backends that keep an index alive
/// across rescans ([`ScanIndex::refresh`]) skip the per-rescan allocation
/// churn. The index must describe the current fleet (same positions,
/// altitudes and length).
pub fn detect_resolve_indexed(
    aircraft: &mut [Aircraft],
    index: &ScanIndex,
    cfg: &AtmConfig,
    sink: &mut impl CostSink,
) -> DetectStats {
    let mut total = DetectStats::default();
    for i in 0..aircraft.len() {
        total.absorb(&check_collision_path_with(aircraft, index, i, cfg, sink));
    }
    total
}
