use super::*;
use crate::config::{AtmConfig, ScanMode};
use crate::types::Aircraft;
use sim_clock::NullSink;

fn cfg() -> AtmConfig {
    AtmConfig::default()
}

/// Two aircraft, head-on at the same altitude, colliding within the
/// critical window (gap 28 nm, closing 0.1 nm/period → conflict from
/// t = 250 < 300, and far enough out that a ≤30° turn can clear it).
fn head_on_pair() -> Vec<Aircraft> {
    vec![
        Aircraft::at(0.0, 0.0)
            .with_velocity(0.05, 0.0)
            .with_altitude(10_000.0),
        Aircraft::at(28.0, 0.0)
            .with_velocity(-0.05, 0.0)
            .with_altitude(10_000.0),
    ]
}

#[test]
fn head_on_pair_is_detected_and_resolved() {
    let mut ac = head_on_pair();
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert!(s.critical_conflicts >= 1);
    assert!(s.rotations >= 1);
    assert_eq!(s.resolved, 1);
    assert!(!ac[0].col, "flags cleared after committing a clear path");
    // The committed path really is conflict-free.
    let s2 = detect_only(&mut ac.clone(), 0, &cfg(), &mut NullSink);
    assert_eq!(s2.critical_conflicts, 0);
}

#[test]
fn resolution_preserves_speed() {
    let mut ac = head_on_pair();
    let speed_before = ac[0].speed();
    check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert!(
        (ac[0].speed() - speed_before).abs() < 1e-6,
        "rotation must not change speed"
    );
}

#[test]
fn distant_pair_is_left_alone() {
    let mut ac = vec![
        Aircraft::at(-100.0, -100.0).with_velocity(0.01, 0.0),
        Aircraft::at(100.0, 100.0).with_velocity(-0.01, 0.0),
    ];
    let before = ac.clone();
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert_eq!(s.critical_conflicts, 0);
    assert_eq!(s.rotations, 0);
    assert_eq!(ac[0].dx, before[0].dx);
    assert!(!ac[0].col);
}

#[test]
fn altitude_separated_pair_is_not_a_conflict() {
    let mut ac = head_on_pair();
    ac[1].alt = ac[0].alt + 2_000.0;
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert_eq!(s.pair_checks, 0, "altitude gate must skip the pair");
    assert_eq!(s.critical_conflicts, 0);
}

#[test]
fn non_critical_far_future_conflict_is_not_resolved() {
    // Conflict at t ≈ 1000 periods: inside the horizon, outside the
    // 300-period critical window (and outside critical reach, so the
    // range gate already excludes it) → the pair is left to resolve
    // naturally.
    let mut ac = vec![
        Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0),
        Aircraft::at(100.0, 0.0).with_velocity(-0.05, 0.0),
    ];
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert_eq!(s.critical_conflicts, 0);
    assert_eq!(s.rotations, 0);
}

#[test]
fn partner_is_flagged_during_detection() {
    let mut ac = head_on_pair();
    // Use detect_only so the flags survive (the fused routine clears
    // its own after resolving).
    detect_only(&mut ac, 0, &cfg(), &mut NullSink);
    assert!(ac[0].col);
    assert_eq!(ac[0].col_with, 1);
    assert!(ac[0].time_till < cfg().critical_periods);
}

#[test]
fn fused_routine_flags_partner_while_resolving() {
    let mut ac = head_on_pair();
    check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    // Aircraft 0 resolved itself; the partner keeps the conflict mark
    // until its own turn (matching the kernel's behaviour).
    assert!(ac[1].col);
    assert_eq!(ac[1].col_with, 0);
}

#[test]
fn dense_crowd_can_be_unresolvable() {
    // Ring of aircraft all converging on the origin at the same
    // altitude: no 30° rotation escapes.
    let n = 24;
    let mut ac: Vec<Aircraft> = (0..n)
        .map(|k| {
            let ang = k as f32 * std::f32::consts::TAU / n as f32;
            let r = 5.0;
            Aircraft::at(r * ang.cos(), r * ang.sin())
                .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                .with_altitude(10_000.0)
        })
        .collect();
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut NullSink);
    assert!(s.unresolved == 1 || s.resolved == 1);
    if s.unresolved == 1 {
        // Original path kept, conflict flagged.
        assert!(ac[0].col);
        assert!((ac[0].dx + 0.05).abs() < 1e-6);
    }
}

#[test]
fn rotations_escalate_through_the_sequence() {
    let mut ac = head_on_pair();
    let mut counter = sim_clock::OpCounter::new();
    let s = check_collision_path(&mut ac, 0, &cfg(), &mut counter);
    // Each rotation costs two SFU ops (sin+cos).
    assert_eq!(counter.count(sim_clock::OpClass::Sfu), 2 * s.rotations);
    assert!(s.rotations <= 12, "sequence is bounded at ±30°");
}

#[test]
fn rotate_velocity_is_a_rotation() {
    let v = rotate_velocity((1.0, 0.0), std::f32::consts::FRAC_PI_2, &mut NullSink);
    assert!(v.0.abs() < 1e-6);
    assert!((v.1 - 1.0).abs() < 1e-6);
    let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
    assert!((mag - 1.0).abs() < 1e-6);
}

#[test]
fn detect_resolve_all_folds_stats() {
    let mut ac = head_on_pair();
    let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
    assert!(s.pair_checks >= 2);
    // At least one of the pair had to act.
    assert!(s.rotations >= 1);
}

#[test]
fn single_aircraft_has_nothing_to_check() {
    let mut ac = vec![Aircraft::at(0.0, 0.0).with_velocity(0.05, 0.0)];
    let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
    assert_eq!(s.pair_checks, 0);
    assert_eq!(s.critical_conflicts, 0);
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let mut ac = head_on_pair();
        let s = detect_resolve_all(&mut ac, &cfg(), &mut NullSink);
        (s, ac)
    };
    assert_eq!(mk(), mk());
}

/// A small deterministic fleet spread over several altitude bands with
/// real conflicts in it.
fn banded_fleet() -> Vec<Aircraft> {
    let mut ac = Vec::new();
    for k in 0..40u32 {
        let ang = k as f32 * 0.7;
        let alt = 5_000.0 + (k % 7) as f32 * 900.0; // straddles bands
        ac.push(
            Aircraft::at(30.0 * ang.cos(), 30.0 * ang.sin())
                .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                .with_altitude(alt),
        );
    }
    ac
}

/// Per-aircraft differential check: [`scan_pairs`] over `index` must match
/// the naive source in result *and* booked cost totals, for every track of
/// the fleet.
fn assert_scan_matches_naive(ac: &[Aircraft], index: &ScanIndex, c: &AtmConfig, label: &str) {
    for i in 0..ac.len() {
        let vel = (ac[i].dx, ac[i].dy);
        let mut cn = sim_clock::OpCounter::new();
        let mut cf = sim_clock::OpCounter::new();
        let rn = scan_pairs(ac, &ScanIndex::Naive, i, vel, c, &mut cn);
        let rf = scan_pairs(ac, index, i, vel, c, &mut cf);
        assert_eq!(rn, rf, "{label}: scan result must match for aircraft {i}");
        assert_eq!(
            cn, cf,
            "{label}: booked cost totals must match for aircraft {i}"
        );
    }
}

#[test]
fn banded_scan_matches_naive_scan_exactly() {
    let ac = banded_fleet();
    let index = ScanIndex::Banded(AltitudeBands::build(&ac, cfg().alt_separation_ft));
    assert_scan_matches_naive(&ac, &index, &cfg(), "banded");
}

#[test]
fn grid_scan_matches_naive_scan_exactly() {
    let ac = banded_fleet();
    let index = ScanIndex::Grid(ConflictGrid::build(&ac, &cfg()));
    assert_scan_matches_naive(&ac, &index, &cfg(), "grid");
}

#[test]
fn fast_path_detect_resolve_matches_naive_end_to_end() {
    let run = |mode: ScanMode| {
        let mut ac = banded_fleet();
        let mut ops = sim_clock::OpCounter::new();
        let c = AtmConfig {
            scan: mode,
            ..cfg()
        };
        let s = detect_resolve_all(&mut ac, &c, &mut ops);
        (ac, s, ops)
    };
    let naive = run(ScanMode::Naive);
    for mode in [ScanMode::Banded, ScanMode::Grid, ScanMode::Incremental] {
        let fast = run(mode);
        assert_eq!(
            naive.0, fast.0,
            "{mode:?}: mutated fleets must be identical"
        );
        assert_eq!(naive.1, fast.1, "{mode:?}: DetectStats must be identical");
        assert_eq!(naive.2, fast.2, "{mode:?}: cost totals must be identical");
    }
    assert!(
        naive.1.critical_conflicts > 0,
        "fleet should have conflicts"
    );
}

#[test]
fn bands_prune_candidates_but_cover_all_gate_passers() {
    let ac = banded_fleet();
    let sep = cfg().alt_separation_ft;
    let bands = AltitudeBands::build(&ac, sep);
    assert!(bands.bucket_count() > 1, "fleet spans several bands");
    for i in 0..ac.len() {
        let cands: Vec<usize> = bands.candidates(ac[i].alt).collect();
        assert!(cands.len() < ac.len(), "banding should prune aircraft {i}");
        for p in 0..ac.len() {
            if p != i && (ac[i].alt - ac[p].alt).abs() < sep {
                assert!(cands.contains(&p), "gate-passing pair ({i},{p}) missed");
            }
        }
    }
}

#[test]
fn degenerate_band_width_falls_back_to_one_bucket() {
    let ac = banded_fleet();
    for width in [0.0_f32, -5.0, f32::NAN, f32::INFINITY] {
        let bands = AltitudeBands::build(&ac, width);
        assert_eq!(bands.bucket_count(), 1);
        assert_eq!(bands.candidates(ac[0].alt).count(), ac.len());
    }
    assert_eq!(AltitudeBands::build(&[], 1_000.0).bucket_count(), 1);
}

#[test]
fn detect_only_fast_paths_match_naive() {
    let base = banded_fleet();
    let indices = [
        ScanIndex::Banded(AltitudeBands::build(&base, cfg().alt_separation_ft)),
        ScanIndex::Grid(ConflictGrid::build(&base, &cfg())),
    ];
    for index in &indices {
        for i in 0..base.len() {
            let mut an = base.clone();
            let mut af = base.clone();
            let mut cn = sim_clock::OpCounter::new();
            let mut cf = sim_clock::OpCounter::new();
            let sn = detect_only(&mut an, i, &cfg(), &mut cn);
            let sf = detect_only_with(&mut af, index, i, &cfg(), &mut cf);
            assert_eq!(sn, sf);
            assert_eq!(an, af);
            assert_eq!(cn, cf);
        }
    }
}

/// A fleet wide enough to span several grid cells (the banded fleet
/// sits at radius 30 nm, inside one ~56 nm cell of its neighbors).
fn spread_fleet() -> Vec<Aircraft> {
    let mut ac = Vec::new();
    for k in 0..60u32 {
        let ang = k as f32 * 0.47;
        let r = 20.0 + (k % 9) as f32 * 12.0; // radii 20..116 nm
        let alt = 5_000.0 + (k % 5) as f32 * 700.0;
        ac.push(
            Aircraft::at(r * ang.cos(), r * ang.sin())
                .with_velocity(-0.05 * ang.cos(), -0.05 * ang.sin())
                .with_altitude(alt),
        );
    }
    ac
}

#[test]
fn grid_prunes_candidates_but_covers_all_gate_passers() {
    let ac = spread_fleet();
    let c = cfg();
    let grid = ConflictGrid::build(&ac, &c);
    assert!(grid.cell_count() > 1, "fleet spans several cells");
    let reach = c.critical_reach_nm();
    let mut pruned_somewhere = false;
    for i in 0..ac.len() {
        let cands: Vec<usize> = grid.candidates(&ac[i]).collect();
        pruned_somewhere |= cands.len() < ac.len();
        for p in 0..ac.len() {
            let both_gates = (ac[i].alt - ac[p].alt).abs() < c.alt_separation_ft
                && (ac[i].x - ac[p].x).abs() <= reach
                && (ac[i].y - ac[p].y).abs() <= reach;
            if p != i && both_gates {
                assert!(cands.contains(&p), "gate-passing pair ({i},{p}) missed");
            }
        }
    }
    assert!(pruned_somewhere, "grid should prune at least one scan");
}

#[test]
fn grid_detect_resolve_matches_naive_on_a_spread_fleet() {
    let run = |mode: ScanMode| {
        let mut ac = spread_fleet();
        let mut ops = sim_clock::OpCounter::new();
        let c = AtmConfig {
            scan: mode,
            ..cfg()
        };
        let s = detect_resolve_all(&mut ac, &c, &mut ops);
        (ac, s, ops)
    };
    let naive = run(ScanMode::Naive);
    let grid = run(ScanMode::Grid);
    assert_eq!(naive, grid);
}

#[test]
fn degenerate_grid_falls_back_to_one_cell() {
    let ac = spread_fleet();
    // Non-finite reach (degenerate separation) → one catch-all cell.
    let c = AtmConfig {
        separation_nm: f32::NAN,
        ..cfg()
    };
    let grid = ConflictGrid::build(&ac, &c);
    assert_eq!(grid.cell_count(), 1);
    // Candidates still altitude-filtered through the composed bands.
    assert!(grid.candidates(&ac[0]).count() <= ac.len());
    // Non-finite positions → unbucketable → one catch-all cell.
    let mut bad = ac.clone();
    bad[3].x = f32::NAN;
    let grid = ConflictGrid::build(&bad, &cfg());
    assert_eq!(grid.cell_count(), 1);
    assert_eq!(ConflictGrid::build(&[], &cfg()).cell_count(), 1);
}

#[test]
fn explicit_cell_size_only_coarsens_the_grid() {
    let ac = spread_fleet();
    let auto = ConflictGrid::build(&ac, &cfg());
    // A finer request than the envelope is clamped up to it.
    let fine = ConflictGrid::build(
        &ac,
        &AtmConfig {
            grid_cell_nm: 1.0,
            ..cfg()
        },
    );
    assert_eq!(fine.cell_count(), auto.cell_count());
    // A coarser request is honored and still covers every pair.
    let coarse_cfg = AtmConfig {
        grid_cell_nm: 200.0,
        scan: ScanMode::Grid,
        ..cfg()
    };
    let coarse = ConflictGrid::build(&ac, &coarse_cfg);
    assert!(coarse.cell_count() <= auto.cell_count());
    let mut a1 = ac.clone();
    let mut a2 = ac.clone();
    let s1 = detect_resolve_all(&mut a1, &cfg(), &mut NullSink);
    let s2 = detect_resolve_all(&mut a2, &coarse_cfg, &mut NullSink);
    assert_eq!(s1, s2);
    assert_eq!(a1, a2);
}

#[test]
fn scan_index_follows_the_config() {
    let ac = banded_fleet();
    let for_mode = |m| ScanIndex::for_config(&ac, &AtmConfig { scan: m, ..cfg() });
    assert!(matches!(for_mode(ScanMode::Naive), ScanIndex::Naive));
    assert!(matches!(for_mode(ScanMode::Banded), ScanIndex::Banded(_)));
    assert!(matches!(for_mode(ScanMode::Grid), ScanIndex::Grid(_)));
    let sharded = ScanIndex::for_config(&ac, &AtmConfig { shards: 4, ..cfg() });
    assert!(matches!(sharded, ScanIndex::Sharded(_)));
}

#[test]
fn sharded_scan_matches_naive_scan_exactly() {
    for fleet in [banded_fleet(), spread_fleet()] {
        for scan in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            let c = AtmConfig {
                shards: 4,
                scan,
                ..cfg()
            };
            let index = ScanIndex::Sharded(crate::shard::ShardedIndex::build(&fleet, &c));
            assert_scan_matches_naive(&fleet, &index, &c, &format!("sharded {scan:?}"));
        }
    }
}

#[test]
fn sharded_detect_resolve_matches_naive_end_to_end() {
    let run = |shards: usize, mode: ScanMode| {
        let mut ac = banded_fleet();
        let mut ops = sim_clock::OpCounter::new();
        let c = AtmConfig {
            shards,
            scan: mode,
            ..cfg()
        };
        let s = detect_resolve_all(&mut ac, &c, &mut ops);
        (ac, s, ops)
    };
    let naive = run(1, ScanMode::Naive);
    for shards in [2usize, 4] {
        for mode in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            let sharded = run(shards, mode);
            assert_eq!(
                naive.0, sharded.0,
                "shards={shards} {mode:?}: mutated fleets must be identical"
            );
            assert_eq!(
                naive.1, sharded.1,
                "shards={shards} {mode:?}: DetectStats must be identical"
            );
            assert_eq!(
                naive.2, sharded.2,
                "shards={shards} {mode:?}: cost totals must be identical"
            );
        }
    }
    assert!(naive.1.critical_conflicts > 0);
}

#[test]
fn responder_mask_mirrors_the_candidate_set() {
    let ac = spread_fleet();
    let n = ac.len();
    let c = cfg();
    let sources = [
        ScanIndex::Naive,
        ScanIndex::Banded(AltitudeBands::build(&ac, c.alt_separation_ft)),
        ScanIndex::Grid(ConflictGrid::build(&ac, &c)),
        ScanIndex::Sharded(crate::shard::ShardedIndex::build(
            &ac,
            &AtmConfig { shards: 4, ..cfg() },
        )),
    ];
    for index in &sources {
        for (i, track) in ac.iter().enumerate() {
            match index.responder_mask(i, track, n) {
                None => assert!(
                    matches!(index, ScanIndex::Naive),
                    "only the naive source drives the full PE array"
                ),
                Some(mask) => {
                    let cands: Vec<usize> = index.candidates(i, track, n).collect();
                    for p in 0..n {
                        assert_eq!(
                            mask.get(p),
                            cands.contains(&p),
                            "mask/candidate mismatch at track {i}, pe {p}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn owner_routing_is_trivial_for_unsharded_sources() {
    let ac = banded_fleet();
    let c = cfg();
    for index in [
        ScanIndex::Naive,
        ScanIndex::Banded(AltitudeBands::build(&ac, c.alt_separation_ft)),
        ScanIndex::Grid(ConflictGrid::build(&ac, &c)),
    ] {
        assert_eq!(index.shard_count(), 1);
        assert!((0..ac.len()).all(|i| index.owner_of(i) == 0));
    }
    let sharded = ScanIndex::for_config(&ac, &AtmConfig { shards: 4, ..cfg() });
    assert_eq!(sharded.shard_count(), 16);
    let s = crate::shard::ShardedIndex::build(&ac, &AtmConfig { shards: 4, ..cfg() });
    assert!((0..ac.len()).all(|i| sharded.owner_of(i) == s.owner_of(i)));
}
