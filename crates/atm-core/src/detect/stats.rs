//! Outcome counters and scan results shared by every detect entry point.

/// Outcome counters of one Tasks 2+3 execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Pair windows evaluated (Batcher computations).
    pub pair_checks: u64,
    /// Critical conflicts encountered (before resolution).
    pub critical_conflicts: u64,
    /// Path rotations attempted.
    pub rotations: u64,
    /// Aircraft whose path was changed to a conflict-free trial.
    pub resolved: u64,
    /// Aircraft left with an unresolvable critical conflict.
    pub unresolved: u64,
}

impl DetectStats {
    /// Fold another aircraft's stats into this total.
    pub fn absorb(&mut self, s: &DetectStats) {
        self.pair_checks += s.pair_checks;
        self.critical_conflicts += s.critical_conflicts;
        self.rotations += s.rotations;
        self.resolved += s.resolved;
        self.unresolved += s.unresolved;
    }
}

/// Dirty-cell hit-rate counters of one incremental rescan: how much of
/// the fleet's scan work was actually redone versus replayed from the
/// clean-pair cache. Purely observational — the counters never feed back
/// into scan results or cost bookings, so surfacing them cannot perturb
/// artifact bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanActivity {
    /// Grid slots marked dirty during the update pass (each slot counted
    /// once per rescan, however many aircraft touched it).
    pub cells_dirty: u64,
    /// Pair windows evaluated by live scans this rescan.
    pub pairs_rescanned: u64,
    /// Pair windows replayed from the clean-pair cache (booked, not
    /// re-evaluated).
    pub pairs_replayed: u64,
    /// Aircraft whose first scan ran live this rescan.
    pub scans_live: u64,
    /// Aircraft whose first scan was replayed from cache this rescan.
    pub scans_replayed: u64,
}

impl ScanActivity {
    /// Fold another rescan's counters into this total.
    pub fn absorb(&mut self, s: &ScanActivity) {
        self.cells_dirty += s.cells_dirty;
        self.pairs_rescanned += s.pairs_rescanned;
        self.pairs_replayed += s.pairs_replayed;
        self.scans_live += s.scans_live;
        self.scans_replayed += s.scans_replayed;
    }
}

/// Result of scanning one track aircraft against the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanResult {
    /// Earliest critical conflict: (partner index, window start).
    pub critical: Option<(usize, f32)>,
    /// Pairs examined.
    pub checks: u64,
}

impl ScanResult {
    /// The empty scan: no conflict, no pairs examined. Identity of
    /// [`ScanResult::merge`].
    pub const CLEAR: ScanResult = ScanResult {
        critical: None,
        checks: 0,
    };

    /// Fold a partial scan into this one. Selection is the lexicographic
    /// minimum over `(tmin, partner)` — the same tie rule the scan kernel's
    /// running fold uses — so merging per-chunk partial scans in any order
    /// yields exactly the full scan's result (min over a set is associative
    /// and commutative), which is what lets measured backends split one
    /// scan across worker threads without perturbing a single output bit.
    pub fn merge(self, other: ScanResult) -> ScanResult {
        let critical = match (self.critical, other.critical) {
            (Some((ap, at)), Some((bp, bt))) => {
                if bt < at || (bt == at && bp < ap) {
                    Some((bp, bt))
                } else {
                    Some((ap, at))
                }
            }
            (a, b) => a.or(b),
        };
        ScanResult {
            critical,
            checks: self.checks + other.checks,
        }
    }
}
