//! Structure-of-arrays gate kernel: the measured `simd-soa` scan path.
//!
//! [`SoaFleet`] holds the fleet's scan-relevant fields as five split `f32`
//! arrays (x, y, alt, dx, dy). The scan runs in two passes, in the lockstep
//! idiom of SIMD-X-style data-parallel kernels:
//!
//! 1. **gate pass** — a lane-chunked, branch-free loop over the candidates:
//!    both pair gates (altitude band, critical reach) evaluate as masks and
//!    survivors compact into a scratch buffer by predicated store
//!    (`buf[k] = p; k += keep`), so the inner loop has no data-dependent
//!    branches and is amenable to autovectorization;
//! 2. **window pass** — the (sparse) survivors evaluate Batcher's conflict
//!    window on relative kinematics computed straight from the split
//!    arrays ([`crate::batcher::conflict_window_raw`]) and fold into the
//!    earliest-critical selection under the scan kernel's lexicographic
//!    `(tmin, partner)` tie rule.
//!
//! Every f32 operation appears in the same form and operand order as the
//! array-of-structs reference (`track − trial` in the gates, `trial −
//! track` in the window), so the result is byte-identical to
//! [`crate::detect::scan_pairs`] for the same candidates — only wall time
//! differs. No cost booking: this path exists for *measured* execution.

use crate::batcher::conflict_window_raw;
use crate::config::AtmConfig;
use crate::detect::stats::ScanResult;
use crate::types::Aircraft;
use sim_clock::NullSink;

/// Lane-chunk width of the gate pass: candidates are processed in fixed
/// blocks so the hot loop has a compile-time trip count on full chunks —
/// the shape autovectorizers want. Purely a code-shape choice; results do
/// not depend on it.
const LANES: usize = 16;

/// The fleet's scan-relevant fields as split arrays.
///
/// Positions and altitudes never change during Tasks 2+3, so they are
/// snapshotted once per detect execution; velocities change as aircraft
/// commit resolved paths, and the owner mirrors each commit via
/// [`SoaFleet::set_velocity`] before the next aircraft's scan.
#[derive(Clone, Debug)]
pub struct SoaFleet {
    x: Vec<f32>,
    y: Vec<f32>,
    alt: Vec<f32>,
    dx: Vec<f32>,
    dy: Vec<f32>,
}

impl SoaFleet {
    /// Split one fleet snapshot into arrays.
    pub fn from_aircraft(aircraft: &[Aircraft]) -> SoaFleet {
        SoaFleet {
            x: aircraft.iter().map(|a| a.x).collect(),
            y: aircraft.iter().map(|a| a.y).collect(),
            alt: aircraft.iter().map(|a| a.alt).collect(),
            dx: aircraft.iter().map(|a| a.dx).collect(),
            dy: aircraft.iter().map(|a| a.dy).collect(),
        }
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Mirror a committed velocity change of aircraft `i` into the arrays.
    pub fn set_velocity(&mut self, i: usize, vel: (f32, f32)) {
        self.dx[i] = vel.0;
        self.dy[i] = vel.1;
    }

    /// The branch-free gate pass over a contiguous index range: survivors
    /// (both gates passed, self excluded) land in `scratch` in ascending
    /// order.
    fn gate_range(
        &self,
        i: usize,
        alt_sep: f32,
        reach: f32,
        range: std::ops::Range<usize>,
        scratch: &mut Vec<u32>,
    ) {
        let (xi, yi, alti) = (self.x[i], self.y[i], self.alt[i]);
        scratch.clear();
        scratch.resize(range.len(), 0);
        let mut k = 0usize;
        let mut p = range.start;
        while p < range.end {
            let end = (p + LANES).min(range.end);
            for q in p..end {
                // Same operand order as the AoS gates: track − trial.
                let keep = ((alti - self.alt[q]).abs() < alt_sep)
                    & ((xi - self.x[q]).abs() <= reach)
                    & ((yi - self.y[q]).abs() <= reach)
                    & (q != i);
                scratch[k] = q as u32;
                k += keep as usize;
            }
            p = end;
        }
        scratch.truncate(k);
    }

    /// [`SoaFleet::gate_range`] over an explicit candidate list (a pruning
    /// source's enumeration, order preserved).
    fn gate_candidates(
        &self,
        i: usize,
        alt_sep: f32,
        reach: f32,
        candidates: &[u32],
        scratch: &mut Vec<u32>,
    ) {
        let (xi, yi, alti) = (self.x[i], self.y[i], self.alt[i]);
        scratch.clear();
        scratch.resize(candidates.len(), 0);
        let mut k = 0usize;
        for chunk in candidates.chunks(LANES) {
            for &q in chunk {
                let q = q as usize;
                let keep = ((alti - self.alt[q]).abs() < alt_sep)
                    & ((xi - self.x[q]).abs() <= reach)
                    & ((yi - self.y[q]).abs() <= reach)
                    & (q != i);
                scratch[k] = q as u32;
                k += keep as usize;
            }
        }
        scratch.truncate(k);
    }

    /// The window pass: fold the gate survivors into the earliest-critical
    /// selection, exactly as the scan kernel's running fold does.
    fn fold_survivors(
        &self,
        i: usize,
        vel: (f32, f32),
        cfg: &AtmConfig,
        survivors: &[u32],
    ) -> ScanResult {
        let (xi, yi) = (self.x[i], self.y[i]);
        let mut earliest: Option<(usize, f32)> = None;
        for &p in survivors {
            let p = p as usize;
            // Same operand order as the AoS window: trial − track.
            let rel_x = self.x[p] - xi;
            let rel_y = self.y[p] - yi;
            let rel_vx = self.dx[p] - vel.0;
            let rel_vy = self.dy[p] - vel.1;
            if let Some((tmin, _tmax)) = conflict_window_raw(
                rel_x,
                rel_y,
                rel_vx,
                rel_vy,
                cfg.separation_nm,
                cfg.horizon_periods,
                &mut NullSink,
            ) {
                if tmin < cfg.critical_periods {
                    match earliest {
                        Some((bp, bt)) if bt < tmin || (bt == tmin && bp < p) => {}
                        _ => earliest = Some((p, tmin)),
                    }
                }
            }
        }
        ScanResult {
            critical: earliest,
            checks: survivors.len() as u64,
        }
    }

    /// One full SoA scan of aircraft `i` (trial velocity `vel`) against a
    /// contiguous index range — the naive enumeration. Result-identical to
    /// [`crate::detect::scan_pair_range`].
    pub fn scan_range(
        &self,
        i: usize,
        vel: (f32, f32),
        cfg: &AtmConfig,
        range: std::ops::Range<usize>,
        scratch: &mut Vec<u32>,
    ) -> ScanResult {
        self.gate_range(
            i,
            cfg.alt_separation_ft,
            cfg.critical_reach_nm(),
            range,
            scratch,
        );
        self.fold_survivors(i, vel, cfg, scratch)
    }

    /// One full SoA scan of aircraft `i` over a pruning source's candidate
    /// list. Result-identical to [`crate::detect::scan_candidate_list`].
    pub fn scan_candidates(
        &self,
        i: usize,
        vel: (f32, f32),
        cfg: &AtmConfig,
        candidates: &[u32],
        scratch: &mut Vec<u32>,
    ) -> ScanResult {
        self.gate_candidates(
            i,
            cfg.alt_separation_ft,
            cfg.critical_reach_nm(),
            candidates,
            scratch,
        );
        self.fold_survivors(i, vel, cfg, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airfield::Airfield;
    use crate::detect::kernel::{scan_candidate_list, scan_pair_range};
    use crate::detect::ScanIndex;

    fn fleet(n: usize, seed: u64) -> (Vec<Aircraft>, AtmConfig) {
        let field = Airfield::with_seed(n, seed);
        let cfg = field.config().clone();
        (field.aircraft, cfg)
    }

    #[test]
    fn soa_range_scan_is_bit_identical_to_the_aos_scan() {
        let (ac, cfg) = fleet(700, 42);
        let soa = SoaFleet::from_aircraft(&ac);
        let mut scratch = Vec::new();
        for i in [0usize, 1, 350, 699] {
            let vel = (ac[i].dx, ac[i].dy);
            let aos = scan_pair_range(&ac, i, vel, &cfg, 0..ac.len());
            let got = soa.scan_range(i, vel, &cfg, 0..ac.len(), &mut scratch);
            assert_eq!(got, aos, "i={i}");
        }
    }

    #[test]
    fn soa_candidate_scan_matches_over_every_index_kind() {
        let (ac, mut cfg) = fleet(500, 7);
        for scan in [
            crate::config::ScanMode::Banded,
            crate::config::ScanMode::Grid,
            crate::config::ScanMode::Incremental,
        ] {
            cfg.scan = scan;
            let index = ScanIndex::for_config(&ac, &cfg);
            let soa = SoaFleet::from_aircraft(&ac);
            let mut scratch = Vec::new();
            for i in (0..ac.len()).step_by(37) {
                let cands: Vec<u32> = index
                    .candidates(i, &ac[i], ac.len())
                    .map(|p| p as u32)
                    .collect();
                let vel = (ac[i].dx, ac[i].dy);
                let aos = scan_candidate_list(&ac, i, vel, &cfg, &cands);
                let got = soa.scan_candidates(i, vel, &cfg, &cands, &mut scratch);
                assert_eq!(got, aos, "{scan:?} i={i}");
            }
        }
    }

    #[test]
    fn velocity_mirror_changes_subsequent_scans() {
        let (mut ac, cfg) = fleet(300, 9);
        let mut soa = SoaFleet::from_aircraft(&ac);
        let mut scratch = Vec::new();
        // Commit a velocity change on aircraft 5 both ways; scans of other
        // aircraft must keep agreeing.
        ac[5].dx = -ac[5].dx;
        ac[5].dy = -ac[5].dy;
        soa.set_velocity(5, (ac[5].dx, ac[5].dy));
        for i in [0usize, 5, 77, 299] {
            let vel = (ac[i].dx, ac[i].dy);
            let aos = scan_pair_range(&ac, i, vel, &cfg, 0..ac.len());
            let got = soa.scan_range(i, vel, &cfg, 0..ac.len(), &mut scratch);
            assert_eq!(got, aos, "i={i}");
        }
    }

    #[test]
    fn empty_fleet_and_empty_candidates_are_clear() {
        let soa = SoaFleet::from_aircraft(&[]);
        assert!(soa.is_empty());
        let (ac, cfg) = fleet(10, 1);
        let soa = SoaFleet::from_aircraft(&ac);
        assert_eq!(soa.len(), 10);
        let mut scratch = Vec::new();
        let r = soa.scan_candidates(0, (0.0, 0.0), &cfg, &[], &mut scratch);
        assert_eq!(r, ScanResult::CLEAR);
    }
}
