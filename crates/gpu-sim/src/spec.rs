//! Device specifications and the catalog of the paper's three NVIDIA cards.

use std::fmt;

/// NVIDIA compute capability generations relevant to the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ComputeCapability {
    /// Tesla generation (G80/G92): strict half-warp coalescing, no L1/L2
    /// data caches, small SMs of 8 cores.
    Cc1_0,
    /// Kepler generation (GK104): 192-core SMX, relaxed coalescing via L2.
    Cc3_0,
    /// Pascal generation (GP102): 128-core SM, large L2, high bandwidth.
    Cc6_1,
}

impl ComputeCapability {
    /// The marketing "X.Y" string.
    pub fn as_str(self) -> &'static str {
        match self {
            ComputeCapability::Cc1_0 => "1.0",
            ComputeCapability::Cc3_0 => "3.0",
            ComputeCapability::Cc6_1 => "6.1",
        }
    }
}

impl fmt::Display for ComputeCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The architectural shape of a simulated CUDA device.
///
/// Only parameters that the timing model consumes are included. Values for
/// the catalog devices are the published specifications of the physical
/// cards (shader/boost clocks, SM topology, memory bandwidth); PCIe and
/// launch-overhead figures are representative measurements for the
/// respective eras, documented per constructor.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Compute capability (selects the cost table).
    pub compute_capability: ComputeCapability,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores (FP32 lanes) per SM.
    pub cores_per_sm: u32,
    /// Shader/core clock in MHz (the clock CUDA cores execute at).
    pub clock_mhz: u32,
    /// Peak global-memory bandwidth in MB/s (decimal, as marketed).
    pub mem_bandwidth_mb_s: u64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Host↔device transfer bandwidth in MB/s (effective, not bus peak).
    pub pcie_mb_s: u64,
    /// Fixed kernel-launch overhead in nanoseconds (driver + dispatch).
    pub launch_overhead_ns: u64,
    /// Fixed per-transfer overhead in nanoseconds.
    pub transfer_overhead_ns: u64,
    /// Global memory load latency in core cycles (used for the latency
    /// floor when occupancy is too low to hide it).
    pub mem_latency_cycles: u32,
}

impl DeviceSpec {
    /// Total CUDA cores on the device.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// GeForce 9800 GT — the paper's "old card with Compute Capacity of 1".
    ///
    /// G92: 14 SMs × 8 cores = 112 cores at 1500 MHz shader clock,
    /// 57.6 GB/s GDDR3. CC 1.x limits: 512 threads/block, 24 warps/SM,
    /// 8 blocks/SM. PCIe 2.0-era effective host transfer ≈ 3 GB/s; launch
    /// overhead on that driver stack ≈ 15 µs.
    pub fn geforce_9800_gt() -> DeviceSpec {
        DeviceSpec {
            name: "GeForce 9800 GT",
            compute_capability: ComputeCapability::Cc1_0,
            sm_count: 14,
            cores_per_sm: 8,
            clock_mhz: 1500,
            mem_bandwidth_mb_s: 57_600,
            warp_size: 32,
            max_threads_per_block: 512,
            max_warps_per_sm: 24,
            max_blocks_per_sm: 8,
            pcie_mb_s: 3_000,
            launch_overhead_ns: 15_000,
            transfer_overhead_ns: 10_000,
            mem_latency_cycles: 500,
        }
    }

    /// GTX 880M — the paper's laptop card, compute capability 3.0.
    ///
    /// GK104: 8 SMX × 192 cores = 1536 cores at 954 MHz, 160 GB/s GDDR5.
    /// Kepler limits: 1024 threads/block, 64 warps/SM, 16 blocks/SM.
    /// PCIe 3.0 laptop effective ≈ 6 GB/s; launch overhead ≈ 8 µs.
    pub fn gtx_880m() -> DeviceSpec {
        DeviceSpec {
            name: "GTX 880M",
            compute_capability: ComputeCapability::Cc3_0,
            sm_count: 8,
            cores_per_sm: 192,
            clock_mhz: 954,
            mem_bandwidth_mb_s: 160_000,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            pcie_mb_s: 6_000,
            launch_overhead_ns: 8_000,
            transfer_overhead_ns: 6_000,
            mem_latency_cycles: 400,
        }
    }

    /// Titan X (Pascal) — the paper's research card, compute capability 6.1.
    ///
    /// GP102: 28 SMs × 128 cores = 3584 cores at 1417 MHz base, 480 GB/s
    /// GDDR5X. Pascal limits: 1024 threads/block, 64 warps/SM, 32 blocks/SM.
    /// PCIe 3.0 x16 effective ≈ 12 GB/s; launch overhead ≈ 5 µs.
    pub fn titan_x_pascal() -> DeviceSpec {
        DeviceSpec {
            name: "Titan X (Pascal)",
            compute_capability: ComputeCapability::Cc6_1,
            sm_count: 28,
            cores_per_sm: 128,
            clock_mhz: 1417,
            mem_bandwidth_mb_s: 480_000,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            pcie_mb_s: 12_000,
            launch_overhead_ns: 5_000,
            transfer_overhead_ns: 4_000,
            mem_latency_cycles: 350,
        }
    }

    /// All three catalog devices, in the paper's order.
    pub fn paper_catalog() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::geforce_9800_gt(),
            DeviceSpec::gtx_880m(),
            DeviceSpec::titan_x_pascal(),
        ]
    }

    /// Validate internal consistency; panics with a descriptive message on
    /// nonsense configurations (zero SMs, zero clock, warp size 0, …).
    /// Called by [`crate::CudaDevice::new`].
    pub fn validate(&self) {
        assert!(self.sm_count > 0, "{}: sm_count must be > 0", self.name);
        assert!(
            self.cores_per_sm > 0,
            "{}: cores_per_sm must be > 0",
            self.name
        );
        assert!(self.clock_mhz > 0, "{}: clock_mhz must be > 0", self.name);
        assert!(self.warp_size > 0, "{}: warp_size must be > 0", self.name);
        assert!(
            self.max_threads_per_block >= self.warp_size,
            "{}: a block must fit at least one warp",
            self.name
        );
        assert!(
            self.mem_bandwidth_mb_s > 0,
            "{}: bandwidth must be > 0",
            self.name
        );
        assert!(
            self.pcie_mb_s > 0,
            "{}: pcie bandwidth must be > 0",
            self.name
        );
        assert!(
            self.max_warps_per_sm > 0,
            "{}: max_warps_per_sm must be > 0",
            self.name
        );
        assert!(
            self.max_blocks_per_sm > 0,
            "{}: max_blocks_per_sm must be > 0",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_totals_match_published_core_counts() {
        assert_eq!(DeviceSpec::geforce_9800_gt().total_cores(), 112);
        assert_eq!(DeviceSpec::gtx_880m().total_cores(), 1536);
        assert_eq!(DeviceSpec::titan_x_pascal().total_cores(), 3584);
    }

    #[test]
    fn catalog_validates() {
        for spec in DeviceSpec::paper_catalog() {
            spec.validate();
        }
    }

    #[test]
    fn catalog_capabilities_match_paper() {
        let cat = DeviceSpec::paper_catalog();
        assert_eq!(cat[0].compute_capability, ComputeCapability::Cc1_0);
        assert_eq!(cat[1].compute_capability, ComputeCapability::Cc3_0);
        assert_eq!(cat[2].compute_capability, ComputeCapability::Cc6_1);
    }

    #[test]
    #[should_panic(expected = "sm_count")]
    fn zero_sms_is_rejected() {
        let mut spec = DeviceSpec::geforce_9800_gt();
        spec.sm_count = 0;
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn tiny_block_limit_is_rejected() {
        let mut spec = DeviceSpec::gtx_880m();
        spec.max_threads_per_block = 16;
        spec.validate();
    }

    #[test]
    fn capability_display() {
        assert_eq!(ComputeCapability::Cc1_0.to_string(), "1.0");
        assert_eq!(ComputeCapability::Cc6_1.to_string(), "6.1");
    }

    #[test]
    fn capability_ordering_follows_generations() {
        assert!(ComputeCapability::Cc1_0 < ComputeCapability::Cc3_0);
        assert!(ComputeCapability::Cc3_0 < ComputeCapability::Cc6_1);
    }
}
