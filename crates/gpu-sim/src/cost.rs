//! Per-compute-capability instruction cost tables.
//!
//! A warp instruction's issue cost on an SM is `warp_size / lanes`, where
//! `lanes` is how many of that operation the SM can retire per cycle. FP32
//! add/mul use all CUDA cores; divide, sqrt and special-function work run on
//! narrower units whose relative width differs by generation. The table
//! stores *reciprocal throughput factors* relative to the FP32 core count so
//! the same table scales across SM widths within a generation.

use crate::spec::{ComputeCapability, DeviceSpec};
use sim_clock::{OpClass, OP_CLASS_COUNT};

/// Architecture cost parameters resolved against a concrete [`DeviceSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct CostTable {
    /// Issue cycles for one warp-wide instruction of each [`OpClass`],
    /// indexed by `OpClass as usize`. Fractional cycles are meaningful:
    /// they accumulate over thousands of instructions before rounding.
    pub warp_issue_cycles: [f64; OP_CLASS_COUNT],
    /// Extra issue cycles charged per *divergent* branch. The cost of
    /// executing both paths is already captured by the max-over-lanes op
    /// accounting; this models only the reconvergence-stack overhead, so it
    /// is a handful of cycles (larger on the long-pipeline Tesla parts).
    pub divergence_penalty_cycles: f64,
    /// Fraction of peak DRAM bandwidth achieved by the application's access
    /// pattern (CC 1.x has strict half-warp coalescing rules; later
    /// generations recover much of it through L2).
    pub coalescing_efficiency: f64,
    /// Global memory latency in core cycles (latency floor for launches too
    /// small to saturate anything).
    pub mem_latency_cycles: f64,
    /// Number of warps an SM must have resident to fully hide memory
    /// latency; fewer warps leave a proportional share of latency exposed.
    pub warps_to_hide_latency: f64,
    /// Whether warp-uniform loads are served once per warp (L1/L2 or
    /// broadcast path). False on compute capability 1.x, whose cacheless
    /// memory system pays such reads per lane — the mechanism behind the
    /// GeForce 9800 GT's visibly quadratic curves in the paper.
    pub uniform_load_dedup: bool,
}

impl CostTable {
    /// Build the cost table for a device.
    pub fn for_spec(spec: &DeviceSpec) -> CostTable {
        // Reciprocal throughput factors: what fraction of the FP32 lane
        // count each unit class provides, per generation.
        let (div_frac, sqrt_frac, sfu_frac, int_frac, divergence, coalescing, hide_warps, dedup) =
            match spec.compute_capability {
                // Tesla: 2 SFUs per 8-core SM (0.25), divide ~1/16 of core
                // throughput, strict coalescing loses roughly half the peak
                // bandwidth on the struct-of-records layout the ATM kernels
                // use, divergence costs a long pipeline reissue, and there
                // is no cache to deduplicate warp-uniform reads.
                ComputeCapability::Cc1_0 => {
                    (1.0 / 16.0, 1.0 / 16.0, 0.25, 1.0, 12.0, 0.50, 6.0, false)
                }
                // Kepler: 32 SFUs per 192-core SMX (1/6), divide ~1/12,
                // relaxed coalescing and uniform-read service through L2.
                ComputeCapability::Cc3_0 => (
                    1.0 / 12.0,
                    1.0 / 12.0,
                    1.0 / 6.0,
                    1.0,
                    6.0,
                    0.85,
                    24.0,
                    true,
                ),
                // Pascal: 32 SFUs per 128-core SM (0.25), divide ~1/10.
                ComputeCapability::Cc6_1 => {
                    (1.0 / 10.0, 1.0 / 10.0, 0.25, 1.0, 5.0, 0.90, 20.0, true)
                }
            };

        let warp = spec.warp_size as f64;
        let cores = spec.cores_per_sm as f64;
        let per_lane = |frac: f64| warp / (cores * frac);

        let mut warp_issue_cycles = [0.0; OP_CLASS_COUNT];
        warp_issue_cycles[OpClass::IntAlu as usize] = per_lane(int_frac);
        warp_issue_cycles[OpClass::FpAdd as usize] = per_lane(1.0);
        warp_issue_cycles[OpClass::FpMul as usize] = per_lane(1.0);
        warp_issue_cycles[OpClass::FpDiv as usize] = per_lane(div_frac);
        warp_issue_cycles[OpClass::FpSqrt as usize] = per_lane(sqrt_frac);
        warp_issue_cycles[OpClass::Sfu as usize] = per_lane(sfu_frac);
        // A uniform branch costs one scheduler slot like an integer op.
        warp_issue_cycles[OpClass::Branch as usize] = per_lane(int_frac);
        // __syncthreads: a few cycles of barrier overhead per warp.
        warp_issue_cycles[OpClass::Sync as usize] = 4.0;

        CostTable {
            warp_issue_cycles,
            divergence_penalty_cycles: divergence,
            coalescing_efficiency: coalescing,
            mem_latency_cycles: spec.mem_latency_cycles as f64,
            warps_to_hide_latency: hide_warps,
            uniform_load_dedup: dedup,
        }
    }

    /// Issue cycles for one warp-wide instruction of `class`.
    #[inline]
    pub fn issue_cycles(&self, class: OpClass) -> f64 {
        self.warp_issue_cycles[class as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn tesla_fp_add_takes_four_cycles_per_warp() {
        // 32 lanes / 8 cores = 4 cycles per warp instruction.
        let t = CostTable::for_spec(&DeviceSpec::geforce_9800_gt());
        assert_eq!(t.issue_cycles(OpClass::FpAdd), 4.0);
    }

    #[test]
    fn kepler_fp_add_is_sub_cycle() {
        // 32 lanes / 192 cores: one warp instruction every 1/6 cycle.
        let t = CostTable::for_spec(&DeviceSpec::gtx_880m());
        assert!((t.issue_cycles(OpClass::FpAdd) - 32.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn division_is_much_slower_than_add_everywhere() {
        for spec in DeviceSpec::paper_catalog() {
            let t = CostTable::for_spec(&spec);
            assert!(
                t.issue_cycles(OpClass::FpDiv) >= 8.0 * t.issue_cycles(OpClass::FpAdd),
                "{}: div should be ≥8x add",
                spec.name
            );
        }
    }

    #[test]
    fn newer_generations_coalesce_better() {
        let old = CostTable::for_spec(&DeviceSpec::geforce_9800_gt());
        let mid = CostTable::for_spec(&DeviceSpec::gtx_880m());
        let new = CostTable::for_spec(&DeviceSpec::titan_x_pascal());
        assert!(old.coalescing_efficiency < mid.coalescing_efficiency);
        assert!(mid.coalescing_efficiency <= new.coalescing_efficiency);
    }

    #[test]
    fn divergence_penalty_shrinks_with_generation() {
        let old = CostTable::for_spec(&DeviceSpec::geforce_9800_gt());
        let new = CostTable::for_spec(&DeviceSpec::titan_x_pascal());
        assert!(old.divergence_penalty_cycles > new.divergence_penalty_cycles);
    }

    #[test]
    fn all_issue_costs_are_positive() {
        for spec in DeviceSpec::paper_catalog() {
            let t = CostTable::for_spec(&spec);
            for &c in &t.warp_issue_cycles {
                assert!(c > 0.0);
            }
        }
    }
}
