//! Lockstep warp cost aggregation.
//!
//! SIMT hardware issues one instruction for all lanes of a warp together; a
//! lane that has nothing to do on a given instruction is masked off but the
//! warp still spends the issue slot. The standard post-hoc approximation of
//! that behaviour from per-lane traces is: for every operation class, the
//! warp issues `max` over its lanes' counts. Divergent branches additionally
//! serialize both paths — the accumulator tracks them separately so the
//! device cost table can price the reconvergence.

use crate::cost::CostTable;
use crate::trace::ThreadTrace;
#[cfg(test)]
use sim_clock::OpClass;
use sim_clock::OP_CLASS_COUNT;

/// Folds per-lane [`ThreadTrace`]s into one warp's issue profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpAccumulator {
    /// Per-class max-over-lanes instruction counts.
    pub max_ops: [u64; OP_CLASS_COUNT],
    /// Sum of lane memory reads (every lane's traffic is real traffic).
    pub bytes_loaded: u64,
    /// Max-over-lanes warp-uniform reads (served once per warp on devices
    /// with a cache/broadcast path).
    pub uniform_bytes_max: u64,
    /// Sum-over-lanes warp-uniform reads (what a cacheless device pays).
    pub uniform_bytes_sum: u64,
    /// Sum of lane memory writes.
    pub bytes_stored: u64,
    /// Max-over-lanes divergent branch count (each divergence event stalls
    /// the whole warp once).
    pub divergent_branches: u64,
    /// Lanes folded so far (for assertions / occupancy accounting).
    pub lanes: u32,
}

impl WarpAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        WarpAccumulator::default()
    }

    /// Fold one lane's trace into the warp.
    pub fn add_lane(&mut self, lane: &ThreadTrace) {
        for i in 0..OP_CLASS_COUNT {
            self.max_ops[i] = self.max_ops[i].max(lane.ops[i]);
        }
        self.bytes_loaded += lane.bytes_loaded;
        self.uniform_bytes_max = self.uniform_bytes_max.max(lane.bytes_loaded_uniform);
        self.uniform_bytes_sum += lane.bytes_loaded_uniform;
        self.bytes_stored += lane.bytes_stored;
        self.divergent_branches = self.divergent_branches.max(lane.divergent_branches);
        self.lanes += 1;
    }

    /// True when no lane has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Reset for reuse by the next warp.
    pub fn reset(&mut self) {
        *self = WarpAccumulator::default();
    }

    /// The warp's total issue cost in SM cycles under a cost table.
    pub fn issue_cycles(&self, table: &CostTable) -> f64 {
        let mut cycles = 0.0;
        for i in 0..OP_CLASS_COUNT {
            cycles += self.max_ops[i] as f64 * table.warp_issue_cycles[i];
        }
        cycles + self.divergent_branches as f64 * table.divergence_penalty_cycles
    }

    /// Total global-memory traffic of the warp in bytes under a cost
    /// table: uniform reads are deduplicated to one transaction per warp
    /// when the device has a broadcast/cache path, and paid per lane when
    /// it does not (compute capability 1.x).
    pub fn total_bytes(&self, table: &CostTable) -> u64 {
        let uniform = if table.uniform_load_dedup {
            self.uniform_bytes_max
        } else {
            self.uniform_bytes_sum
        };
        self.bytes_loaded + uniform + self.bytes_stored
    }
}

/// Cost summary of one closed warp, ready for SM scheduling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarpCost {
    /// Issue cycles under the device's cost table.
    pub issue_cycles: f64,
    /// Global memory traffic in bytes.
    pub bytes: u64,
}

impl WarpAccumulator {
    /// Close the warp: price it against `table` and reset the accumulator.
    pub fn close(&mut self, table: &CostTable) -> WarpCost {
        let cost = WarpCost {
            issue_cycles: self.issue_cycles(table),
            bytes: self.total_bytes(table),
        };
        self.reset();
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;
    use sim_clock::CostSink;

    fn table() -> CostTable {
        CostTable::for_spec(&DeviceSpec::geforce_9800_gt())
    }

    #[test]
    fn lockstep_takes_max_over_lanes() {
        let mut warp = WarpAccumulator::new();
        let mut a = ThreadTrace::new();
        a.fadd(10);
        let mut b = ThreadTrace::new();
        b.fadd(3);
        warp.add_lane(&a);
        warp.add_lane(&b);
        assert_eq!(warp.max_ops[OpClass::FpAdd as usize], 10);
        assert_eq!(warp.lanes, 2);
    }

    #[test]
    fn memory_traffic_sums_over_lanes() {
        let mut warp = WarpAccumulator::new();
        for _ in 0..4 {
            let mut t = ThreadTrace::new();
            t.load(16);
            t.store(4);
            warp.add_lane(&t);
        }
        assert_eq!(warp.bytes_loaded, 64);
        assert_eq!(warp.bytes_stored, 16);
        assert_eq!(warp.total_bytes(&table()), 80);
    }

    #[test]
    fn issue_cycles_price_by_class() {
        let mut warp = WarpAccumulator::new();
        let mut t = ThreadTrace::new();
        t.fadd(2); // 2 * 4.0 cycles on Tesla
        t.fdiv(1); // 1 * 64.0 cycles
        warp.add_lane(&t);
        let cycles = warp.issue_cycles(&table());
        assert!((cycles - (8.0 + 64.0)).abs() < 1e-9, "{cycles}");
    }

    #[test]
    fn divergence_adds_penalty_once_per_event() {
        let mut warp = WarpAccumulator::new();
        let mut a = ThreadTrace::new();
        a.branch(true);
        let mut b = ThreadTrace::new();
        b.branch(true);
        warp.add_lane(&a);
        warp.add_lane(&b);
        // Both lanes flagged the same divergence event -> max = 1 penalty,
        // and the branch instruction itself is also max(1,1) = 1.
        let t = table();
        let expected = t.issue_cycles(OpClass::Branch) + t.divergence_penalty_cycles;
        assert!((warp.issue_cycles(&t) - expected).abs() < 1e-9);
    }

    #[test]
    fn close_returns_cost_and_resets() {
        let mut warp = WarpAccumulator::new();
        let mut t = ThreadTrace::new();
        t.fmul(4);
        t.load(8);
        warp.add_lane(&t);
        let cost = warp.close(&table());
        assert!(cost.issue_cycles > 0.0);
        assert_eq!(cost.bytes, 8);
        assert!(warp.is_empty());
    }

    #[test]
    fn empty_warp_costs_nothing() {
        let mut warp = WarpAccumulator::new();
        assert_eq!(warp.issue_cycles(&table()), 0.0);
        let cost = warp.close(&table());
        assert_eq!(cost.issue_cycles, 0.0);
        assert_eq!(cost.bytes, 0);
    }
}

#[cfg(test)]
mod uniform_tests {
    use super::*;
    use crate::spec::DeviceSpec;
    use sim_clock::CostSink;

    fn full_warp_with_uniform_loads(spec: &DeviceSpec) -> (WarpAccumulator, CostTable) {
        let table = CostTable::for_spec(spec);
        let mut warp = WarpAccumulator::new();
        for _ in 0..spec.warp_size {
            let mut t = ThreadTrace::new();
            t.load_shared(1_000);
            t.load(16);
            warp.add_lane(&t);
        }
        (warp, table)
    }

    #[test]
    fn cached_devices_dedupe_uniform_reads_to_one_per_warp() {
        let spec = DeviceSpec::titan_x_pascal();
        let (warp, table) = full_warp_with_uniform_loads(&spec);
        // 32 private loads of 16 B + ONE uniform transaction of 1000 B.
        assert_eq!(warp.total_bytes(&table), 32 * 16 + 1_000);
    }

    #[test]
    fn cacheless_cc1_pays_uniform_reads_per_lane() {
        let spec = DeviceSpec::geforce_9800_gt();
        let (warp, table) = full_warp_with_uniform_loads(&spec);
        assert_eq!(warp.total_bytes(&table), 32 * 16 + 32 * 1_000);
    }

    #[test]
    fn dedup_flag_follows_compute_capability() {
        assert!(!CostTable::for_spec(&DeviceSpec::geforce_9800_gt()).uniform_load_dedup);
        assert!(CostTable::for_spec(&DeviceSpec::gtx_880m()).uniform_load_dedup);
        assert!(CostTable::for_spec(&DeviceSpec::titan_x_pascal()).uniform_load_dedup);
    }
}
