//! The simulated CUDA device: kernel launches, transfers, timeline.

use crate::cost::CostTable;
use crate::launch::{LaunchConfig, ThreadCtx};
use crate::memory::DeviceBuffer;
use crate::report::{DeviceStats, LaunchReport, TransferDir, TransferReport};
use crate::sm::{kernel_time_with_occupancy, occupancy, Occupancy, SmSchedule};
use crate::spec::DeviceSpec;
use crate::trace::ThreadTrace;
use crate::warp::WarpAccumulator;
use sim_clock::{SimDuration, SimInstant, Timeline};
use telemetry::{Recorder, TrackId};

/// A simulated CUDA device.
///
/// Owns the device clock ([`Timeline`]) and cumulative [`DeviceStats`].
/// Kernels are Rust closures executed once per thread in deterministic
/// block-major order; see the crate docs for the execution and timing model.
pub struct CudaDevice {
    spec: DeviceSpec,
    table: CostTable,
    timeline: Timeline,
    stats: DeviceStats,
    scratch_trace: ThreadTrace,
    /// Occupancy of the most recent launch geometry. The ATM pipelines
    /// launch the same geometry every period, so this one-entry cache
    /// serves nearly every launch.
    occ_cache: Option<(LaunchConfig, Occupancy)>,
    recorder: Recorder,
    track: TrackId,
}

impl CudaDevice {
    /// Bring up a device from a spec (validates the spec).
    pub fn new(spec: DeviceSpec) -> Self {
        spec.validate();
        let table = CostTable::for_spec(&spec);
        CudaDevice {
            spec,
            table,
            timeline: Timeline::new(),
            stats: DeviceStats::default(),
            scratch_trace: ThreadTrace::new(),
            occ_cache: None,
            recorder: Recorder::disabled(),
            track: TrackId::default(),
        }
    }

    /// Occupancy of `cfg` on this device, memoized for the common case of
    /// back-to-back launches with identical geometry.
    fn occupancy_for(&mut self, cfg: LaunchConfig) -> Occupancy {
        match self.occ_cache {
            Some((cached_cfg, occ)) if cached_cfg == cfg => occ,
            _ => {
                let occ = occupancy(&cfg, &self.spec);
                self.occ_cache = Some((cfg, occ));
                occ
            }
        }
    }

    /// Attach a telemetry recorder: every launch and transfer emits a span
    /// on a track named after the device, anchored on the device timeline.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.track = recorder.track(&format!("gpu: {}", self.spec.name));
        self.recorder = recorder;
    }

    /// Same, but with an event-recording timeline (for traces and the
    /// determinism experiment).
    pub fn with_recording_timeline(spec: DeviceSpec) -> Self {
        let mut dev = CudaDevice::new(spec);
        dev.timeline = Timeline::recording();
        dev
    }

    /// The device's architectural spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The resolved cost table.
    pub fn cost_table(&self) -> &CostTable {
        &self.table
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The device timeline (total elapsed simulated time, event log).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Total simulated time this device has spent.
    pub fn elapsed(&self) -> SimDuration {
        self.timeline.elapsed()
    }

    /// Reset clock and statistics (keeps the spec).
    pub fn reset(&mut self) {
        self.timeline.reset();
        self.stats = DeviceStats::default();
    }

    /// Launch a kernel: run `kernel` once per thread of `cfg`, price the
    /// traces, advance the device clock, and return the launch report.
    ///
    /// The closure receives the thread's [`ThreadCtx`] and its
    /// [`ThreadTrace`] cost sink. Threads run sequentially in block-major
    /// order — a valid serialization of a data-race-free CUDA kernel, and
    /// the reason simulated results are deterministic.
    pub fn launch<F>(&mut self, name: &str, cfg: LaunchConfig, mut kernel: F) -> LaunchReport
    where
        F: FnMut(ThreadCtx, &mut ThreadTrace),
    {
        cfg.validate(&self.spec);

        let mut schedule = SmSchedule::new(self.spec.sm_count);
        let mut warp = WarpAccumulator::new();
        let warp_size = self.spec.warp_size;

        for block_idx in 0..cfg.grid_dim {
            for thread_idx in 0..cfg.block_dim {
                let ctx = ThreadCtx {
                    block_idx,
                    thread_idx,
                    block_dim: cfg.block_dim,
                    grid_dim: cfg.grid_dim,
                };
                self.scratch_trace.reset();
                kernel(ctx, &mut self.scratch_trace);
                warp.add_lane(&self.scratch_trace);
                if warp.lanes == warp_size {
                    schedule.add_warp(block_idx, warp.close(&self.table));
                }
            }
            // A partially filled trailing warp still occupies an issue slot.
            if !warp.is_empty() {
                schedule.add_warp(block_idx, warp.close(&self.table));
            }
        }

        // One memoized occupancy computation serves both the timing model
        // and the report (the seed computed it twice per launch).
        let occ = self.occupancy_for(cfg);
        let timing = kernel_time_with_occupancy(&schedule, &self.spec, &self.table, occ);
        let report = LaunchReport {
            kernel: name.to_owned(),
            config: cfg,
            threads: cfg.total_threads(),
            warps: schedule.warps,
            occupancy: occ,
            bytes: schedule.total_bytes,
            critical_cycles: schedule.critical_path_cycles(),
            timing,
        };

        if self.recorder.is_enabled() {
            let start = SimInstant::at(self.timeline.elapsed());
            self.recorder.span_with_args(
                self.track,
                &format!("kernel:{name}"),
                "gpu.kernel",
                start,
                timing.total,
                vec![
                    ("threads", report.threads.into()),
                    ("warps", report.warps.into()),
                    ("occupancy", report.occupancy.fraction.into()),
                    ("compute_ms", timing.compute.as_millis_f64().into()),
                    ("memory_ms", timing.memory.as_millis_f64().into()),
                    ("overhead_ms", timing.overhead.as_millis_f64().into()),
                ],
            );
            self.recorder.counter_add("gpu.launches", 1);
            self.recorder
                .histogram_record("gpu.kernel_ms", timing.total);
        }
        self.timeline
            .advance(&format!("kernel:{name}"), timing.total);
        self.stats.record_launch(&report);
        report
    }

    /// Copy host data into a device buffer, charging PCIe time.
    pub fn upload<T: Clone>(&mut self, buf: &mut DeviceBuffer<T>, host: &[T]) -> TransferReport {
        buf.copy_from_host(host);
        self.transfer(TransferDir::HostToDevice, buf.size_bytes())
    }

    /// Copy a device buffer out to host data, charging PCIe time.
    pub fn download<T: Clone>(
        &mut self,
        buf: &mut DeviceBuffer<T>,
        host: &mut [T],
    ) -> TransferReport {
        buf.copy_to_host(host);
        self.transfer(TransferDir::DeviceToHost, buf.size_bytes())
    }

    /// Charge time for a transfer of `bytes` without moving data (for
    /// callers that manage their own host mirrors).
    pub fn transfer(&mut self, dir: TransferDir, bytes: u64) -> TransferReport {
        let bw_secs = bytes as f64 / (self.spec.pcie_mb_s as f64 * 1.0e6);
        let duration = SimDuration::from_nanos(self.spec.transfer_overhead_ns)
            + SimDuration::from_secs_f64(bw_secs);
        let report = TransferReport {
            dir,
            bytes,
            duration,
        };
        if self.recorder.is_enabled() {
            let start = SimInstant::at(self.timeline.elapsed());
            self.recorder.span_with_args(
                self.track,
                &format!("memcpy:{dir}"),
                "gpu.transfer",
                start,
                duration,
                vec![("bytes", bytes.into())],
            );
            self.recorder.counter_add("gpu.transfers", 1);
            self.recorder.counter_add("gpu.transfer_bytes", bytes);
        }
        self.timeline.advance(&format!("memcpy:{dir}"), duration);
        self.stats.record_transfer(&report);
        report
    }
}

impl std::fmt::Debug for CudaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CudaDevice")
            .field("spec", &self.spec.name)
            .field("elapsed", &self.elapsed())
            .field("launches", &self.stats.launches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::CostSink;

    fn titan() -> CudaDevice {
        CudaDevice::new(DeviceSpec::titan_x_pascal())
    }

    #[test]
    fn launch_visits_every_thread_once_in_order() {
        let mut dev = titan();
        let mut visited = Vec::new();
        dev.launch("probe", LaunchConfig::new(3, 4), |ctx, _| {
            visited.push(ctx.global_id());
        });
        assert_eq!(visited, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn launch_report_counts_threads_and_warps() {
        let mut dev = titan();
        let r = dev.launch("k", LaunchConfig::new(2, 96), |_, t| t.fadd(1));
        assert_eq!(r.threads, 192);
        assert_eq!(r.warps, 6); // 3 warps per 96-thread block
        assert!(r.duration() >= SimDuration::from_nanos(dev.spec().launch_overhead_ns));
    }

    #[test]
    fn kernels_can_mutate_captured_host_state() {
        let mut dev = titan();
        let n = 1000usize;
        let mut out = vec![0.0f32; n];
        dev.launch("square", LaunchConfig::paper_for_items(n), |ctx, t| {
            if ctx.in_range(n) {
                let i = ctx.global_id();
                out[i] = (i as f32) * (i as f32);
                t.fmul(1);
                t.store(4);
            }
        });
        assert_eq!(out[10], 100.0);
        assert_eq!(out[999], 999.0 * 999.0);
    }

    #[test]
    fn more_work_takes_more_time() {
        let mut dev = titan();
        let small = dev.launch("s", LaunchConfig::paper_for_items(96), |_, t| t.fadd(100));
        let big = dev.launch("b", LaunchConfig::paper_for_items(96_000), |_, t| {
            t.fadd(100)
        });
        assert!(big.duration() > small.duration());
    }

    #[test]
    fn old_card_is_slower_on_compute_heavy_kernel() {
        let mut old = CudaDevice::new(DeviceSpec::geforce_9800_gt());
        let mut new = titan();
        let work = |_: ThreadCtx, t: &mut ThreadTrace| {
            t.fadd(1000);
            t.fmul(1000);
        };
        let r_old = old.launch("k", LaunchConfig::paper_for_items(9_600), work);
        let r_new = new.launch("k", LaunchConfig::paper_for_items(9_600), work);
        // Subtract fixed overheads to compare the compute bodies.
        let body_old = r_old.duration() - r_old.timing.overhead;
        let body_new = r_new.duration() - r_new.timing.overhead;
        assert!(
            body_old > body_new * 4,
            "9800 GT ({body_old}) should be several times slower than Titan X ({body_new})"
        );
    }

    #[test]
    fn timeline_advances_with_launches_and_transfers() {
        let mut dev = CudaDevice::with_recording_timeline(DeviceSpec::gtx_880m());
        assert_eq!(dev.elapsed(), SimDuration::ZERO);
        let mut buf = DeviceBuffer::<f32>::zeroed(1024);
        let host = vec![1.0f32; 1024];
        dev.upload(&mut buf, &host);
        dev.launch("k", LaunchConfig::new(1, 96), |_, t| t.ialu(1));
        let mut back = vec![0.0f32; 1024];
        dev.download(&mut buf, &mut back);
        assert_eq!(back, host);
        assert_eq!(dev.timeline().events().len(), 3);
        assert_eq!(dev.stats().launches, 1);
        assert_eq!(dev.stats().h2d_transfers, 1);
        assert_eq!(dev.stats().d2h_transfers, 1);
        assert!(dev.elapsed() > SimDuration::ZERO);
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let run = || {
            let mut dev = titan();
            let n = 5000usize;
            let mut data = vec![0.0f32; n];
            for _ in 0..3 {
                dev.launch("iter", LaunchConfig::paper_for_items(n), |ctx, t| {
                    if ctx.in_range(n) {
                        data[ctx.global_id()] += 1.5;
                        t.fadd(1);
                        t.load(4);
                        t.store(4);
                    }
                });
            }
            (dev.elapsed(), data)
        };
        let (t1, d1) = run();
        let (t2, d2) = run();
        assert_eq!(t1, t2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let mut dev = titan();
        let small = dev.transfer(TransferDir::HostToDevice, 1 << 10);
        let large = dev.transfer(TransferDir::HostToDevice, 1 << 26);
        assert!(large.duration > small.duration);
        // 64 MiB over 12 GB/s ≈ 5.6 ms.
        let expected = 67_108_864.0 / 12.0e9;
        let got = (large.duration - SimDuration::from_nanos(dev.spec().transfer_overhead_ns))
            .as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn reset_clears_clock_and_stats() {
        let mut dev = titan();
        dev.launch("k", LaunchConfig::new(1, 32), |_, t| t.fadd(1));
        dev.reset();
        assert_eq!(dev.elapsed(), SimDuration::ZERO);
        assert_eq!(dev.stats().launches, 0);
    }

    #[test]
    fn divergent_kernel_costs_more_than_uniform() {
        let mut dev = titan();
        let uniform = dev.launch("u", LaunchConfig::new(100, 96), |_, t| {
            for _ in 0..64 {
                t.branch(false);
                t.fadd(1);
            }
        });
        let divergent = dev.launch("d", LaunchConfig::new(100, 96), |_, t| {
            for _ in 0..64 {
                t.branch(true);
                t.fadd(1);
            }
        });
        assert!(divergent.critical_cycles > uniform.critical_cycles);
    }
}
