//! A deterministic SIMT (CUDA-like) device simulator.
//!
//! The reproduced paper runs its ATM kernels on three NVIDIA cards (GeForce
//! 9800 GT, GTX 880M, Titan X Pascal). No GPU is available in this
//! environment, so this crate provides the substitute substrate: a
//! functional-plus-timed simulator of the CUDA execution model.
//!
//! # Model
//!
//! * **Functional layer** — [`CudaDevice::launch`] executes a kernel closure
//!   once per thread of a `grid × block` launch, in deterministic
//!   (block-major, thread-minor) order. This order is a valid serialization
//!   of the data-race-free kernels used by the ATM application, so results
//!   are bit-reproducible run to run — mirroring the paper's observation
//!   that CUDA timings/results were deterministic.
//! * **Timing layer** — while it runs, each thread reports its abstract
//!   operation mix into a [`ThreadTrace`] (a [`sim_clock::CostSink`]).
//!   Traces are folded into per-warp issue costs (lockstep: a warp issues
//!   the *maximum* per-class count over its lanes; divergent branches pay an
//!   extra re-issue penalty), warps fold into per-SM totals via the block
//!   scheduler, and the kernel's simulated time is
//!   `launch_overhead + max(compute_time, memory_time)` — a roofline with
//!   occupancy-dependent latency hiding. Host↔device transfers are timed
//!   against a PCIe model.
//!
//! The catalog in [`spec`] carries the three cards' real shapes (SM count,
//! cores/SM, clocks, bandwidth, compute capability). The cost tables in
//! [`cost`] differentiate compute capabilities (coalescing strictness,
//! divergence penalty, FP-division throughput), which is what makes the
//! GeForce 9800 GT's quadratic term visible in the reproduction while the
//! 880M and Titan X stay near-linear — the same mechanism the paper's
//! MATLAB fits surfaced.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
//! use sim_clock::CostSink;
//!
//! let mut dev = CudaDevice::new(DeviceSpec::titan_x_pascal());
//! let n = 1_000usize;
//! let mut out = vec![0.0f32; n];
//!
//! // One thread per element, 96-thread blocks like the paper.
//! let report = dev.launch("saxpy-ish", LaunchConfig::paper_for_items(n), |ctx, t| {
//!     if ctx.in_range(n) {
//!         out[ctx.global_id()] = 2.0 * ctx.global_id() as f32;
//!         t.fmul(1);
//!         t.store(4);
//!     }
//! });
//!
//! assert_eq!(out[10], 20.0);
//! assert!(report.duration() > sim_clock::SimDuration::ZERO);
//! assert_eq!(dev.stats().launches, 1);
//! ```

pub mod cost;
pub mod device;
pub mod launch;
pub mod memory;
pub mod report;
pub mod sm;
pub mod spec;
pub mod trace;
pub mod warp;

pub use cost::CostTable;
pub use device::CudaDevice;
pub use launch::{LaunchConfig, ThreadCtx};
pub use memory::DeviceBuffer;
pub use report::{DeviceStats, LaunchReport, TransferReport};
pub use spec::{ComputeCapability, DeviceSpec};
pub use trace::ThreadTrace;
