//! Launch configuration and per-thread context.

use crate::spec::DeviceSpec;

/// A 1-D kernel launch configuration (`<<<grid, block>>>`).
///
/// The ATM application is one-dimensional over aircraft/radar indices, as in
/// the paper (96 threads per block, blocks scale with the aircraft count),
/// so the simulator models 1-D launches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    /// Construct a launch configuration.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// The paper's configuration: fixed 96 threads per block, grid sized to
    /// cover `n` work items (one aircraft/radar per thread).
    pub fn paper_for_items(n: usize) -> Self {
        const THREADS_PER_BLOCK: u32 = 96;
        let blocks = n.div_ceil(THREADS_PER_BLOCK as usize).max(1) as u32;
        LaunchConfig {
            grid_dim: blocks,
            block_dim: THREADS_PER_BLOCK,
        }
    }

    /// Cover `n` items with a caller-chosen block size (for the block-size
    /// ablation bench).
    pub fn cover(n: usize, block_dim: u32) -> Self {
        assert!(block_dim > 0, "block_dim must be positive");
        let blocks = n.div_ceil(block_dim as usize).max(1) as u32;
        LaunchConfig {
            grid_dim: blocks,
            block_dim,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Warps per block on a device (`ceil(block_dim / warp_size)`).
    pub fn warps_per_block(&self, spec: &DeviceSpec) -> u32 {
        self.block_dim.div_ceil(spec.warp_size)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self, spec: &DeviceSpec) -> u64 {
        self.grid_dim as u64 * self.warps_per_block(spec) as u64
    }

    /// Panic if this launch exceeds hardware limits, mirroring the CUDA
    /// runtime's launch-failure errors.
    pub fn validate(&self, spec: &DeviceSpec) {
        assert!(self.grid_dim > 0, "grid_dim must be positive");
        assert!(self.block_dim > 0, "block_dim must be positive");
        assert!(
            self.block_dim <= spec.max_threads_per_block,
            "block_dim {} exceeds device limit {} on {}",
            self.block_dim,
            spec.max_threads_per_block,
            spec.name
        );
    }
}

/// Everything a kernel can ask about its position in a launch; the
/// simulator's equivalent of `blockIdx`/`threadIdx`/`blockDim`/`gridDim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of this thread's block within the grid.
    pub block_idx: u32,
    /// Index of this thread within its block.
    pub thread_idx: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
}

impl ThreadCtx {
    /// The flattened global thread index
    /// (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx as usize * self.block_dim as usize + self.thread_idx as usize
    }

    /// Convenience guard used by every kernel in the ATM application:
    /// whether this thread has a work item when `n` items are distributed
    /// one per thread.
    #[inline]
    pub fn in_range(&self, n: usize) -> bool {
        self.global_id() < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn paper_config_uses_96_thread_blocks() {
        let cfg = LaunchConfig::paper_for_items(96);
        assert_eq!(cfg.block_dim, 96);
        assert_eq!(cfg.grid_dim, 1);
        let cfg = LaunchConfig::paper_for_items(97);
        assert_eq!(cfg.grid_dim, 2);
        let cfg = LaunchConfig::paper_for_items(9600);
        assert_eq!(cfg.grid_dim, 100);
    }

    #[test]
    fn paper_config_handles_zero_items() {
        let cfg = LaunchConfig::paper_for_items(0);
        assert_eq!(cfg.grid_dim, 1);
        assert_eq!(cfg.total_threads(), 96);
    }

    #[test]
    fn warp_counting_rounds_up() {
        let spec = DeviceSpec::titan_x_pascal();
        let cfg = LaunchConfig::new(2, 96);
        assert_eq!(cfg.warps_per_block(&spec), 3);
        assert_eq!(cfg.total_warps(&spec), 6);
        let cfg = LaunchConfig::new(1, 33);
        assert_eq!(cfg.warps_per_block(&spec), 2);
    }

    #[test]
    fn global_id_is_block_major() {
        let ctx = ThreadCtx {
            block_idx: 3,
            thread_idx: 5,
            block_dim: 96,
            grid_dim: 10,
        };
        assert_eq!(ctx.global_id(), 3 * 96 + 5);
        assert!(ctx.in_range(300));
        assert!(!ctx.in_range(200));
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_is_rejected() {
        let spec = DeviceSpec::geforce_9800_gt(); // limit 512
        LaunchConfig::new(1, 1024).validate(&spec);
    }

    #[test]
    fn cover_distributes_evenly() {
        let cfg = LaunchConfig::cover(1000, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert!(cfg.total_threads() >= 1000);
    }
}
