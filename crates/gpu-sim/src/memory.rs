//! Modeled device-resident buffers.
//!
//! A [`DeviceBuffer`] owns data "on the device". Host code cannot touch the
//! contents except through explicit `upload`/`download` calls on the owning
//! [`crate::CudaDevice`] (which model PCIe time) or inside a kernel launch —
//! the same discipline the CUDA runtime enforces, minus the footguns. The
//! buffer tracks a generation counter so tests can assert that data actually
//! moved when the paper's algorithm says it must (e.g. the radar shuffle
//! round-trips through the host every period).

/// A typed buffer in simulated device global memory.
#[derive(Clone, Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    uploads: u64,
    downloads: u64,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocate a zero/default-initialized device buffer of `len` elements
    /// (the analogue of `cudaMalloc` + `cudaMemset`).
    pub fn zeroed(len: usize) -> Self {
        DeviceBuffer {
            data: vec![T::default(); len],
            uploads: 0,
            downloads: 0,
        }
    }
}

impl<T: Clone> DeviceBuffer<T> {
    /// Allocate a device buffer holding a copy of `host` (allocation only —
    /// transfer time is charged by [`crate::CudaDevice::upload`]).
    pub fn from_host(host: &[T]) -> Self {
        DeviceBuffer {
            data: host.to_vec(),
            uploads: 0,
            downloads: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (what a transfer of the whole buffer moves).
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// Kernel-side view of the contents. Only meaningful inside a launch;
    /// named to make accidental host-side peeking greppable.
    pub fn as_device_slice(&self) -> &[T] {
        &self.data
    }

    /// Kernel-side mutable view of the contents.
    pub fn as_device_slice_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Overwrite contents from host data. Called by
    /// [`crate::CudaDevice::upload`]; panics on length mismatch like
    /// `cudaMemcpy` with a bad size would fail.
    pub(crate) fn copy_from_host(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.data.len(), "H2D size mismatch");
        self.data.clone_from_slice(host);
        self.uploads += 1;
    }

    /// Copy contents out to host data. Called by
    /// [`crate::CudaDevice::download`].
    pub(crate) fn copy_to_host(&mut self, host: &mut [T]) {
        assert_eq!(host.len(), self.data.len(), "D2H size mismatch");
        host.clone_from_slice(&self.data);
        self.downloads += 1;
    }

    /// How many H2D copies this buffer has received.
    pub fn upload_count(&self) -> u64 {
        self.uploads
    }

    /// How many D2H copies this buffer has served.
    pub fn download_count(&self) -> u64 {
        self.downloads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffer_is_default_initialized() {
        let b: DeviceBuffer<f32> = DeviceBuffer::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.as_device_slice().iter().all(|&v| v == 0.0));
        assert_eq!(b.size_bytes(), 32);
    }

    #[test]
    fn from_host_copies_contents() {
        let b = DeviceBuffer::from_host(&[1u32, 2, 3]);
        assert_eq!(b.as_device_slice(), &[1, 2, 3]);
        assert_eq!(b.size_bytes(), 12);
    }

    #[test]
    fn round_trip_preserves_data_and_counts() {
        let mut b = DeviceBuffer::zeroed(4);
        b.copy_from_host(&[9u64, 8, 7, 6]);
        let mut out = vec![0u64; 4];
        b.copy_to_host(&mut out);
        assert_eq!(out, vec![9, 8, 7, 6]);
        assert_eq!(b.upload_count(), 1);
        assert_eq!(b.download_count(), 1);
    }

    #[test]
    #[should_panic(expected = "H2D size mismatch")]
    fn mismatched_upload_panics() {
        let mut b: DeviceBuffer<u8> = DeviceBuffer::zeroed(4);
        b.copy_from_host(&[1, 2]);
    }

    #[test]
    fn empty_buffer_is_empty() {
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }
}
