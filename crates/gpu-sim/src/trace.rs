//! Per-thread operation traces.

use sim_clock::{CostSink, OpClass, OP_CLASS_COUNT};

/// The operation trace of one simulated CUDA thread.
///
/// A `ThreadTrace` is handed to the kernel closure for every thread; the
/// kernel reports its abstract operation mix through the [`CostSink`]
/// interface. The launch machinery folds lane traces into warp costs
/// ([`crate::warp::WarpAccumulator`]) and reuses a single allocation per
/// launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Per-class operation counts, indexed by `OpClass as usize`.
    pub ops: [u64; OP_CLASS_COUNT],
    /// Bytes read from global memory by this thread.
    pub bytes_loaded: u64,
    /// Bytes read warp-uniformly (same address across lanes); devices with
    /// a cache/broadcast path serve these once per warp.
    pub bytes_loaded_uniform: u64,
    /// Bytes written to global memory by this thread.
    pub bytes_stored: u64,
    /// Branches this thread flagged as warp-divergent.
    pub divergent_branches: u64,
}

impl ThreadTrace {
    /// A fresh, empty trace.
    pub fn new() -> Self {
        ThreadTrace::default()
    }

    /// Zero all counters, keeping the value ready for the next thread.
    #[inline]
    pub fn reset(&mut self) {
        *self = ThreadTrace::default();
    }

    /// Count for one operation class.
    #[inline]
    pub fn count(&self, class: OpClass) -> u64 {
        self.ops[class as usize]
    }

    /// Total global-memory traffic of the thread (before any warp-level
    /// deduplication of uniform reads).
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_loaded_uniform + self.bytes_stored
    }

    /// True when the thread reported no activity at all.
    pub fn is_empty(&self) -> bool {
        self.ops.iter().all(|&c| c == 0)
            && self.bytes_loaded == 0
            && self.bytes_loaded_uniform == 0
            && self.bytes_stored == 0
            && self.divergent_branches == 0
    }
}

impl CostSink for ThreadTrace {
    #[inline]
    fn op(&mut self, class: OpClass, count: u64) {
        self.ops[class as usize] += count;
    }

    #[inline]
    fn load(&mut self, bytes: u64) {
        self.bytes_loaded += bytes;
    }

    #[inline]
    fn load_shared(&mut self, bytes: u64) {
        self.bytes_loaded_uniform += bytes;
    }

    #[inline]
    fn store(&mut self, bytes: u64) {
        self.bytes_stored += bytes;
    }

    #[inline]
    fn branch(&mut self, diverged: bool) {
        self.ops[OpClass::Branch as usize] += 1;
        if diverged {
            self.divergent_branches += 1;
        }
    }

    #[inline]
    fn branches(&mut self, count: u64, diverged: bool) {
        self.ops[OpClass::Branch as usize] += count;
        if diverged {
            self.divergent_branches += count;
        }
    }

    #[inline]
    fn loads_shared(&mut self, count: u64, bytes_each: u64) {
        self.bytes_loaded_uniform += count * bytes_each;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_all_channels() {
        let mut t = ThreadTrace::new();
        t.fadd(2);
        t.fdiv(1);
        t.load(12);
        t.load_shared(8);
        t.store(4);
        t.branch(true);
        t.branch(false);
        assert_eq!(t.count(OpClass::FpAdd), 2);
        assert_eq!(t.count(OpClass::FpDiv), 1);
        assert_eq!(t.count(OpClass::Branch), 2);
        assert_eq!(t.divergent_branches, 1);
        assert_eq!(t.bytes_loaded, 12);
        assert_eq!(t.bytes_loaded_uniform, 8);
        assert_eq!(t.bytes_stored, 4);
        assert_eq!(t.total_bytes(), 24);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = ThreadTrace::new();
        t.ialu(5);
        t.load(100);
        t.branch(true);
        assert!(!t.is_empty());
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t, ThreadTrace::new());
    }

    #[test]
    fn empty_trace_reports_empty() {
        assert!(ThreadTrace::new().is_empty());
    }

    #[test]
    fn aggregate_bookings_match_per_call_bookings() {
        let mut per_call = ThreadTrace::new();
        for _ in 0..9 {
            per_call.branch(false);
        }
        for _ in 0..2 {
            per_call.branch(true);
        }
        for _ in 0..4 {
            per_call.load_shared(32);
        }
        let mut agg = ThreadTrace::new();
        agg.branches(9, false);
        agg.branches(2, true);
        agg.loads_shared(4, 32);
        assert_eq!(per_call, agg);
    }
}
