//! SM scheduling and the kernel timing model.
//!
//! Blocks are assigned to SMs round-robin (the hardware's wave scheduler is
//! load-balancing for uniform blocks, which the ATM kernels are). Per SM we
//! accumulate warp issue cycles; the kernel's compute time is the *maximum*
//! over SMs divided by the core clock. Memory time is device-wide traffic
//! over effective bandwidth plus an occupancy-scaled latency floor. The
//! kernel's modeled duration is
//!
//! ```text
//! launch_overhead + max(compute_time, memory_time)
//! ```
//!
//! i.e. a roofline with perfect compute/memory overlap — optimistic but
//! monotone and deterministic, which is what the reproduction needs.

use crate::cost::CostTable;
use crate::launch::LaunchConfig;
use crate::spec::DeviceSpec;
use crate::warp::WarpCost;
use sim_clock::SimDuration;

/// Static occupancy achieved by a launch on a device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Resident warps per SM (bounded by warp and block limits).
    pub resident_warps: u32,
    /// Resident blocks per SM.
    pub resident_blocks: u32,
    /// `resident_warps / max_warps_per_sm`, in `[0, 1]`.
    pub fraction: f64,
}

/// Compute static occupancy for a launch (register/shared-memory pressure
/// is not modeled; the ATM kernels are small and occupancy-limited by block
/// geometry alone).
pub fn occupancy(cfg: &LaunchConfig, spec: &DeviceSpec) -> Occupancy {
    let warps_per_block = cfg.warps_per_block(spec);
    let by_warps = spec.max_warps_per_sm / warps_per_block.max(1);
    let resident_blocks = by_warps
        .min(spec.max_blocks_per_sm)
        .max(1)
        .min(cfg.grid_dim);
    let resident_warps = (resident_blocks * warps_per_block).min(spec.max_warps_per_sm);
    Occupancy {
        resident_warps,
        resident_blocks,
        fraction: resident_warps as f64 / spec.max_warps_per_sm as f64,
    }
}

/// Aggregated cost of one launch, before conversion to time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SmSchedule {
    /// Per-SM accumulated warp issue cycles.
    pub per_sm_cycles: Vec<f64>,
    /// Device-wide global memory traffic in bytes.
    pub total_bytes: u64,
    /// Total warps scheduled.
    pub warps: u64,
}

impl SmSchedule {
    /// A schedule for a device with `sm_count` SMs.
    pub fn new(sm_count: u32) -> Self {
        SmSchedule {
            per_sm_cycles: vec![0.0; sm_count as usize],
            total_bytes: 0,
            warps: 0,
        }
    }

    /// Account one warp of block `block_idx` (blocks are placed on SM
    /// `block_idx % sm_count`).
    pub fn add_warp(&mut self, block_idx: u32, cost: WarpCost) {
        let sm = block_idx as usize % self.per_sm_cycles.len();
        self.per_sm_cycles[sm] += cost.issue_cycles;
        self.total_bytes += cost.bytes;
        self.warps += 1;
    }

    /// The busiest SM's cycle count.
    pub fn critical_path_cycles(&self) -> f64 {
        self.per_sm_cycles.iter().fold(0.0_f64, |a, &b| a.max(b))
    }
}

/// Timing breakdown of one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelTiming {
    /// Compute-side time (critical-path SM cycles / clock).
    pub compute: SimDuration,
    /// Memory-side time (traffic / effective bandwidth + exposed latency).
    pub memory: SimDuration,
    /// Fixed launch overhead.
    pub overhead: SimDuration,
    /// Modeled total: `overhead + max(compute, memory)`.
    pub total: SimDuration,
}

/// Convert an [`SmSchedule`] into kernel time on a device.
pub fn kernel_time(
    schedule: &SmSchedule,
    cfg: &LaunchConfig,
    spec: &DeviceSpec,
    table: &CostTable,
) -> KernelTiming {
    kernel_time_with_occupancy(schedule, spec, table, occupancy(cfg, spec))
}

/// [`kernel_time`] with a precomputed [`Occupancy`] — callers that already
/// computed (or memoized) the occupancy of this launch geometry avoid
/// re-deriving it per launch.
pub fn kernel_time_with_occupancy(
    schedule: &SmSchedule,
    spec: &DeviceSpec,
    table: &CostTable,
    occ: Occupancy,
) -> KernelTiming {
    // Compute side: the busiest SM's issue cycles at the core clock.
    let compute_cycles = schedule.critical_path_cycles();
    let compute = duration_from_cycles_f64(compute_cycles, spec.clock_mhz);

    // Memory side: device-wide traffic over coalescing-derated bandwidth…
    let effective_bw_bytes_per_s =
        spec.mem_bandwidth_mb_s as f64 * 1.0e6 * table.coalescing_efficiency;
    let bandwidth_secs = schedule.total_bytes as f64 / effective_bw_bytes_per_s;
    // …plus the share of memory latency the resident warps cannot hide.
    // With `resident_warps >= warps_to_hide_latency` the pipeline keeps
    // enough requests in flight that latency disappears behind bandwidth;
    // below that, a proportional share of one full latency is exposed per
    // *round* of resident warps.
    let hiding = (occ.resident_warps as f64 / table.warps_to_hide_latency).min(1.0);
    let exposed_latency_cycles = if schedule.total_bytes > 0 {
        let warp_rounds = (schedule.warps as f64
            / (occ.resident_warps.max(1) as f64 * spec.sm_count as f64))
            .ceil();
        table.mem_latency_cycles * (1.0 - hiding) * warp_rounds
    } else {
        0.0
    };
    let memory = SimDuration::from_secs_f64(bandwidth_secs)
        + duration_from_cycles_f64(exposed_latency_cycles, spec.clock_mhz);

    let overhead = SimDuration::from_nanos(spec.launch_overhead_ns);
    let total = overhead + compute.max(memory);
    KernelTiming {
        compute,
        memory,
        overhead,
        total,
    }
}

/// Fractional-cycle-accurate conversion to [`SimDuration`].
fn duration_from_cycles_f64(cycles: f64, clock_mhz: u32) -> SimDuration {
    // cycles * 1e6 / MHz picoseconds, computed in f64 then truncated: the
    // f64 mantissa covers the magnitudes seen here (< 2^53 ps ≈ 2.5 h).
    SimDuration::from_picos((cycles * 1.0e6 / clock_mhz as f64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn titan() -> (DeviceSpec, CostTable) {
        let spec = DeviceSpec::titan_x_pascal();
        let table = CostTable::for_spec(&spec);
        (spec, table)
    }

    #[test]
    fn occupancy_of_paper_blocks_on_titan() {
        let (spec, _) = titan();
        // 96-thread blocks = 3 warps. 64-warp SM limit / 3 = 21 blocks by
        // warps, capped at 32 max blocks -> 21 blocks, 63 warps.
        let occ = occupancy(&LaunchConfig::new(1000, 96), &spec);
        assert_eq!(occ.resident_blocks, 21);
        assert_eq!(occ.resident_warps, 63);
        assert!((occ.fraction - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_capped_by_grid_size() {
        let (spec, _) = titan();
        let occ = occupancy(&LaunchConfig::new(2, 96), &spec);
        assert_eq!(occ.resident_blocks, 2);
        assert_eq!(occ.resident_warps, 6);
    }

    #[test]
    fn occupancy_small_blocks_limited_by_block_slots() {
        let (spec, _) = titan();
        // 32-thread blocks = 1 warp each; block slots (32) bind before the
        // warp limit (64).
        let occ = occupancy(&LaunchConfig::new(1000, 32), &spec);
        assert_eq!(occ.resident_blocks, 32);
        assert_eq!(occ.resident_warps, 32);
    }

    #[test]
    fn round_robin_balances_uniform_blocks() {
        let mut s = SmSchedule::new(4);
        for b in 0..8u32 {
            s.add_warp(
                b,
                WarpCost {
                    issue_cycles: 10.0,
                    bytes: 100,
                },
            );
        }
        assert!(s.per_sm_cycles.iter().all(|&c| (c - 20.0).abs() < 1e-12));
        assert_eq!(s.total_bytes, 800);
        assert_eq!(s.critical_path_cycles(), 20.0);
    }

    #[test]
    fn critical_path_is_max_not_sum() {
        let mut s = SmSchedule::new(2);
        s.add_warp(
            0,
            WarpCost {
                issue_cycles: 100.0,
                bytes: 0,
            },
        );
        s.add_warp(
            1,
            WarpCost {
                issue_cycles: 30.0,
                bytes: 0,
            },
        );
        assert_eq!(s.critical_path_cycles(), 100.0);
    }

    #[test]
    fn kernel_time_includes_overhead() {
        let (spec, table) = titan();
        let cfg = LaunchConfig::new(1, 96);
        let s = SmSchedule::new(spec.sm_count);
        let t = kernel_time(&s, &cfg, &spec, &table);
        assert_eq!(t.total, SimDuration::from_nanos(spec.launch_overhead_ns));
    }

    #[test]
    fn compute_bound_kernel_scales_with_cycles() {
        let (spec, table) = titan();
        let cfg = LaunchConfig::new(spec.sm_count, 96);
        let mut s1 = SmSchedule::new(spec.sm_count);
        let mut s2 = SmSchedule::new(spec.sm_count);
        for b in 0..spec.sm_count {
            s1.add_warp(
                b,
                WarpCost {
                    issue_cycles: 1.0e6,
                    bytes: 0,
                },
            );
            s2.add_warp(
                b,
                WarpCost {
                    issue_cycles: 2.0e6,
                    bytes: 0,
                },
            );
        }
        let t1 = kernel_time(&s1, &cfg, &spec, &table);
        let t2 = kernel_time(&s2, &cfg, &spec, &table);
        let body1 = t1.total - t1.overhead;
        let body2 = t2.total - t2.overhead;
        let ratio = body2.as_picos() as f64 / body1.as_picos() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernel_scales_with_bytes() {
        let (spec, table) = titan();
        let cfg = LaunchConfig::new(1000, 96);
        let mut s = SmSchedule::new(spec.sm_count);
        // Tiny compute, lots of traffic.
        for b in 0..1000u32 {
            s.add_warp(
                b,
                WarpCost {
                    issue_cycles: 1.0,
                    bytes: 10_000_000,
                },
            );
        }
        let t = kernel_time(&s, &cfg, &spec, &table);
        assert!(t.memory > t.compute);
        // 10 GB over 480 GB/s * 0.9 ≈ 23 ms.
        let expected_s = 1.0e10 / (480.0e9 * 0.9);
        let got_s = t.memory.as_secs_f64();
        assert!(
            (got_s - expected_s).abs() / expected_s < 0.05,
            "{got_s} vs {expected_s}"
        );
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let (spec, table) = titan();
        // One tiny block: 3 resident warps, far below warps_to_hide_latency.
        let cfg = LaunchConfig::new(1, 96);
        let mut s = SmSchedule::new(spec.sm_count);
        s.add_warp(
            0,
            WarpCost {
                issue_cycles: 1.0,
                bytes: 1024,
            },
        );
        let t = kernel_time(&s, &cfg, &spec, &table);
        // Exposed latency must make memory time exceed pure bandwidth time.
        let bw_only = 1024.0 / (480.0e9 * 0.9);
        assert!(t.memory.as_secs_f64() > bw_only);
    }

    #[test]
    fn cycles_to_duration_truncates_consistently() {
        let d = duration_from_cycles_f64(1.5, 1000); // 1.5 cycles @1GHz = 1500ps
        assert_eq!(d.as_picos(), 1500);
    }
}
