//! Launch and transfer reports, and cumulative device statistics.

use crate::launch::LaunchConfig;
use crate::sm::{KernelTiming, Occupancy};
use sim_clock::SimDuration;
use std::fmt;

/// Everything the simulator knows about one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// Kernel name (used in timeline labels and traces).
    pub kernel: String,
    /// The launch geometry.
    pub config: LaunchConfig,
    /// Threads actually executed.
    pub threads: u64,
    /// Warps scheduled.
    pub warps: u64,
    /// Static occupancy achieved.
    pub occupancy: Occupancy,
    /// Timing breakdown.
    pub timing: KernelTiming,
    /// Device-wide global memory traffic in bytes.
    pub bytes: u64,
    /// Critical-path SM issue cycles (busiest SM).
    pub critical_cycles: f64,
}

impl LaunchReport {
    /// The modeled duration of the launch.
    pub fn duration(&self) -> SimDuration {
        self.timing.total
    }

    /// Whether the launch was memory-bound under the roofline.
    pub fn memory_bound(&self) -> bool {
        self.timing.memory > self.timing.compute
    }
}

impl fmt::Display for LaunchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <<<{},{}>>> {} threads, {} warps, occ {:.0}%, {} ({})",
            self.kernel,
            self.config.grid_dim,
            self.config.block_dim,
            self.threads,
            self.warps,
            self.occupancy.fraction * 100.0,
            self.timing.total,
            if self.memory_bound() {
                "memory-bound"
            } else {
                "compute-bound"
            },
        )
    }
}

/// Direction of a host↔device transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device to host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

impl fmt::Display for TransferDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferDir::HostToDevice => write!(f, "H2D"),
            TransferDir::DeviceToHost => write!(f, "D2H"),
        }
    }
}

/// Report for one modeled PCIe transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferReport {
    /// Transfer direction.
    pub dir: TransferDir,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Modeled duration (fixed overhead + bytes/bandwidth).
    pub duration: SimDuration,
}

/// Cumulative statistics for a device since construction (or reset).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceStats {
    /// Kernel launches performed.
    pub launches: u64,
    /// Threads executed across all launches.
    pub threads: u64,
    /// Total modeled kernel time.
    pub kernel_time: SimDuration,
    /// H2D transfers performed.
    pub h2d_transfers: u64,
    /// D2H transfers performed.
    pub d2h_transfers: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Total modeled transfer time.
    pub transfer_time: SimDuration,
}

impl DeviceStats {
    /// Fold a launch into the running totals.
    pub fn record_launch(&mut self, report: &LaunchReport) {
        self.launches += 1;
        self.threads += report.threads;
        self.kernel_time += report.duration();
    }

    /// Fold a transfer into the running totals.
    pub fn record_transfer(&mut self, report: &TransferReport) {
        match report.dir {
            TransferDir::HostToDevice => {
                self.h2d_transfers += 1;
                self.h2d_bytes += report.bytes;
            }
            TransferDir::DeviceToHost => {
                self.d2h_transfers += 1;
                self.d2h_bytes += report.bytes;
            }
        }
        self.transfer_time += report.duration;
    }

    /// Total modeled busy time (kernels + transfers).
    pub fn total_time(&self) -> SimDuration {
        self.kernel_time + self.transfer_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::Occupancy;

    fn dummy_launch(threads: u64, total: SimDuration) -> LaunchReport {
        LaunchReport {
            kernel: "k".into(),
            config: LaunchConfig::new(1, 96),
            threads,
            warps: threads.div_ceil(32),
            occupancy: Occupancy {
                resident_warps: 3,
                resident_blocks: 1,
                fraction: 0.05,
            },
            timing: KernelTiming {
                compute: total,
                memory: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
                total,
            },
            bytes: 0,
            critical_cycles: 0.0,
        }
    }

    #[test]
    fn stats_accumulate_launches_and_transfers() {
        let mut s = DeviceStats::default();
        s.record_launch(&dummy_launch(96, SimDuration::from_micros(10)));
        s.record_launch(&dummy_launch(192, SimDuration::from_micros(20)));
        s.record_transfer(&TransferReport {
            dir: TransferDir::HostToDevice,
            bytes: 1_000,
            duration: SimDuration::from_micros(5),
        });
        s.record_transfer(&TransferReport {
            dir: TransferDir::DeviceToHost,
            bytes: 500,
            duration: SimDuration::from_micros(3),
        });
        assert_eq!(s.launches, 2);
        assert_eq!(s.threads, 288);
        assert_eq!(s.kernel_time, SimDuration::from_micros(30));
        assert_eq!(s.h2d_bytes, 1_000);
        assert_eq!(s.d2h_bytes, 500);
        assert_eq!(s.transfer_time, SimDuration::from_micros(8));
        assert_eq!(s.total_time(), SimDuration::from_micros(38));
    }

    #[test]
    fn launch_report_display_mentions_geometry() {
        let r = dummy_launch(96, SimDuration::from_micros(10));
        let s = r.to_string();
        assert!(s.contains("<<<1,96>>>"), "{s}");
        assert!(s.contains("compute-bound"), "{s}");
    }

    #[test]
    fn transfer_dir_display() {
        assert_eq!(TransferDir::HostToDevice.to_string(), "H2D");
        assert_eq!(TransferDir::DeviceToHost.to_string(), "D2H");
    }
}
