//! Property tests: launch accounting, occupancy bounds, timing laws.

use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
use proptest::prelude::*;
use sim_clock::{CostSink, SimDuration};

fn arb_spec() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::geforce_9800_gt()),
        Just(DeviceSpec::gtx_880m()),
        Just(DeviceSpec::titan_x_pascal()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_thread_runs_exactly_once(
        spec in arb_spec(),
        grid in 1u32..40,
        block in 1u32..512,
    ) {
        let block = block.min(spec.max_threads_per_block);
        let mut dev = CudaDevice::new(spec);
        let cfg = LaunchConfig::new(grid, block);
        let total = cfg.total_threads() as usize;
        let mut hits = vec![0u32; total];
        dev.launch("probe", cfg, |ctx, _| {
            hits[ctx.global_id()] += 1;
        });
        prop_assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn occupancy_respects_hardware_limits(
        spec in arb_spec(),
        grid in 1u32..10_000,
        block in 1u32..512,
    ) {
        let block = block.min(spec.max_threads_per_block);
        let cfg = LaunchConfig::new(grid, block);
        let occ = gpu_sim::sm::occupancy(&cfg, &spec);
        prop_assert!(occ.resident_warps >= 1);
        prop_assert!(occ.resident_warps <= spec.max_warps_per_sm);
        prop_assert!(occ.resident_blocks <= spec.max_blocks_per_sm);
        prop_assert!(occ.fraction > 0.0 && occ.fraction <= 1.0);
    }

    #[test]
    fn kernel_time_is_monotone_in_per_thread_work(
        spec in arb_spec(),
        threads in 96usize..5_000,
        ops_small in 1u64..500,
        extra in 1u64..500,
    ) {
        let run = |ops: u64, spec: &DeviceSpec| {
            let mut dev = CudaDevice::new(spec.clone());
            let r = dev.launch("w", LaunchConfig::paper_for_items(threads), |ctx, t| {
                if ctx.in_range(threads) {
                    t.fadd(ops);
                }
            });
            r.duration()
        };
        let small = run(ops_small, &spec);
        let large = run(ops_small + extra, &spec);
        prop_assert!(large >= small, "{small} > {large}");
    }

    #[test]
    fn launches_are_bit_deterministic(
        spec in arb_spec(),
        threads in 1usize..3_000,
        ops in 1u64..200,
    ) {
        let run = |spec: &DeviceSpec| {
            let mut dev = CudaDevice::new(spec.clone());
            let r = dev.launch("d", LaunchConfig::paper_for_items(threads), |ctx, t| {
                if ctx.in_range(threads) {
                    t.fmul(ops);
                    t.load(8);
                    t.load_shared(64);
                }
            });
            (r.duration(), r.bytes, r.critical_cycles.to_bits())
        };
        prop_assert_eq!(run(&spec), run(&spec));
    }

    #[test]
    fn transfers_scale_with_bytes_and_never_undershoot_overhead(
        spec in arb_spec(),
        bytes in 0u64..1_000_000_000,
    ) {
        let overhead = SimDuration::from_nanos(spec.transfer_overhead_ns);
        let mut dev = CudaDevice::new(spec);
        let r = dev.transfer(gpu_sim::report::TransferDir::HostToDevice, bytes);
        prop_assert!(r.duration >= overhead);
        let r2 = dev.transfer(gpu_sim::report::TransferDir::HostToDevice, bytes * 2);
        prop_assert!(r2.duration >= r.duration);
    }

    #[test]
    fn warp_count_matches_geometry(
        spec in arb_spec(),
        grid in 1u32..50,
        block in 1u32..512,
    ) {
        let block = block.min(spec.max_threads_per_block);
        let mut dev = CudaDevice::new(spec.clone());
        let cfg = LaunchConfig::new(grid, block);
        let r = dev.launch("warps", cfg, |_, t| t.ialu(1));
        let expected = grid as u64 * block.div_ceil(spec.warp_size) as u64;
        prop_assert_eq!(r.warps, expected);
    }
}
