//! Randomized-but-deterministic tests: launch accounting, occupancy
//! bounds, timing laws. Fixed seeds, so failures reproduce exactly.

use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
use sim_clock::{CostSink, SimDuration, SimRng};

fn arb_spec(rng: &mut SimRng) -> DeviceSpec {
    match rng.next_u64() % 3 {
        0 => DeviceSpec::geforce_9800_gt(),
        1 => DeviceSpec::gtx_880m(),
        _ => DeviceSpec::titan_x_pascal(),
    }
}

#[test]
fn every_thread_runs_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0xC1);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let grid = 1 + (rng.next_u64() % 39) as u32;
        let block = (1 + (rng.next_u64() % 511) as u32).min(spec.max_threads_per_block);
        let mut dev = CudaDevice::new(spec);
        let cfg = LaunchConfig::new(grid, block);
        let total = cfg.total_threads() as usize;
        let mut hits = vec![0u32; total];
        dev.launch("probe", cfg, |ctx, _| {
            hits[ctx.global_id()] += 1;
        });
        assert!(hits.iter().all(|&h| h == 1));
    }
}

#[test]
fn occupancy_respects_hardware_limits() {
    let mut rng = SimRng::seed_from_u64(0xC2);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let grid = 1 + (rng.next_u64() % 9_999) as u32;
        let block = (1 + (rng.next_u64() % 511) as u32).min(spec.max_threads_per_block);
        let cfg = LaunchConfig::new(grid, block);
        let occ = gpu_sim::sm::occupancy(&cfg, &spec);
        assert!(occ.resident_warps >= 1);
        assert!(occ.resident_warps <= spec.max_warps_per_sm);
        assert!(occ.resident_blocks <= spec.max_blocks_per_sm);
        assert!(occ.fraction > 0.0 && occ.fraction <= 1.0);
    }
}

#[test]
fn kernel_time_is_monotone_in_per_thread_work() {
    let mut rng = SimRng::seed_from_u64(0xC3);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let threads = 96 + (rng.next_u64() % 4_904) as usize;
        let ops_small = 1 + rng.next_u64() % 499;
        let extra = 1 + rng.next_u64() % 499;
        let run = |ops: u64, spec: &DeviceSpec| {
            let mut dev = CudaDevice::new(spec.clone());
            let r = dev.launch("w", LaunchConfig::paper_for_items(threads), |ctx, t| {
                if ctx.in_range(threads) {
                    t.fadd(ops);
                }
            });
            r.duration()
        };
        let small = run(ops_small, &spec);
        let large = run(ops_small + extra, &spec);
        assert!(large >= small, "{small} > {large}");
    }
}

#[test]
fn launches_are_bit_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xC4);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let threads = 1 + (rng.next_u64() % 2_999) as usize;
        let ops = 1 + rng.next_u64() % 199;
        let run = |spec: &DeviceSpec| {
            let mut dev = CudaDevice::new(spec.clone());
            let r = dev.launch("d", LaunchConfig::paper_for_items(threads), |ctx, t| {
                if ctx.in_range(threads) {
                    t.fmul(ops);
                    t.load(8);
                    t.load_shared(64);
                }
            });
            (r.duration(), r.bytes, r.critical_cycles.to_bits())
        };
        assert_eq!(run(&spec), run(&spec));
    }
}

#[test]
fn transfers_scale_with_bytes_and_never_undershoot_overhead() {
    let mut rng = SimRng::seed_from_u64(0xC5);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let bytes = rng.next_u64() % 1_000_000_000;
        let overhead = SimDuration::from_nanos(spec.transfer_overhead_ns);
        let mut dev = CudaDevice::new(spec);
        let r = dev.transfer(gpu_sim::report::TransferDir::HostToDevice, bytes);
        assert!(r.duration >= overhead);
        let r2 = dev.transfer(gpu_sim::report::TransferDir::HostToDevice, bytes * 2);
        assert!(r2.duration >= r.duration);
    }
}

#[test]
fn warp_count_matches_geometry() {
    let mut rng = SimRng::seed_from_u64(0xC6);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng);
        let grid = 1 + (rng.next_u64() % 49) as u32;
        let block = (1 + (rng.next_u64() % 511) as u32).min(spec.max_threads_per_block);
        let mut dev = CudaDevice::new(spec.clone());
        let cfg = LaunchConfig::new(grid, block);
        let r = dev.launch("warps", cfg, |_, t| t.ialu(1));
        let expected = grid as u64 * block.div_ceil(spec.warp_size) as u64;
        assert_eq!(r.warps, expected);
    }
}
