//! Cross-process differential suite for the process-per-shard halo
//! exchange (DESIGN.md §15): `atm-server coordinator` plus real
//! `atm-server shard-worker` OS processes over localhost sockets must
//! produce byte-identical `CycleReport` lines and telemetry metrics to the
//! in-process [`replay_log`] of the same spec — across {Grid, Incremental}
//! scans × {1, 4} worker processes × two scenario-corpus shapes. A worker
//! killed mid-protocol must surface as a clean nonzero coordinator exit
//! with *no* artifacts, never a hang.
//!
//! [`replay_log`]: atm_server::replay_log

use atm_core::{AircraftUpdate, ScanMode};
use atm_server::{replay_log, write_log, LogEntry, ServerSpec};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

const CYCLES: u64 = 3;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atm_proc_shard_{}_{name}", std::process::id()))
}

/// A deterministic ingest batch derived only from `(round, count)` — the
/// same arithmetic the replay differential uses, so shapes are comparable.
fn batch(round: u64, count: u32) -> Vec<AircraftUpdate> {
    (0..count)
        .map(|i| {
            let k = round * 37 + u64::from(i) * 11;
            AircraftUpdate {
                id: (k % 200) as u32,
                x: ((k % 640) as f32) - 320.0,
                y: ((k % 580) as f32) - 290.0,
                alt: 8_000.0 + ((k % 47) as f32) * 500.0,
                dx: 0.01 + ((k % 5) as f32) * 0.005,
                dy: -0.01 - ((k % 3) as f32) * 0.005,
            }
        })
        .collect()
}

fn ingest_log() -> Vec<LogEntry> {
    let mut log = Vec::new();
    let mut seq = 0u64;
    for cycle in 0..CYCLES - 1 {
        for sub in 0..2 {
            seq += 1;
            log.push(LogEntry {
                seq,
                cycle,
                updates: batch(cycle * 2 + sub, 24),
            });
        }
    }
    log
}

fn spec(scan: ScanMode, shards: usize, scenario: &str) -> ServerSpec {
    ServerSpec {
        n: 200,
        seed: 11,
        scenario: Some(scenario.to_owned()),
        scan,
        shards,
        platform: "xeon-multicore".to_owned(),
        ..ServerSpec::default()
    }
}

fn scan_slug(scan: ScanMode) -> &'static str {
    atm_server::spec::scan_to_slug(scan)
}

/// Poll `child` until it exits; kill and panic past the deadline so a hung
/// coordinator fails the test instead of wedging the suite.
fn wait_with_deadline(child: &mut Child, what: &str, secs: u64) -> ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("{what} did not exit within {secs}s");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Read the coordinator's `--port-file` once it appears.
fn wait_for_port(path: &PathBuf, coordinator: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_owned();
            }
        }
        if let Some(status) = coordinator.try_wait().expect("try_wait") {
            panic!("coordinator exited ({status}) before publishing its port");
        }
        assert!(Instant::now() < deadline, "no port file within 30s");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Launch a coordinator plus its `shards`² worker processes over the given
/// log, wait for everything, and return `(stdout, metrics, ExitStatus)`.
fn run_cluster(
    tag: &str,
    spec: &ServerSpec,
    log: &[LogEntry],
    die_after_waves: Option<u64>,
) -> (String, Option<String>, ExitStatus) {
    let bin = env!("CARGO_BIN_EXE_atm-server");
    let log_path = tmp(&format!("{tag}.log.jsonl"));
    let port_path = tmp(&format!("{tag}.port"));
    let metrics_path = tmp(&format!("{tag}.metrics.json"));
    std::fs::write(&log_path, write_log(log)).unwrap();
    std::fs::remove_file(&port_path).ok();
    std::fs::remove_file(&metrics_path).ok();

    let mut coordinator = Command::new(bin)
        .args([
            "coordinator",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            port_path.to_str().unwrap(),
            "--log",
            log_path.to_str().unwrap(),
            "--cycles",
            &CYCLES.to_string(),
            "--n",
            &spec.n.to_string(),
            "--seed",
            &spec.seed.to_string(),
            "--scenario",
            spec.scenario.as_deref().unwrap(),
            "--scan",
            scan_slug(spec.scan),
            "--shards",
            &spec.shards.to_string(),
            "--platform",
            &spec.platform,
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let addr = wait_for_port(&port_path, &mut coordinator);

    let shard_count = spec.shards * spec.shards;
    let mut workers: Vec<Child> = (0..shard_count)
        .map(|w| {
            let mut cmd = Command::new(bin);
            cmd.args(["shard-worker", "--connect", &addr, "--retry-ms", "20"]);
            if let (0, Some(k)) = (w, die_after_waves) {
                cmd.args(["--die-after-waves", &k.to_string()]);
            }
            cmd.stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn shard worker")
        })
        .collect();

    let status = wait_with_deadline(&mut coordinator, "coordinator", 120);
    for (w, worker) in workers.iter_mut().enumerate() {
        wait_with_deadline(worker, &format!("shard worker {w}"), 30);
    }
    let mut stdout = String::new();
    use std::io::Read;
    coordinator
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let metrics = std::fs::read_to_string(&metrics_path).ok();
    for p in [&log_path, &port_path, &metrics_path] {
        std::fs::remove_file(p).ok();
    }
    (stdout, metrics, status)
}

/// The differential: every fleet byte, booked op, modeled time and metric
/// the coordinator emits must equal the single-process replay's.
fn assert_cluster_matches_replay(tag: &str, scan: ScanMode, shards: usize, scenario: &str) {
    let spec = spec(scan, shards, scenario);
    let log = ingest_log();
    let (stdout, metrics, status) = run_cluster(tag, &spec, &log, None);
    assert!(status.success(), "coordinator failed ({status}): {stdout}");

    let expected = replay_log(&spec, &log, CYCLES).unwrap();
    let expected_stdout: String = expected
        .reports
        .iter()
        .map(|r| r.to_json().to_compact() + "\n")
        .collect();
    assert_eq!(
        stdout, expected_stdout,
        "CycleReports must be byte-identical across process boundaries \
         ({scan:?}, shards={shards}, {scenario})"
    );
    assert_eq!(
        metrics.as_deref(),
        Some(expected.metrics_json.as_str()),
        "telemetry metrics must be byte-identical across process boundaries \
         ({scan:?}, shards={shards}, {scenario})"
    );
}

#[test]
fn one_worker_grid_hotspot_matches_in_process_replay() {
    assert_cluster_matches_replay("grid1_hotspot", ScanMode::Grid, 1, "hotspot");
}

#[test]
fn four_workers_grid_hotspot_matches_in_process_replay() {
    assert_cluster_matches_replay("grid4_hotspot", ScanMode::Grid, 2, "hotspot");
}

#[test]
fn one_worker_incremental_crossing_matches_in_process_replay() {
    assert_cluster_matches_replay("inc1_crossing", ScanMode::Incremental, 1, "crossing");
}

#[test]
fn four_workers_incremental_crossing_matches_in_process_replay() {
    assert_cluster_matches_replay("inc4_crossing", ScanMode::Incremental, 2, "crossing");
}

/// A worker dying on its first wave claim: the coordinator must exit
/// nonzero promptly (the deadline in `wait_with_deadline` is the no-hang
/// assertion) and leave no partial artifact — no metrics file, no report
/// lines.
#[test]
fn dead_worker_aborts_the_coordinator_without_artifacts() {
    let spec = spec(ScanMode::Grid, 1, "hotspot");
    let log = ingest_log();
    let (stdout, metrics, status) = run_cluster("death", &spec, &log, Some(0));
    assert!(!status.success(), "a dead worker must fail the run");
    assert_eq!(stdout, "", "no report lines may leak from a failed run");
    assert_eq!(metrics, None, "no metrics artifact may be written");
}
