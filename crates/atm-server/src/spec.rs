//! Reproducible server construction: a [`ServerSpec`] pins everything the
//! engine's determinism depends on — fleet source, seed, scan mode, shard
//! grid and platform — so a replay harness can rebuild the exact batch
//! engine a live server ran.

use atm_core::backends::{Roster, TimingKind};
use atm_core::config::{AtmConfig, ScanMode};
use atm_core::{Airfield, AtmBackend, AtmEngine, Scenario};
use telemetry::JsonValue;

/// The slug of a scan mode (the form flags and JSON use).
pub fn scan_to_slug(scan: ScanMode) -> &'static str {
    match scan {
        ScanMode::Naive => "naive",
        ScanMode::Banded => "banded",
        ScanMode::Grid => "grid",
        ScanMode::Incremental => "incremental",
    }
}

/// Parse a scan-mode slug.
pub fn scan_from_slug(s: &str) -> Option<ScanMode> {
    match s {
        "naive" => Some(ScanMode::Naive),
        "banded" => Some(ScanMode::Banded),
        "grid" => Some(ScanMode::Grid),
        "incremental" => Some(ScanMode::Incremental),
        _ => None,
    }
}

/// Everything needed to (re)build a server's engine deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerSpec {
    /// Fleet size.
    pub n: usize,
    /// Config and fleet seed.
    pub seed: u64,
    /// Scenario slug from the [`Scenario`] catalog, or `None` for the
    /// paper's `SetupFlight` fleet.
    pub scenario: Option<String>,
    /// Candidate-pruning mode.
    pub scan: ScanMode,
    /// Shard-grid factor (1 = unsharded).
    pub shards: usize,
    /// Roster platform slug. Modeled platforms (the paper's six) give
    /// deterministic `CycleReport` bytes; measured platforms serve live
    /// traffic with wall-clock timing and forfeit byte-stable replay of
    /// the duration fields.
    pub platform: String,
    /// Step a major cycle automatically every this many wall-clock
    /// milliseconds (`None` = step only on the `step` verb).
    pub autostep_ms: Option<u64>,
    /// Per-subscriber event-queue capacity (drop-oldest beyond it).
    pub queue_cap: usize,
    /// Where the graceful-shutdown path flushes the final telemetry
    /// metrics snapshot.
    pub metrics_path: Option<String>,
    /// Where the graceful-shutdown path flushes the append-only ingest
    /// log.
    pub log_path: Option<String>,
}

impl Default for ServerSpec {
    fn default() -> ServerSpec {
        ServerSpec {
            n: 400,
            seed: 42,
            scenario: None,
            scan: ScanMode::Grid,
            shards: 1,
            platform: "titan-x-pascal".to_owned(),
            autostep_ms: None,
            queue_cap: 1024,
            metrics_path: None,
            log_path: None,
        }
    }
}

impl ServerSpec {
    /// Build the platform backend named by `self.platform`.
    pub fn build_backend(&self) -> Result<Box<dyn AtmBackend>, String> {
        for roster in [Roster::filter(TimingKind::Modeled), Roster::measured()] {
            if let Some(entry) = roster.iter().find(|e| e.slug == self.platform) {
                return Ok(entry.instantiate());
            }
        }
        Err(format!("unknown platform slug `{}`", self.platform))
    }

    /// Build the airfield: scenario fleet when a slug is set, the paper's
    /// `SetupFlight` fleet otherwise, under this spec's scan/shard config.
    pub fn build_airfield(&self) -> Result<Airfield, String> {
        let mut cfg = AtmConfig::with_seed(self.seed);
        cfg.scan = self.scan;
        cfg.shards = self.shards;
        match &self.scenario {
            Some(slug) => {
                let scn = Scenario::by_slug(slug)
                    .ok_or_else(|| format!("unknown scenario slug `{slug}`"))?;
                Ok(scn.airfield_with(self.n, &cfg))
            }
            None => Ok(Airfield::new(self.n, cfg)),
        }
    }

    /// Build the full engine this spec describes. A live server and a
    /// batch replay calling this with an equal spec get byte-identical
    /// starting states.
    pub fn build_engine(&self) -> Result<AtmEngine, String> {
        Ok(AtmEngine::new(
            self.build_airfield()?,
            self.build_backend()?,
        ))
    }

    /// Serialize (fixed key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("n", self.n)
            .set("seed", self.seed)
            .set(
                "scenario",
                match &self.scenario {
                    Some(s) => JsonValue::Str(s.clone()),
                    None => JsonValue::Null,
                },
            )
            .set("scan", scan_to_slug(self.scan))
            .set("shards", self.shards)
            .set("platform", self.platform.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::fleet_hash;

    #[test]
    fn default_spec_builds_a_modeled_engine() {
        let spec = ServerSpec::default();
        let mut engine = spec.build_engine().unwrap();
        let rep = engine.step_major_cycle();
        assert_eq!(rep.cycle, 0);
        assert_eq!(engine.backend_name(), "Titan X (Pascal)");
    }

    #[test]
    fn equal_specs_build_byte_identical_fleets() {
        let spec = ServerSpec {
            scenario: Some("hotspot".to_owned()),
            n: 300,
            seed: 9,
            shards: 4,
            scan: ScanMode::Incremental,
            ..ServerSpec::default()
        };
        let a = spec.build_airfield().unwrap();
        let b = spec.build_airfield().unwrap();
        assert_eq!(fleet_hash(&a.aircraft), fleet_hash(&b.aircraft));
        assert_eq!(a.config().shards, 4);
    }

    #[test]
    fn bad_slugs_are_reported() {
        let mut spec = ServerSpec {
            platform: "cray-1".to_owned(),
            ..ServerSpec::default()
        };
        assert!(spec.build_backend().is_err());
        spec.platform = "titan-x-pascal".to_owned();
        spec.scenario = Some("nope".to_owned());
        assert!(spec.build_airfield().is_err());
    }

    #[test]
    fn scan_slugs_round_trip() {
        for m in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            assert_eq!(scan_from_slug(scan_to_slug(m)), Some(m));
        }
        assert_eq!(scan_from_slug("quantum"), None);
    }
}
