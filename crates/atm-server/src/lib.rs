//! The always-on ATM service layer: a std-only blocking TCP server over
//! the resumable [`atm_core::AtmEngine`].
//!
//! The batch pipeline answers "what happened over N major cycles"; this
//! crate keeps a session *alive*: clients ingest external position
//! updates, subscribe to per-cycle conflict events, and read status and
//! fleet snapshots, while a background loop (or explicit `step` verbs)
//! drives the cyclic executive — the service shape the ROADMAP's
//! "serve heavy traffic" north star calls for.
//!
//! Three layers:
//!
//! * [`proto`] — line-delimited JSON wire format and the append-only
//!   ingest log (byte-stable via [`telemetry::JsonValue`]);
//! * [`server`] — the blocking TCP server: per-connection reader threads,
//!   bounded drop-oldest event queues per subscriber, graceful shutdown
//!   flushing the final metrics snapshot;
//! * [`replay`] — the determinism contract: a recorded ingest log re-fed
//!   through the batch engine reproduces the live session's
//!   `CycleReport`s, fleet hashes and telemetry metrics byte for byte
//!   (modeled platforms).
//!
//! The full protocol is specified in DESIGN.md §14.

pub mod proto;
pub mod replay;
pub mod server;
pub mod spec;

pub use proto::{parse_log, write_log, LogEntry};
pub use replay::{replay_log, ReplayOutcome};
pub use server::{AtmServer, EventQueue};
pub use spec::ServerSpec;
