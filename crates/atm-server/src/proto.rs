//! Wire-format helpers: requests, responses, events and the append-only
//! ingest log, all as line-delimited JSON (DESIGN.md §14).
//!
//! Every document is written with the byte-stable [`JsonValue`] writer
//! (insertion-ordered keys, shortest-round-trip floats), so equal state
//! always serializes to equal bytes — the property the replay-determinism
//! contract rests on.

use atm_core::AircraftUpdate;
use std::io::BufRead;
use telemetry::{parse_json, JsonValue};

/// Hard ceiling on one request line. A client that streams more than this
/// without a newline is not speaking the protocol; the server answers with
/// a clean error and drops the connection instead of buffering without
/// bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Read one `\n`-terminated line of at most `max` bytes.
///
/// Returns `Ok(None)` on a clean EOF at a line boundary, `Ok(Some(line))`
/// (terminator stripped; a final unterminated line is still returned), and
/// `Err` when the line exceeds `max` bytes, is not UTF-8, or the read
/// fails. On the over-limit error the rest of the oversized line is left
/// unread, so the stream is desynchronized — callers must drop the
/// connection after reporting the error.
pub fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<String>, String> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf().map_err(|e| format!("read: {e}"))?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            break; // final unterminated line
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Err(format!("request line exceeds {max} bytes"));
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                if buf.len() + chunk.len() > max {
                    return Err(format!("request line exceeds {max} bytes"));
                }
                let taken = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(taken);
            }
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| "request line is not UTF-8".to_owned())
}

/// One recorded ingest batch: the receipt's sequence number, the number of
/// major cycles that had *completed* when the batch was applied (so replay
/// re-applies it at the same cycle boundary), and the updates themselves.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Ingest sequence number ([`atm_core::IngestReceipt::seq`]).
    pub seq: u64,
    /// Completed major cycles at application time: replay applies this
    /// entry immediately before stepping cycle index `cycle`.
    pub cycle: u64,
    /// The batch's updates, in application order.
    pub updates: Vec<AircraftUpdate>,
}

/// Read one numeric field as `f64`.
fn num(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

/// Serialize one update with a fixed key order.
pub fn update_to_json(u: &AircraftUpdate) -> JsonValue {
    JsonValue::obj()
        .set("id", u.id as u64)
        .set("x", f64::from(u.x))
        .set("y", f64::from(u.y))
        .set("alt", f64::from(u.alt))
        .set("dx", f64::from(u.dx))
        .set("dy", f64::from(u.dy))
}

/// Parse one update. `f32` values survive the trip exactly: the writer
/// emits the shortest round-trip `f64` form and `f32 → f64 → f32` is
/// lossless.
pub fn update_from_json(v: &JsonValue) -> Result<AircraftUpdate, String> {
    Ok(AircraftUpdate {
        id: num(v, "id")? as u32,
        x: num(v, "x")? as f32,
        y: num(v, "y")? as f32,
        alt: num(v, "alt")? as f32,
        dx: num(v, "dx")? as f32,
        dy: num(v, "dy")? as f32,
    })
}

/// Serialize a batch of updates.
pub fn updates_to_json(updates: &[AircraftUpdate]) -> JsonValue {
    JsonValue::Arr(updates.iter().map(update_to_json).collect())
}

/// Parse a batch of updates.
pub fn updates_from_json(v: &JsonValue) -> Result<Vec<AircraftUpdate>, String> {
    v.as_arr()
        .ok_or_else(|| "`updates` must be an array".to_owned())?
        .iter()
        .map(update_from_json)
        .collect()
}

/// Serialize one ingest-log entry (one line of the log file).
pub fn entry_to_json(e: &LogEntry) -> JsonValue {
    JsonValue::obj()
        .set("seq", e.seq)
        .set("cycle", e.cycle)
        .set("updates", updates_to_json(&e.updates))
}

/// Parse one ingest-log entry.
pub fn entry_from_json(v: &JsonValue) -> Result<LogEntry, String> {
    Ok(LogEntry {
        seq: num(v, "seq")? as u64,
        cycle: num(v, "cycle")? as u64,
        updates: updates_from_json(
            v.get("updates")
                .ok_or_else(|| "missing `updates`".to_owned())?,
        )?,
    })
}

/// Render a full ingest log as line-delimited JSON.
pub fn write_log(entries: &[LogEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&entry_to_json(e).to_compact());
        out.push('\n');
    }
    out
}

/// Parse a line-delimited ingest log (blank lines ignored).
pub fn parse_log(text: &str) -> Result<Vec<LogEntry>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| entry_from_json(&parse_json(l)?))
        .collect()
}

/// The standard error response line body.
pub fn error_response(msg: &str) -> JsonValue {
    JsonValue::obj().set("ok", false).set("error", msg)
}

/// Start an `{"ok":true, ...}` response body.
pub fn ok_response() -> JsonValue {
    JsonValue::obj().set("ok", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogEntry {
        LogEntry {
            seq: 3,
            cycle: 2,
            updates: vec![
                AircraftUpdate {
                    id: 7,
                    x: 1.25,
                    y: -3.5,
                    alt: 12_000.0,
                    dx: 0.017,
                    dy: -0.03,
                },
                AircraftUpdate {
                    id: 11,
                    x: 0.1,
                    y: 0.2,
                    alt: 9_500.0,
                    dx: 0.0,
                    dy: 0.05,
                },
            ],
        }
    }

    #[test]
    fn log_round_trips_exactly() {
        let entries = vec![sample()];
        let text = write_log(&entries);
        let back = parse_log(&text).unwrap();
        assert_eq!(back, entries);
        // Byte stability: re-serializing the parse yields identical text.
        assert_eq!(write_log(&back), text);
    }

    #[test]
    fn update_f32_bits_survive_the_wire() {
        // Awkward f32 values (not exactly representable in decimal).
        let u = AircraftUpdate {
            id: 1,
            x: 0.1f32,
            y: 1.0 / 3.0,
            alt: 33_333.3,
            dx: f32::MIN_POSITIVE,
            dy: -0.07,
        };
        let text = update_to_json(&u).to_compact();
        let back = update_from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back.x.to_bits(), u.x.to_bits());
        assert_eq!(back.y.to_bits(), u.y.to_bits());
        assert_eq!(back.alt.to_bits(), u.alt.to_bits());
        assert_eq!(back.dx.to_bits(), u.dx.to_bits());
        assert_eq!(back.dy.to_bits(), u.dy.to_bits());
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(parse_log("{\"seq\":1}\n").is_err());
        assert!(update_from_json(&parse_json("{\"id\":0,\"x\":1.0}").unwrap()).is_err());
        assert!(updates_from_json(&JsonValue::obj()).is_err());
    }

    #[test]
    fn bounded_line_reading_enforces_the_limit() {
        use std::io::Cursor;
        // Normal lines come through with the terminator stripped.
        let mut r = Cursor::new(b"first\nsecond\n".to_vec());
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("first")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("second")
        );
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), None, "clean EOF");

        // A final unterminated line is still returned.
        let mut r = Cursor::new(b"tail".to_vec());
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("tail")
        );

        // One byte over the limit is a clean protocol error, even when the
        // oversized line arrives in small buffered chunks.
        let long = vec![b'x'; 65];
        let mut r = std::io::BufReader::with_capacity(8, Cursor::new(long));
        let e = read_line_bounded(&mut r, 64).unwrap_err();
        assert!(e.contains("exceeds 64 bytes"), "{e}");

        // Exactly at the limit is fine.
        let mut exact = vec![b'y'; 64];
        exact.push(b'\n');
        let mut r = Cursor::new(exact);
        assert_eq!(read_line_bounded(&mut r, 64).unwrap().unwrap().len(), 64);

        // Non-UTF-8 is rejected rather than lossily decoded.
        let mut r = Cursor::new(b"\xff\xfe\n".to_vec());
        assert!(read_line_bounded(&mut r, 64).unwrap_err().contains("UTF-8"));
    }
}
