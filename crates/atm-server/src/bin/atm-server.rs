//! CLI for the ATM service layer.
//!
//! ```text
//! atm-server serve        [--addr HOST:PORT] [spec flags]
//! atm-server replay       --log FILE --cycles N [spec flags] [--metrics-out FILE]
//! atm-server drive        --addr HOST:PORT --log FILE --cycles N [--events-out FILE] [--shutdown]
//! atm-server coordinator  --log FILE --cycles N [--listen HOST:PORT] [--port-file FILE]
//!                         [spec flags] [--metrics-out FILE]
//! atm-server shard-worker --connect HOST:PORT [--retry-ms T] [--retry-attempts K]
//!                         [--die-after-waves W]
//! ```
//!
//! Spec flags: `--n`, `--seed`, `--scenario SLUG`, `--scan MODE`,
//! `--shards K`, `--platform SLUG`, `--autostep-ms T`, `--queue-cap Q`,
//! `--metrics-out FILE`, `--log-out FILE`.
//!
//! `serve` runs until a client sends the `shutdown` verb. `replay` re-feeds
//! a recorded ingest log through the batch engine and prints one
//! `CycleReport` JSON line per cycle. `drive` is the smoke client: it
//! subscribes, replays an ingest log against a *live* server (ingesting
//! each batch at its recorded cycle boundary, stepping in between), and
//! prints every streamed event line in arrival order.
//!
//! `coordinator` is `replay` with the detect waves farmed out to
//! `--shards`² shard-worker *processes* over the wire codec (DESIGN.md
//! §15): it listens, waits for every worker to connect, then steps the
//! recorded cycles with each detect's waves running across the fleet of
//! workers — producing byte-identical stdout and `--metrics-out` to the
//! in-process `replay` of the same spec. Any worker fault aborts the run
//! with a nonzero exit and *no* artifacts. `shard-worker` connects (with
//! retry, so it can start before the coordinator) and serves halo imports,
//! wave claims and commits until the coordinator shuts the link down;
//! `--die-after-waves` injects a mid-protocol crash for fault testing.

use atm_core::backends::TransportDetectBackend;
use atm_core::detect::DetectStats;
use atm_core::wire::run_shard_worker_with;
use atm_core::{AtmEngine, SocketTransport, WorkerOptions};
use atm_server::proto::{entry_to_json, updates_to_json};
use atm_server::spec::scan_from_slug;
use atm_server::{parse_log, replay_log, AtmServer, ServerSpec};
use sim_clock::OpCounter;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use telemetry::{parse_json, JsonValue, Recorder};

fn fail(msg: &str) -> ExitCode {
    eprintln!("atm-server: {msg}");
    ExitCode::FAILURE
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let name = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{a}`"))?;
            if name == "shutdown" {
                flags.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for --{name}: `{v}`")),
        }
    }
}

fn spec_from_args(args: &Args) -> Result<ServerSpec, String> {
    let mut spec = ServerSpec::default();
    if let Some(n) = args.get_parsed("n")? {
        spec.n = n;
    }
    if let Some(seed) = args.get_parsed("seed")? {
        spec.seed = seed;
    }
    if let Some(slug) = args.get("scenario") {
        spec.scenario = Some(slug.to_owned());
    }
    if let Some(scan) = args.get("scan") {
        spec.scan = scan_from_slug(scan).ok_or_else(|| format!("unknown scan mode `{scan}`"))?;
    }
    if let Some(shards) = args.get_parsed("shards")? {
        spec.shards = shards;
    }
    if let Some(platform) = args.get("platform") {
        spec.platform = platform.to_owned();
    }
    if let Some(ms) = args.get_parsed("autostep-ms")? {
        spec.autostep_ms = Some(ms);
    }
    if let Some(cap) = args.get_parsed("queue-cap")? {
        spec.queue_cap = cap;
    }
    if let Some(path) = args.get("metrics-out") {
        spec.metrics_path = Some(path.to_owned());
    }
    if let Some(path) = args.get("log-out") {
        spec.log_path = Some(path.to_owned());
    }
    Ok(spec)
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let spec = spec_from_args(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:4750");
    let server = AtmServer::bind(spec, addr)?;
    eprintln!("atm-server: listening on {}", server.local_addr());
    server.run();
    eprintln!("atm-server: stopped");
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let spec = spec_from_args(args)?;
    let path = args.get("log").ok_or("replay needs --log FILE")?;
    let cycles: u64 = args
        .get_parsed("cycles")?
        .ok_or("replay needs --cycles N")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let log = parse_log(&text)?;
    let outcome = replay_log(&spec, &log, cycles)?;
    let mut stdout = std::io::stdout().lock();
    for report in &outcome.reports {
        writeln!(stdout, "{}", report.to_json().to_compact()).map_err(|e| e.to_string())?;
    }
    if let Some(out) = args.get("metrics-out") {
        std::fs::write(out, &outcome.metrics_json).map_err(|e| format!("write {out}: {e}"))?;
    }
    Ok(())
}

struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        Ok(Conn {
            reader: BufReader::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> Result<JsonValue, String> {
        let mut w = self
            .reader
            .get_ref()
            .try_clone()
            .map_err(|e| e.to_string())?;
        w.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        w.write_all(b"\n").map_err(|e| e.to_string())?;
        self.recv()
    }

    fn recv_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".to_owned());
        }
        Ok(line.trim().to_owned())
    }

    fn recv(&mut self) -> Result<JsonValue, String> {
        parse_json(&self.recv_line()?)
    }
}

fn expect_ok(response: &JsonValue, context: &str) -> Result<(), String> {
    if response.get("ok") == Some(&JsonValue::Bool(true)) {
        Ok(())
    } else {
        Err(format!("{context} failed: {}", response.to_compact()))
    }
}

fn cmd_drive(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or("drive needs --addr HOST:PORT")?;
    let path = args.get("log").ok_or("drive needs --log FILE")?;
    let cycles: u64 = args.get_parsed("cycles")?.ok_or("drive needs --cycles N")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let log = parse_log(&text)?;

    let mut subscriber = Conn::connect(addr)?;
    expect_ok(&subscriber.send("{\"verb\":\"subscribe\"}")?, "subscribe")?;
    let mut driver = Conn::connect(addr)?;

    let mut next = 0usize;
    for cycle in 0..cycles {
        while next < log.len() && log[next].cycle <= cycle {
            let request = JsonValue::obj()
                .set("verb", "ingest")
                .set("updates", updates_to_json(&log[next].updates));
            let response = driver.send(&request.to_compact())?;
            expect_ok(
                &response,
                &format!("ingest {}", entry_to_json(&log[next]).to_compact()),
            )?;
            next += 1;
        }
        expect_ok(&driver.send("{\"verb\":\"step\"}")?, "step")?;
    }

    // Collect the streamed events: every line on the subscription
    // connection, until the final cycle's `cycle` event has arrived.
    let mut events = Vec::new();
    let mut cycles_seen = 0u64;
    while cycles_seen < cycles {
        let line = subscriber.recv_line()?;
        let v = parse_json(&line)?;
        if v.get("event").and_then(JsonValue::as_str) == Some("cycle") {
            cycles_seen += 1;
        }
        events.push(line);
    }

    if args.get("shutdown").is_some() {
        expect_ok(&driver.send("{\"verb\":\"shutdown\"}")?, "shutdown")?;
    }

    let body = events.join("\n") + "\n";
    match args.get("events-out") {
        Some(out) => std::fs::write(out, body).map_err(|e| format!("write {out}: {e}"))?,
        None => print!("{body}"),
    }
    Ok(())
}

/// Run a recorded ingest log across `shards`² shard-worker processes:
/// listen, accept every worker, then step the cycles with detect waves
/// flowing over the serialized transport. Success output is byte-identical
/// to `replay` of the same spec; any transport fault aborts before any
/// artifact is written.
fn cmd_coordinator(args: &Args) -> Result<(), String> {
    let mut spec = spec_from_args(args)?;
    if args.get("platform").is_none() {
        // The coordinator replays detect from merged totals, so it needs a
        // totals-priced platform; the Xeon model is the canonical one.
        spec.platform = "xeon-multicore".to_owned();
    }
    let path = args.get("log").ok_or("coordinator needs --log FILE")?;
    let cycles: u64 = args
        .get_parsed("cycles")?
        .ok_or("coordinator needs --cycles N")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let log = parse_log(&text)?;

    // Probe totals-pricing on a throwaway backend — probing the engine's
    // own instance would advance its jitter seed and break replay identity.
    let mut probe = spec.build_backend()?;
    if probe
        .price_detect_totals(0, &DetectStats::default(), &OpCounter::new())
        .is_none()
    {
        return Err(format!(
            "platform `{}` cannot price detect from merged totals; a \
             coordinator needs a totals-priced platform (e.g. xeon-multicore)",
            spec.platform
        ));
    }

    let listen = args.get("listen").unwrap_or("127.0.0.1:4751");
    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let shard_count = spec.shards * spec.shards;
    eprintln!(
        "atm-server: coordinator listening on {local}, waiting for {shard_count} shard worker(s)"
    );
    if let Some(pf) = args.get("port-file") {
        std::fs::write(pf, format!("{local}\n")).map_err(|e| format!("write {pf}: {e}"))?;
    }
    let transport =
        SocketTransport::accept_workers(&listener, shard_count).map_err(|e| e.to_string())?;
    eprintln!("atm-server: all {shard_count} shard worker(s) connected");

    let backend = TransportDetectBackend::new(spec.build_backend()?, Box::new(transport));
    let fault = backend.fault_handle();
    let mut engine = AtmEngine::new(spec.build_airfield()?, Box::new(backend));
    let recorder = Recorder::enabled();
    engine.set_recorder(recorder.clone());
    engine.begin_run();

    // The replay loop, buffered: nothing is printed or flushed until every
    // cycle survived, so a failed run leaves no partial artifact behind.
    let mut next = 0usize;
    let mut reports = Vec::with_capacity(cycles as usize);
    for cycle in 0..cycles {
        while next < log.len() && log[next].cycle <= cycle {
            engine.apply_updates(&log[next].updates);
            next += 1;
        }
        let report = engine.step_major_cycle();
        if let Some(msg) = fault.lock().expect("transport fault slot").clone() {
            return Err(format!("halo exchange failed at cycle {cycle}: {msg}"));
        }
        reports.push(report);
    }

    let mut stdout = std::io::stdout().lock();
    for report in &reports {
        writeln!(stdout, "{}", report.to_json().to_compact()).map_err(|e| e.to_string())?;
    }
    if let Some(out) = args.get("metrics-out") {
        std::fs::write(out, recorder.metrics_json()).map_err(|e| format!("write {out}: {e}"))?;
    }
    Ok(())
}

/// Serve one coordinator as a shard worker, connecting with retry so
/// workers can launch before (or while) the coordinator binds.
fn cmd_shard_worker(args: &Args) -> Result<(), String> {
    let addr = args
        .get("connect")
        .ok_or("shard-worker needs --connect HOST:PORT")?;
    let retry_ms: u64 = args.get_parsed("retry-ms")?.unwrap_or(50);
    let attempts: u64 = args.get_parsed("retry-attempts")?.unwrap_or(200);
    let opts = WorkerOptions {
        die_after_waves: args.get_parsed("die-after-waves")?,
    };
    let mut stream = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) if attempt + 1 == attempts => {
                return Err(format!("connect {addr}: {e} (after {attempts} attempts)"));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(retry_ms)),
        }
    }
    let stream = stream.ok_or_else(|| format!("connect {addr}: no coordinator"))?;
    let shard = run_shard_worker_with(stream, opts).map_err(|e| e.to_string())?;
    eprintln!("atm-server: shard {shard} worker done");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = argv.first().map(String::as_str) else {
        return fail(
            "usage: atm-server <serve|replay|drive|coordinator|shard-worker> [flags] \
             (see --help in crate docs)",
        );
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let result = match mode {
        "serve" => cmd_serve(&args),
        "replay" => cmd_replay(&args),
        "drive" => cmd_drive(&args),
        "coordinator" => cmd_coordinator(&args),
        "shard-worker" => cmd_shard_worker(&args),
        other => Err(format!("unknown mode `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}
