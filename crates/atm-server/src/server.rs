//! The blocking TCP server: one reader thread per connection, per-client
//! event subscriptions with bounded drop-oldest queues, an optional
//! background cycle loop, and a graceful shutdown path that flushes the
//! telemetry metrics snapshot and the append-only ingest log.
//!
//! Framing and verbs are specified in DESIGN.md §14. In short: every
//! request is one line of JSON carrying a `verb`; every request gets
//! exactly one `{"ok":...}` response line; subscribed clients additionally
//! receive asynchronous `{"event":...}` lines. Lines are written whole
//! under a per-connection lock, so responses and events never interleave
//! mid-line.

use crate::proto::{
    error_response, ok_response, updates_from_json, updates_to_json, write_log, LogEntry,
};
use crate::spec::ServerSpec;
use atm_core::engine::CycleReport;
use atm_core::AtmEngine;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;
use telemetry::{parse_json, JsonValue, Recorder};

/// A bounded drop-oldest event queue feeding one subscriber's writer
/// thread: the backpressure contract. When a slow client lets `cap`
/// events pile up, each new event evicts the oldest queued one and the
/// drop counter advances — ingest and the cycle loop never block on a
/// subscriber.
pub struct EventQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    items: VecDeque<String>,
    dropped: u64,
    closed: bool,
}

impl EventQueue {
    /// A queue holding at most `cap` pending events.
    pub fn new(cap: usize) -> EventQueue {
        EventQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                dropped: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue one event line, evicting the oldest when full. Returns the
    /// number of events dropped so far.
    pub fn push(&self, line: &str) -> u64 {
        let mut q = self.inner.lock().expect("event queue poisoned");
        if q.closed {
            return q.dropped;
        }
        if q.items.len() >= self.cap {
            q.items.pop_front();
            q.dropped += 1;
        }
        q.items.push_back(line.to_owned());
        self.ready.notify_one();
        q.dropped
    }

    /// Block until an event is available (`Some`) or the queue is closed
    /// and drained (`None`).
    pub fn pop(&self) -> Option<String> {
        let mut q = self.inner.lock().expect("event queue poisoned");
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("event queue poisoned");
        }
    }

    /// Close the queue: `pop` drains what is left, then returns `None`.
    pub fn close(&self) {
        let mut q = self.inner.lock().expect("event queue poisoned");
        q.closed = true;
        self.ready.notify_all();
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event queue poisoned").dropped
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event queue poisoned").items.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// State behind the big lock: the engine, the ingest log and the
/// subscriber roster.
struct Shared {
    engine: AtmEngine,
    log: Vec<LogEntry>,
    subs: Vec<Arc<EventQueue>>,
}

struct ServerState {
    shared: Mutex<Shared>,
    spec: ServerSpec,
    recorder: Recorder,
    stop: AtomicBool,
    events_dropped: AtomicU64,
    addr: SocketAddr,
}

impl ServerState {
    /// Step one major cycle under the lock and fan its events out to every
    /// subscriber: one `cycle` event, then one `conflict` event per
    /// aircraft left in conflict.
    fn step_one(&self, shared: &mut Shared) -> CycleReport {
        let report = shared.engine.step_major_cycle();
        if !shared.subs.is_empty() {
            let mut lines = Vec::new();
            lines.push(
                JsonValue::obj()
                    .set("event", "cycle")
                    .set("report", report.to_json())
                    .to_compact(),
            );
            for (id, a) in shared.engine.aircraft().iter().enumerate() {
                if a.col {
                    lines.push(
                        JsonValue::obj()
                            .set("event", "conflict")
                            .set("cycle", report.cycle)
                            .set("id", id)
                            // Always a real partner index here (`a.col` is
                            // set), so it serializes as an integer.
                            .set("col_with", a.col_with as u64)
                            .to_compact(),
                    );
                }
            }
            let mut dropped = 0;
            for sub in &shared.subs {
                for line in &lines {
                    dropped = dropped.max(sub.push(line));
                }
            }
            self.events_dropped.fetch_max(dropped, Ordering::Relaxed);
        }
        report
    }

    /// Flush the shutdown artifacts: the final metrics snapshot and the
    /// ingest log, at the paths the spec configured.
    fn flush_artifacts(&self, shared: &Shared) -> std::io::Result<()> {
        if let Some(path) = &self.spec.metrics_path {
            std::fs::write(path, self.recorder.metrics_json())?;
        }
        if let Some(path) = &self.spec.log_path {
            std::fs::write(path, write_log(&shared.log))?;
        }
        Ok(())
    }
}

/// The server: bind, then [`AtmServer::run`] the accept loop.
pub struct AtmServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl AtmServer {
    /// Build the spec's engine (telemetry enabled) and bind `addr`
    /// (`127.0.0.1:0` picks a free port; read it back with
    /// [`AtmServer::local_addr`]).
    pub fn bind(spec: ServerSpec, addr: &str) -> Result<AtmServer, String> {
        let mut engine = spec.build_engine()?;
        let recorder = Recorder::enabled();
        engine.set_recorder(recorder.clone());
        engine.begin_run();
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        Ok(AtmServer {
            listener,
            state: Arc::new(ServerState {
                shared: Mutex::new(Shared {
                    engine,
                    log: Vec::new(),
                    subs: Vec::new(),
                }),
                spec,
                recorder,
                stop: AtomicBool::new(false),
                events_dropped: AtomicU64::new(0),
                addr: local,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Run the accept loop until a `shutdown` verb arrives. Each
    /// connection gets a reader thread; the optional background cycle loop
    /// steps the engine every `spec.autostep_ms`.
    pub fn run(self) {
        let state = self.state;
        let stepper = state.spec.autostep_ms.map(|interval| {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                while !state.stop.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(interval));
                    if state.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let mut shared = state.shared.lock().expect("server state poisoned");
                    state.step_one(&mut shared);
                }
            })
        });

        for conn in self.listener.incoming() {
            if state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&state);
            thread::spawn(move || handle_client(stream, state));
        }
        if let Some(h) = stepper {
            let _ = h.join();
        }
    }

    /// Run on a background thread (tests, examples).
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::spawn(move || self.run())
    }
}

/// Write one whole line under the connection's write lock.
fn write_line(writer: &Mutex<TcpStream>, line: &str) -> std::io::Result<()> {
    let mut w = writer.lock().expect("connection writer poisoned");
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_client(stream: TcpStream, state: Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut subscription: Option<Arc<EventQueue>> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let response = dispatch(text, &state, &writer, &mut subscription);
        let stop_after = state.stop.load(Ordering::SeqCst);
        if write_line(&writer, &response.to_compact()).is_err() {
            break;
        }
        if stop_after {
            break;
        }
    }
    // Reader gone: tear down this client's subscription so its writer
    // thread exits.
    if let Some(sub) = subscription {
        sub.close();
        let mut shared = state.shared.lock().expect("server state poisoned");
        shared.subs.retain(|s| !Arc::ptr_eq(s, &sub));
    }
}

/// Parse and execute one request line; returns the response body.
fn dispatch(
    text: &str,
    state: &Arc<ServerState>,
    writer: &Arc<Mutex<TcpStream>>,
    subscription: &mut Option<Arc<EventQueue>>,
) -> JsonValue {
    let request = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("bad JSON: {e}")),
    };
    let verb = match request.get("verb").and_then(JsonValue::as_str) {
        Some(v) => v,
        None => return error_response("missing `verb`"),
    };
    match verb {
        "status" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let conflicts = shared.engine.aircraft().iter().filter(|a| a.col).count();
            ok_response()
                .set("backend", shared.engine.backend_name())
                .set("spec", state.spec.to_json())
                .set("aircraft", shared.engine.aircraft().len())
                .set("cycles", shared.engine.cycles_stepped())
                .set("ingest_seq", shared.engine.field().ingest_seq())
                .set("conflicts", conflicts)
                .set("subscribers", shared.subs.len())
                .set(
                    "events_dropped",
                    state.events_dropped.load(Ordering::Relaxed),
                )
        }
        "ingest" => {
            let updates = match request.get("updates") {
                Some(v) => match updates_from_json(v) {
                    Ok(u) => u,
                    Err(e) => return error_response(&e),
                },
                None => return error_response("missing `updates`"),
            };
            let mut shared = state.shared.lock().expect("server state poisoned");
            let cycle = shared.engine.cycles_stepped() as u64;
            let receipt = shared.engine.apply_updates(&updates);
            shared.log.push(LogEntry {
                seq: receipt.seq,
                cycle,
                updates,
            });
            ok_response()
                .set("seq", receipt.seq)
                .set("applied", u64::from(receipt.applied))
                .set("unknown", u64::from(receipt.unknown))
        }
        "step" => {
            let cycles = request
                .get("cycles")
                .and_then(JsonValue::as_f64)
                .map(|c| c as u64)
                .unwrap_or(1)
                .clamp(1, 64);
            let mut shared = state.shared.lock().expect("server state poisoned");
            let reports: Vec<JsonValue> = (0..cycles)
                .map(|_| state.step_one(&mut shared).to_json())
                .collect();
            ok_response().set("reports", JsonValue::Arr(reports))
        }
        "snapshot" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let aircraft: Vec<JsonValue> = shared
                .engine
                .aircraft()
                .iter()
                .enumerate()
                .map(|(id, a)| {
                    JsonValue::obj()
                        .set("id", id)
                        .set("x", f64::from(a.x))
                        .set("y", f64::from(a.y))
                        .set("alt", f64::from(a.alt))
                        .set("dx", f64::from(a.dx))
                        .set("dy", f64::from(a.dy))
                        .set("col", a.col)
                        .set("col_with", f64::from(a.col_with))
                })
                .collect();
            ok_response()
                .set("cycles", shared.engine.cycles_stepped())
                .set(
                    "fleet_hash",
                    format!("{:016x}", atm_core::fleet_hash(shared.engine.aircraft())),
                )
                .set("aircraft", JsonValue::Arr(aircraft))
        }
        "log" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let entries: Vec<JsonValue> =
                shared.log.iter().map(crate::proto::entry_to_json).collect();
            ok_response().set("entries", JsonValue::Arr(entries))
        }
        "subscribe" => {
            if subscription.is_some() {
                return error_response("already subscribed");
            }
            let sub = Arc::new(EventQueue::new(state.spec.queue_cap));
            {
                let mut shared = state.shared.lock().expect("server state poisoned");
                shared.subs.push(Arc::clone(&sub));
            }
            let sub_for_writer = Arc::clone(&sub);
            let writer = Arc::clone(writer);
            thread::spawn(move || {
                while let Some(event) = sub_for_writer.pop() {
                    if write_line(&writer, &event).is_err() {
                        sub_for_writer.close();
                        break;
                    }
                }
            });
            *subscription = Some(sub);
            ok_response().set("subscribed", true)
        }
        "shutdown" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let flushed = state.flush_artifacts(&shared);
            for sub in &shared.subs {
                sub.close();
            }
            state.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop.
            let _ = TcpStream::connect(state.addr);
            match flushed {
                Ok(()) => ok_response().set("stopped", true),
                Err(e) => error_response(&format!("artifact flush failed: {e}")),
            }
        }
        // Echo back a serialized batch for symmetry with `ingest` (used by
        // clients to validate update encoding without applying anything).
        "echo" => match request.get("updates") {
            Some(v) => match updates_from_json(v) {
                Ok(u) => ok_response().set("updates", updates_to_json(&u)),
                Err(e) => error_response(&e),
            },
            None => error_response("missing `updates`"),
        },
        other => error_response(&format!("unknown verb `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream),
            }
        }

        fn send(&mut self, line: &str) -> JsonValue {
            let mut w = self.reader.get_ref().try_clone().unwrap();
            w.write_all(line.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            self.recv()
        }

        fn recv(&mut self) -> JsonValue {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            parse_json(line.trim()).unwrap()
        }
    }

    fn serve(spec: ServerSpec) -> (SocketAddr, thread::JoinHandle<()>) {
        let server = AtmServer::bind(spec, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        (addr, server.spawn())
    }

    #[test]
    fn ingest_step_status_round_trip() {
        let (addr, handle) = serve(ServerSpec {
            n: 120,
            seed: 5,
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        let st = c.send("{\"verb\":\"status\"}");
        assert_eq!(st.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(st.get("aircraft"), Some(&JsonValue::U64(120)));

        let r = c.send(
            "{\"verb\":\"ingest\",\"updates\":[{\"id\":0,\"x\":1.0,\"y\":2.0,\"alt\":9000.0,\"dx\":0.01,\"dy\":0.0}]}",
        );
        assert_eq!(r.get("seq"), Some(&JsonValue::U64(1)));
        assert_eq!(r.get("applied"), Some(&JsonValue::U64(1)));

        let r = c.send("{\"verb\":\"step\",\"cycles\":2}");
        let reports = r.get("reports").unwrap().as_arr().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            reports[0].get("ingest_applied"),
            Some(&JsonValue::U64(1)),
            "first stepped cycle must carry the ingest"
        );

        let log = c.send("{\"verb\":\"log\"}");
        assert_eq!(log.get("entries").unwrap().as_arr().unwrap().len(), 1);

        let r = c.send("{\"verb\":\"shutdown\"}");
        assert_eq!(r.get("stopped"), Some(&JsonValue::Bool(true)));
        handle.join().unwrap();
    }

    #[test]
    fn subscribers_receive_cycle_events() {
        let (addr, handle) = serve(ServerSpec {
            n: 200,
            seed: 8,
            scenario: Some("crossing".to_owned()),
            ..ServerSpec::default()
        });
        let mut subscriber = Client::connect(addr);
        let r = subscriber.send("{\"verb\":\"subscribe\"}");
        assert_eq!(r.get("subscribed"), Some(&JsonValue::Bool(true)));

        let mut driver = Client::connect(addr);
        driver.send("{\"verb\":\"step\"}");
        let event = subscriber.recv();
        assert_eq!(
            event.get("event").and_then(JsonValue::as_str),
            Some("cycle")
        );
        assert_eq!(
            event.get("report").unwrap().get("cycle"),
            Some(&JsonValue::U64(0))
        );
        driver.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let (addr, handle) = serve(ServerSpec {
            n: 10,
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        assert_eq!(c.send("not json").get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            c.send("{\"no\":\"verb\"}").get("ok"),
            Some(&JsonValue::Bool(false))
        );
        assert_eq!(
            c.send("{\"verb\":\"warp\"}").get("ok"),
            Some(&JsonValue::Bool(false))
        );
        c.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn autostep_advances_cycles_without_step_verbs() {
        let (addr, handle) = serve(ServerSpec {
            n: 60,
            seed: 3,
            autostep_ms: Some(5),
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        let mut cycles = 0;
        for _ in 0..100 {
            thread::sleep(Duration::from_millis(10));
            let st = c.send("{\"verb\":\"status\"}");
            if let Some(&JsonValue::U64(n)) = st.get("cycles") {
                cycles = n;
            }
            if cycles >= 2 {
                break;
            }
        }
        assert!(cycles >= 2, "background loop never stepped");
        c.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn event_queue_drops_oldest_beyond_capacity() {
        let q = EventQueue::new(3);
        for i in 0..5 {
            q.push(&format!("e{i}"));
        }
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().as_deref(), Some("e2"), "oldest two must be gone");
        assert_eq!(q.pop().as_deref(), Some("e3"));
        q.close();
        assert_eq!(q.pop().as_deref(), Some("e4"), "close drains the tail");
        assert_eq!(q.pop(), None);
        assert_eq!(q.push("late"), 2, "closed queue accepts nothing");
    }
}
