//! The blocking TCP server: one reader thread per connection, per-client
//! event subscriptions with bounded drop-oldest queues, an optional
//! background cycle loop, and a graceful shutdown path that flushes the
//! telemetry metrics snapshot and the append-only ingest log.
//!
//! Framing and verbs are specified in DESIGN.md §14. In short: every
//! request is one line of JSON carrying a `verb`; every request gets
//! exactly one `{"ok":...}` response line; subscribed clients additionally
//! receive asynchronous `{"event":...}` lines. Lines are written whole
//! under a per-connection lock, so responses and events never interleave
//! mid-line.

use crate::proto::{
    error_response, ok_response, read_line_bounded, updates_from_json, updates_to_json, write_log,
    LogEntry, MAX_LINE_BYTES,
};
use crate::spec::ServerSpec;
use atm_core::engine::CycleReport;
use atm_core::{AircraftUpdate, AtmEngine, Frame, FrameStream};
use std::collections::{HashSet, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;
use telemetry::{parse_json, JsonValue, Recorder};

/// The magic prefix selecting the binary-frame protocol. A connection whose
/// first four bytes are `ATMB` speaks length-prefixed [`Frame::Json`]
/// frames (the [`atm_core::wire`] codec) instead of newline-delimited text;
/// the verbs and JSON bodies are identical in both modes.
pub const BINARY_MAGIC: &[u8; 4] = b"ATMB";

/// A bounded drop-oldest event queue feeding one subscriber's writer
/// thread: the backpressure contract. When a slow client lets `cap`
/// events pile up, each new event evicts the oldest queued one and the
/// drop counter advances — ingest and the cycle loop never block on a
/// subscriber.
pub struct EventQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    items: VecDeque<String>,
    dropped: u64,
    closed: bool,
}

impl EventQueue {
    /// A queue holding at most `cap` pending events.
    pub fn new(cap: usize) -> EventQueue {
        EventQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                dropped: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue one event line, evicting the oldest when full. Returns the
    /// number of events dropped so far.
    pub fn push(&self, line: &str) -> u64 {
        let mut q = self.inner.lock().expect("event queue poisoned");
        if q.closed {
            return q.dropped;
        }
        if q.items.len() >= self.cap {
            q.items.pop_front();
            q.dropped += 1;
        }
        q.items.push_back(line.to_owned());
        self.ready.notify_one();
        q.dropped
    }

    /// Block until an event is available (`Some`) or the queue is closed
    /// and drained (`None`).
    pub fn pop(&self) -> Option<String> {
        let mut q = self.inner.lock().expect("event queue poisoned");
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("event queue poisoned");
        }
    }

    /// Close the queue: `pop` drains what is left, then returns `None`.
    pub fn close(&self) {
        let mut q = self.inner.lock().expect("event queue poisoned");
        q.closed = true;
        self.ready.notify_all();
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event queue poisoned").dropped
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event queue poisoned").items.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A subscriber's event filter, applied *before* its bounded queue so a
/// narrow subscription never pays queue slots (or drops) for events it
/// filtered out. `cycle` events always pass; `conflict` events must match
/// every populated field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventFilter {
    /// Lat/lon box `[min_x, min_y, max_x, max_y]` (nm): the conflicting
    /// aircraft's position must fall inside it (inclusive).
    pub region: Option<[f32; 4]>,
    /// Aircraft id set: the conflicting aircraft — or its partner — must be
    /// in it.
    pub aircraft: Option<HashSet<u32>>,
}

impl EventFilter {
    /// Whether a conflict at `(x, y)` involving `id` vs `col_with` passes.
    fn passes(&self, id: u32, col_with: u32, x: f32, y: f32) -> bool {
        if let Some([min_x, min_y, max_x, max_y]) = self.region {
            if x < min_x || x > max_x || y < min_y || y > max_y {
                return false;
            }
        }
        if let Some(ids) = &self.aircraft {
            if !ids.contains(&id) && !ids.contains(&col_with) {
                return false;
            }
        }
        true
    }

    /// Whether any field is populated (an empty filter passes everything).
    fn is_active(&self) -> bool {
        self.region.is_some() || self.aircraft.is_some()
    }
}

/// One subscriber: its event queue and the filter applied before it.
struct Subscriber {
    queue: Arc<EventQueue>,
    filter: EventFilter,
}

/// State behind the big lock: the engine, the ingest log and the
/// subscriber roster.
struct Shared {
    engine: AtmEngine,
    log: Vec<LogEntry>,
    subs: Vec<Subscriber>,
}

/// One queued ingest request: its parsed updates and the slot its response
/// lands in. Whichever connection thread next acquires the engine lock
/// drains every pending job under that single acquisition (see `ingest` in
/// [`dispatch`]), so its owner always finds the slot filled once it holds —
/// or once anyone held — the lock past its enqueue.
struct IngestJob {
    updates: Vec<AircraftUpdate>,
    slot: Arc<Mutex<Option<JsonValue>>>,
}

struct ServerState {
    shared: Mutex<Shared>,
    spec: ServerSpec,
    recorder: Recorder,
    stop: AtomicBool,
    events_dropped: AtomicU64,
    /// Ingest requests waiting for the engine lock (drained in batches).
    ingest_pending: Mutex<VecDeque<IngestJob>>,
    /// Ingest requests that rode another request's lock acquisition: each
    /// multi-job drain adds `jobs - 1`. Zero under serial clients.
    ingest_batched: AtomicU64,
    addr: SocketAddr,
}

impl ServerState {
    /// Step one major cycle under the lock and fan its events out to every
    /// subscriber: one `cycle` event, then one `conflict` event per
    /// aircraft left in conflict.
    fn step_one(&self, shared: &mut Shared) -> CycleReport {
        let report = shared.engine.step_major_cycle();
        if !shared.subs.is_empty() {
            let cycle_line = JsonValue::obj()
                .set("event", "cycle")
                .set("report", report.to_json())
                .to_compact();
            // One rendered line per conflict, with the coordinates the
            // per-subscriber filters key on.
            let mut conflicts: Vec<(String, u32, u32, f32, f32)> = Vec::new();
            for (id, a) in shared.engine.aircraft().iter().enumerate() {
                if a.col {
                    let line = JsonValue::obj()
                        .set("event", "conflict")
                        .set("cycle", report.cycle)
                        .set("id", id)
                        // Always a real partner index here (`a.col` is
                        // set), so it serializes as an integer.
                        .set("col_with", a.col_with as u64)
                        .to_compact();
                    conflicts.push((line, id as u32, a.col_with as u32, a.x, a.y));
                }
            }
            let mut dropped = 0;
            for sub in &shared.subs {
                dropped = dropped.max(sub.queue.push(&cycle_line));
                for (line, id, col_with, x, y) in &conflicts {
                    if sub.filter.passes(*id, *col_with, *x, *y) {
                        dropped = dropped.max(sub.queue.push(line));
                    }
                }
            }
            self.events_dropped.fetch_max(dropped, Ordering::Relaxed);
        }
        report
    }

    /// Flush the shutdown artifacts: the final metrics snapshot and the
    /// ingest log, at the paths the spec configured.
    fn flush_artifacts(&self, shared: &Shared) -> std::io::Result<()> {
        if let Some(path) = &self.spec.metrics_path {
            std::fs::write(path, self.recorder.metrics_json())?;
        }
        if let Some(path) = &self.spec.log_path {
            std::fs::write(path, write_log(&shared.log))?;
        }
        Ok(())
    }
}

/// The server: bind, then [`AtmServer::run`] the accept loop.
pub struct AtmServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl AtmServer {
    /// Build the spec's engine (telemetry enabled) and bind `addr`
    /// (`127.0.0.1:0` picks a free port; read it back with
    /// [`AtmServer::local_addr`]).
    pub fn bind(spec: ServerSpec, addr: &str) -> Result<AtmServer, String> {
        let mut engine = spec.build_engine()?;
        let recorder = Recorder::enabled();
        engine.set_recorder(recorder.clone());
        engine.begin_run();
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        Ok(AtmServer {
            listener,
            state: Arc::new(ServerState {
                shared: Mutex::new(Shared {
                    engine,
                    log: Vec::new(),
                    subs: Vec::new(),
                }),
                spec,
                recorder,
                stop: AtomicBool::new(false),
                events_dropped: AtomicU64::new(0),
                ingest_pending: Mutex::new(VecDeque::new()),
                ingest_batched: AtomicU64::new(0),
                addr: local,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Run the accept loop until a `shutdown` verb arrives. Each
    /// connection gets a reader thread; the optional background cycle loop
    /// steps the engine every `spec.autostep_ms`.
    pub fn run(self) {
        let state = self.state;
        let stepper = state.spec.autostep_ms.map(|interval| {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                while !state.stop.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(interval));
                    if state.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let mut shared = state.shared.lock().expect("server state poisoned");
                    state.step_one(&mut shared);
                }
            })
        });

        for conn in self.listener.incoming() {
            if state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&state);
            thread::spawn(move || handle_client(stream, state));
        }
        if let Some(h) = stepper {
            let _ = h.join();
        }
    }

    /// Run on a background thread (tests, examples).
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::spawn(move || self.run())
    }
}

/// A connection's write half: both request responses and subscription
/// events go through it, whole messages under one lock so they never
/// interleave. In binary mode every message travels as one
/// [`Frame::Json`]; in text mode as one newline-terminated line.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    binary: bool,
}

/// Write one whole response/event message under the connection's write
/// lock.
fn write_line(writer: &ConnWriter, line: &str) -> std::io::Result<()> {
    let mut w = writer.stream.lock().expect("connection writer poisoned");
    if writer.binary {
        let payload = Frame::Json {
            body: line.to_owned(),
        }
        .encode()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&payload)?;
    } else {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

fn handle_client(stream: TcpStream, state: Arc<ServerState>) {
    // Sniff the protocol: a connection opening with the `ATMB` magic
    // speaks binary frames, anything else (JSON starts with `{` or
    // whitespace) speaks text lines. `peek` never consumes, so the text
    // path sees its first line intact.
    let mut magic = [0u8; 4];
    let binary = loop {
        match stream.peek(&mut magic) {
            Ok(0) | Err(_) => return,
            Ok(n) if magic[..n] != BINARY_MAGIC[..n] => break false,
            Ok(4) => break true,
            // A true binary client sends all four magic bytes at once; a
            // matching shorter prefix means they are still in flight.
            Ok(_) => thread::sleep(Duration::from_millis(1)),
        }
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
        binary,
    });
    let mut subscription: Option<Arc<EventQueue>> = None;
    if binary {
        handle_binary_requests(stream, &state, &writer, &mut subscription);
    } else {
        handle_text_requests(stream, &state, &writer, &mut subscription);
    }
    // Reader gone: tear down this client's subscription so its writer
    // thread exits.
    if let Some(sub) = subscription {
        sub.close();
        let mut shared = state.shared.lock().expect("server state poisoned");
        shared.subs.retain(|s| !Arc::ptr_eq(&s.queue, &sub));
    }
}

/// The text request loop: bounded newline-delimited JSON lines.
fn handle_text_requests(
    stream: TcpStream,
    state: &Arc<ServerState>,
    writer: &Arc<ConnWriter>,
    subscription: &mut Option<Arc<EventQueue>>,
) {
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) => {
                // The stream is desynchronized past an oversized line:
                // answer with the protocol error, then drop the
                // connection.
                let _ = write_line(writer, &error_response(&e).to_compact());
                break;
            }
        };
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if !serve_request(text, state, writer, subscription) {
            break;
        }
    }
}

/// The binary request loop: each request is one [`Frame::Json`].
fn handle_binary_requests(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    writer: &Arc<ConnWriter>,
    subscription: &mut Option<Arc<EventQueue>>,
) {
    let mut magic = [0u8; 4];
    if stream.read_exact(&mut magic).is_err() {
        return;
    }
    let Ok(mut frames) = FrameStream::new(stream) else {
        return;
    };
    loop {
        let frame = match frames.recv_eof() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                let _ = write_line(writer, &error_response(&e.to_string()).to_compact());
                break;
            }
        };
        let body = match frame {
            Frame::Json { body } => body,
            Frame::Shutdown => break,
            other => {
                let msg = format!("expected a json frame, got {}", other.name());
                let _ = write_line(writer, &error_response(&msg).to_compact());
                break;
            }
        };
        if !serve_request(body.trim(), state, writer, subscription) {
            break;
        }
    }
}

/// Dispatch one request and write its response; `false` ends the
/// connection loop (write failure or server shutdown).
fn serve_request(
    text: &str,
    state: &Arc<ServerState>,
    writer: &Arc<ConnWriter>,
    subscription: &mut Option<Arc<EventQueue>>,
) -> bool {
    let response = dispatch(text, state, writer, subscription);
    let stop_after = state.stop.load(Ordering::SeqCst);
    write_line(writer, &response.to_compact()).is_ok() && !stop_after
}

/// Parse and execute one request line; returns the response body.
fn dispatch(
    text: &str,
    state: &Arc<ServerState>,
    writer: &Arc<ConnWriter>,
    subscription: &mut Option<Arc<EventQueue>>,
) -> JsonValue {
    let request = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("bad JSON: {e}")),
    };
    let verb = match request.get("verb").and_then(JsonValue::as_str) {
        Some(v) => v,
        None => return error_response("missing `verb`"),
    };
    match verb {
        "status" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let conflicts = shared.engine.aircraft().iter().filter(|a| a.col).count();
            ok_response()
                .set("backend", shared.engine.backend_name())
                .set("spec", state.spec.to_json())
                .set("aircraft", shared.engine.aircraft().len())
                .set("cycles", shared.engine.cycles_stepped())
                .set("ingest_seq", shared.engine.field().ingest_seq())
                .set("conflicts", conflicts)
                .set("subscribers", shared.subs.len())
                .set(
                    "events_dropped",
                    state.events_dropped.load(Ordering::Relaxed),
                )
                .set(
                    "ingest_batched",
                    state.ingest_batched.load(Ordering::Relaxed),
                )
        }
        "ingest" => {
            let updates = match request.get("updates") {
                Some(v) => match updates_from_json(v) {
                    Ok(u) => u,
                    Err(e) => return error_response(&e),
                },
                None => return error_response("missing `updates`"),
            };
            // Enqueue the job, then contend for the engine lock. Whichever
            // thread wins drains *every* pending job under that one
            // acquisition, so ingest bursts from many clients pay one lock
            // round instead of one each. Our own job was queued before we
            // blocked, so by the time we hold the lock it is either still
            // pending (we drain it) or already answered by the winner.
            let slot = Arc::new(Mutex::new(None));
            state
                .ingest_pending
                .lock()
                .expect("ingest queue poisoned")
                .push_back(IngestJob {
                    updates,
                    slot: Arc::clone(&slot),
                });
            {
                let mut shared = state.shared.lock().expect("server state poisoned");
                let jobs: Vec<IngestJob> = {
                    let mut pending = state.ingest_pending.lock().expect("ingest queue poisoned");
                    pending.drain(..).collect()
                };
                if jobs.len() > 1 {
                    state
                        .ingest_batched
                        .fetch_add(jobs.len() as u64 - 1, Ordering::Relaxed);
                }
                for job in jobs {
                    let cycle = shared.engine.cycles_stepped() as u64;
                    let receipt = shared.engine.apply_updates(&job.updates);
                    shared.log.push(LogEntry {
                        seq: receipt.seq,
                        cycle,
                        updates: job.updates,
                    });
                    *job.slot.lock().expect("ingest slot poisoned") = Some(
                        ok_response()
                            .set("seq", receipt.seq)
                            .set("applied", u64::from(receipt.applied))
                            .set("unknown", u64::from(receipt.unknown)),
                    );
                }
            }
            let response = slot
                .lock()
                .expect("ingest slot poisoned")
                .take()
                .expect("a queued ingest job is always answered by a drain");
            response
        }
        "step" => {
            let cycles = request
                .get("cycles")
                .and_then(JsonValue::as_f64)
                .map(|c| c as u64)
                .unwrap_or(1)
                .clamp(1, 64);
            let mut shared = state.shared.lock().expect("server state poisoned");
            let reports: Vec<JsonValue> = (0..cycles)
                .map(|_| state.step_one(&mut shared).to_json())
                .collect();
            ok_response().set("reports", JsonValue::Arr(reports))
        }
        "snapshot" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let aircraft: Vec<JsonValue> = shared
                .engine
                .aircraft()
                .iter()
                .enumerate()
                .map(|(id, a)| {
                    JsonValue::obj()
                        .set("id", id)
                        .set("x", f64::from(a.x))
                        .set("y", f64::from(a.y))
                        .set("alt", f64::from(a.alt))
                        .set("dx", f64::from(a.dx))
                        .set("dy", f64::from(a.dy))
                        .set("col", a.col)
                        .set("col_with", f64::from(a.col_with))
                })
                .collect();
            ok_response()
                .set("cycles", shared.engine.cycles_stepped())
                .set(
                    "fleet_hash",
                    format!("{:016x}", atm_core::fleet_hash(shared.engine.aircraft())),
                )
                .set("aircraft", JsonValue::Arr(aircraft))
        }
        "log" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let entries: Vec<JsonValue> =
                shared.log.iter().map(crate::proto::entry_to_json).collect();
            ok_response().set("entries", JsonValue::Arr(entries))
        }
        "subscribe" => {
            if subscription.is_some() {
                return error_response("already subscribed");
            }
            let filter = match parse_filter(&request) {
                Ok(f) => f,
                Err(e) => return error_response(&e),
            };
            let filtered = filter.is_active();
            let sub = Arc::new(EventQueue::new(state.spec.queue_cap));
            {
                let mut shared = state.shared.lock().expect("server state poisoned");
                shared.subs.push(Subscriber {
                    queue: Arc::clone(&sub),
                    filter,
                });
            }
            let sub_for_writer = Arc::clone(&sub);
            let writer = Arc::clone(writer);
            thread::spawn(move || {
                while let Some(event) = sub_for_writer.pop() {
                    if write_line(&writer, &event).is_err() {
                        sub_for_writer.close();
                        break;
                    }
                }
            });
            *subscription = Some(sub);
            let response = ok_response().set("subscribed", true);
            if filtered {
                response.set("filtered", true)
            } else {
                response
            }
        }
        "shutdown" => {
            let shared = state.shared.lock().expect("server state poisoned");
            let flushed = state.flush_artifacts(&shared);
            for sub in &shared.subs {
                sub.queue.close();
            }
            state.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop.
            let _ = TcpStream::connect(state.addr);
            match flushed {
                Ok(()) => ok_response().set("stopped", true),
                Err(e) => error_response(&format!("artifact flush failed: {e}")),
            }
        }
        // Echo back a serialized batch for symmetry with `ingest` (used by
        // clients to validate update encoding without applying anything).
        "echo" => match request.get("updates") {
            Some(v) => match updates_from_json(v) {
                Ok(u) => ok_response().set("updates", updates_to_json(&u)),
                Err(e) => error_response(&e),
            },
            None => error_response("missing `updates`"),
        },
        other => error_response(&format!("unknown verb `{other}`")),
    }
}

/// Parse the optional `region` (`[min_x, min_y, max_x, max_y]`) and
/// `aircraft` (id array) fields of a `subscribe` request.
fn parse_filter(request: &JsonValue) -> Result<EventFilter, String> {
    let mut filter = EventFilter::default();
    if let Some(v) = request.get("region") {
        let arr = v
            .as_arr()
            .ok_or("`region` must be an array [min_x, min_y, max_x, max_y]")?;
        if arr.len() != 4 {
            return Err(format!("`region` needs 4 numbers, got {}", arr.len()));
        }
        let mut bounds = [0.0f32; 4];
        for (slot, item) in bounds.iter_mut().zip(arr) {
            *slot = item.as_f64().ok_or("`region` entries must be numbers")? as f32;
        }
        if bounds[0] > bounds[2] || bounds[1] > bounds[3] {
            return Err("`region` bounds are inverted (min > max)".to_owned());
        }
        filter.region = Some(bounds);
    }
    if let Some(v) = request.get("aircraft") {
        let arr = v.as_arr().ok_or("`aircraft` must be an array of ids")?;
        let mut ids = HashSet::with_capacity(arr.len());
        for item in arr {
            ids.insert(item.as_f64().ok_or("`aircraft` entries must be ids")? as u32);
        }
        filter.aircraft = Some(ids);
    }
    Ok(filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream),
            }
        }

        fn send(&mut self, line: &str) -> JsonValue {
            let mut w = self.reader.get_ref().try_clone().unwrap();
            w.write_all(line.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            self.recv()
        }

        fn recv(&mut self) -> JsonValue {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            parse_json(line.trim()).unwrap()
        }
    }

    fn serve(spec: ServerSpec) -> (SocketAddr, thread::JoinHandle<()>) {
        let server = AtmServer::bind(spec, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        (addr, server.spawn())
    }

    #[test]
    fn ingest_step_status_round_trip() {
        let (addr, handle) = serve(ServerSpec {
            n: 120,
            seed: 5,
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        let st = c.send("{\"verb\":\"status\"}");
        assert_eq!(st.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(st.get("aircraft"), Some(&JsonValue::U64(120)));

        let r = c.send(
            "{\"verb\":\"ingest\",\"updates\":[{\"id\":0,\"x\":1.0,\"y\":2.0,\"alt\":9000.0,\"dx\":0.01,\"dy\":0.0}]}",
        );
        assert_eq!(r.get("seq"), Some(&JsonValue::U64(1)));
        assert_eq!(r.get("applied"), Some(&JsonValue::U64(1)));

        let r = c.send("{\"verb\":\"step\",\"cycles\":2}");
        let reports = r.get("reports").unwrap().as_arr().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            reports[0].get("ingest_applied"),
            Some(&JsonValue::U64(1)),
            "first stepped cycle must carry the ingest"
        );

        let log = c.send("{\"verb\":\"log\"}");
        assert_eq!(log.get("entries").unwrap().as_arr().unwrap().len(), 1);

        let r = c.send("{\"verb\":\"shutdown\"}");
        assert_eq!(r.get("stopped"), Some(&JsonValue::Bool(true)));
        handle.join().unwrap();
    }

    #[test]
    fn subscribers_receive_cycle_events() {
        let (addr, handle) = serve(ServerSpec {
            n: 200,
            seed: 8,
            scenario: Some("crossing".to_owned()),
            ..ServerSpec::default()
        });
        let mut subscriber = Client::connect(addr);
        let r = subscriber.send("{\"verb\":\"subscribe\"}");
        assert_eq!(r.get("subscribed"), Some(&JsonValue::Bool(true)));

        let mut driver = Client::connect(addr);
        driver.send("{\"verb\":\"step\"}");
        let event = subscriber.recv();
        assert_eq!(
            event.get("event").and_then(JsonValue::as_str),
            Some("cycle")
        );
        assert_eq!(
            event.get("report").unwrap().get("cycle"),
            Some(&JsonValue::U64(0))
        );
        driver.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let (addr, handle) = serve(ServerSpec {
            n: 10,
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        assert_eq!(c.send("not json").get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            c.send("{\"no\":\"verb\"}").get("ok"),
            Some(&JsonValue::Bool(false))
        );
        assert_eq!(
            c.send("{\"verb\":\"warp\"}").get("ok"),
            Some(&JsonValue::Bool(false))
        );
        c.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn autostep_advances_cycles_without_step_verbs() {
        let (addr, handle) = serve(ServerSpec {
            n: 60,
            seed: 3,
            autostep_ms: Some(5),
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        let mut cycles = 0;
        for _ in 0..100 {
            thread::sleep(Duration::from_millis(10));
            let st = c.send("{\"verb\":\"status\"}");
            if let Some(&JsonValue::U64(n)) = st.get("cycles") {
                cycles = n;
            }
            if cycles >= 2 {
                break;
            }
        }
        assert!(cycles >= 2, "background loop never stepped");
        c.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    /// Two ingest requests queued while the engine lock is held elsewhere
    /// must be drained under one acquisition: the batching counter
    /// advances and both clients still get their own receipts.
    #[test]
    fn concurrent_ingests_batch_under_one_lock_acquisition() {
        let server = AtmServer::bind(
            ServerSpec {
                n: 50,
                seed: 2,
                ..ServerSpec::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.local_addr();
        let state = Arc::clone(&server.state);
        let handle = server.spawn();

        // Hold the engine lock so both in-flight ingests stack up pending.
        let guard = state.shared.lock().expect("server state poisoned");
        let clients: Vec<_> = (0..2)
            .map(|i| {
                thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    c.send(&format!(
                        "{{\"verb\":\"ingest\",\"updates\":[{{\"id\":{i},\"x\":1.0,\"y\":2.0,\
                         \"alt\":9000.0,\"dx\":0.01,\"dy\":0.0}}]}}"
                    ))
                })
            })
            .collect();
        // Both jobs queued (the clients are now blocked on the lock).
        for _ in 0..500 {
            if state.ingest_pending.lock().unwrap().len() == 2 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(state.ingest_pending.lock().unwrap().len(), 2);
        drop(guard);

        let mut seqs: Vec<u64> = clients
            .into_iter()
            .map(|c| {
                let r = c.join().unwrap();
                assert_eq!(r.get("ok"), Some(&JsonValue::Bool(true)));
                match r.get("seq") {
                    Some(&JsonValue::U64(s)) => s,
                    other => panic!("bad seq {other:?}"),
                }
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2], "each request gets its own receipt");
        assert_eq!(state.ingest_batched.load(Ordering::Relaxed), 1);

        let mut c = Client::connect(addr);
        let st = c.send("{\"verb\":\"status\"}");
        assert_eq!(st.get("ingest_batched"), Some(&JsonValue::U64(1)));
        let log = c.send("{\"verb\":\"log\"}");
        assert_eq!(log.get("entries").unwrap().as_arr().unwrap().len(), 2);
        c.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    /// A subscriber with an `aircraft` filter that matches nothing gets
    /// cycle events only, while an unfiltered subscriber on the same
    /// server still sees every conflict.
    #[test]
    fn subscription_filters_apply_before_the_queue() {
        let (addr, handle) = serve(ServerSpec {
            n: 200,
            seed: 8,
            scenario: Some("crossing".to_owned()),
            ..ServerSpec::default()
        });
        let mut all = Client::connect(addr);
        assert_eq!(
            all.send("{\"verb\":\"subscribe\"}").get("filtered"),
            None,
            "an unfiltered subscription reports no filter"
        );
        let mut none = Client::connect(addr);
        let r = none.send("{\"verb\":\"subscribe\",\"aircraft\":[999999]}");
        assert_eq!(r.get("filtered"), Some(&JsonValue::Bool(true)));
        // A region filter covering the whole airfield changes nothing.
        let mut wide = Client::connect(addr);
        let r =
            wide.send("{\"verb\":\"subscribe\",\"region\":[-10000.0,-10000.0,10000.0,10000.0]}");
        assert_eq!(r.get("filtered"), Some(&JsonValue::Bool(true)));

        let mut driver = Client::connect(addr);
        const CYCLES: usize = 3;
        driver.send(&format!("{{\"verb\":\"step\",\"cycles\":{CYCLES}}}"));

        let collect = |c: &mut Client| -> Vec<String> {
            let mut lines = Vec::new();
            let mut cycles_seen = 0;
            while cycles_seen < CYCLES {
                let v = c.recv();
                if v.get("event").and_then(JsonValue::as_str) == Some("cycle") {
                    cycles_seen += 1;
                }
                lines.push(v.to_compact());
            }
            lines
        };
        let everything = collect(&mut all);
        let conflicts = everything
            .iter()
            .filter(|l| l.contains("\"event\":\"conflict\""))
            .count();
        assert!(conflicts > 0, "the crossing scenario must conflict");
        assert_eq!(
            collect(&mut none).len(),
            CYCLES,
            "a matching-nothing filter passes only cycle events"
        );
        assert_eq!(
            collect(&mut wide),
            everything,
            "an all-covering region is a no-op"
        );

        let bad = driver.send("{\"verb\":\"subscribe\",\"region\":[1.0,2.0,3.0]}");
        assert_eq!(bad.get("ok"), Some(&JsonValue::Bool(false)));
        driver.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    /// The same verbs over the binary frame protocol: `ATMB` magic, then
    /// one `Frame::Json` per request, response and event.
    #[test]
    fn binary_clients_speak_json_frames() {
        use atm_core::{Frame, FrameStream};
        let (addr, handle) = serve(ServerSpec {
            n: 200,
            seed: 8,
            scenario: Some("crossing".to_owned()),
            ..ServerSpec::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(BINARY_MAGIC).unwrap();
        let mut frames = FrameStream::new(stream).unwrap();
        let send = |frames: &mut FrameStream, body: &str| -> JsonValue {
            frames
                .send(&Frame::Json {
                    body: body.to_owned(),
                })
                .unwrap();
            match frames.recv().unwrap() {
                Frame::Json { body } => parse_json(&body).unwrap(),
                other => panic!("expected a json frame, got {}", other.name()),
            }
        };
        let st = send(&mut frames, "{\"verb\":\"status\"}");
        assert_eq!(st.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(st.get("aircraft"), Some(&JsonValue::U64(200)));

        // Subscribe over binary, step from a text client: the event
        // arrives as a frame, bit-for-bit the text line's JSON.
        let r = send(&mut frames, "{\"verb\":\"subscribe\"}");
        assert_eq!(r.get("subscribed"), Some(&JsonValue::Bool(true)));
        let mut text_sub = Client::connect(addr);
        text_sub.send("{\"verb\":\"subscribe\"}");
        let mut driver = Client::connect(addr);
        driver.send("{\"verb\":\"step\"}");
        let event = match frames.recv().unwrap() {
            Frame::Json { body } => body,
            other => panic!("expected a json event frame, got {}", other.name()),
        };
        let text_event = {
            let mut line = String::new();
            text_sub.reader.read_line(&mut line).unwrap();
            line.trim().to_owned()
        };
        assert_eq!(event, text_event, "both modes carry identical JSON");

        driver.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn oversized_request_lines_get_a_clean_error() {
        let (addr, handle) = serve(ServerSpec {
            n: 10,
            ..ServerSpec::default()
        });
        let mut c = Client::connect(addr);
        let mut w = c.reader.get_ref().try_clone().unwrap();
        w.write_all(&vec![b'x'; MAX_LINE_BYTES + 2]).unwrap();
        w.write_all(b"\n").unwrap();
        let r = c.recv();
        assert_eq!(r.get("ok"), Some(&JsonValue::Bool(false)));
        assert!(
            r.get("error")
                .and_then(JsonValue::as_str)
                .unwrap()
                .contains("exceeds"),
            "{r:?}"
        );
        // The server then drops the desynchronized connection.
        let mut line = String::new();
        assert_eq!(c.reader.read_line(&mut line).unwrap(), 0);

        let mut c2 = Client::connect(addr);
        c2.send("{\"verb\":\"shutdown\"}");
        handle.join().unwrap();
    }

    #[test]
    fn event_queue_drops_oldest_beyond_capacity() {
        let q = EventQueue::new(3);
        for i in 0..5 {
            q.push(&format!("e{i}"));
        }
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().as_deref(), Some("e2"), "oldest two must be gone");
        assert_eq!(q.pop().as_deref(), Some("e3"));
        q.close();
        assert_eq!(q.pop().as_deref(), Some("e4"), "close drains the tail");
        assert_eq!(q.pop(), None);
        assert_eq!(q.push("late"), 2, "closed queue accepts nothing");
    }
}
