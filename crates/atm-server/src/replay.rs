//! Deterministic replay: re-feed a recorded ingest log through the batch
//! [`AtmEngine`] and reproduce a live session byte for byte.
//!
//! The contract (DESIGN.md §14): a server built from spec `S` that applied
//! ingest batches `B₁ … Bₖ` (each recorded with the number of completed
//! cycles at application time) and stepped `C` major cycles produces
//! exactly the `CycleReport`s, fleet hashes and telemetry metrics that
//! [`replay_log`] produces from `(S, log, C)` — on a modeled platform,
//! byte-identical JSON.

use crate::proto::LogEntry;
use crate::spec::ServerSpec;
use atm_core::engine::CycleReport;
use telemetry::Recorder;

/// The replayed session: per-cycle reports plus the final telemetry
/// metrics snapshot (the same document the server's graceful shutdown
/// flushes).
pub struct ReplayOutcome {
    /// One report per stepped major cycle, in order.
    pub reports: Vec<CycleReport>,
    /// `Recorder::metrics_json` after the last cycle.
    pub metrics_json: String,
}

/// Rebuild the spec's engine and replay `log` across `cycles` major
/// cycles: every entry recorded at completed-cycle count `c` is re-applied
/// immediately before stepping cycle index `c`, in sequence order —
/// exactly where the live server applied it. Entries recorded after the
/// final step are ignored (they influenced no cycle).
pub fn replay_log(
    spec: &ServerSpec,
    log: &[LogEntry],
    cycles: u64,
) -> Result<ReplayOutcome, String> {
    let mut engine = spec.build_engine()?;
    let recorder = Recorder::enabled();
    engine.set_recorder(recorder.clone());
    engine.begin_run();
    let mut next = 0usize;
    let mut reports = Vec::with_capacity(cycles as usize);
    for cycle in 0..cycles {
        while next < log.len() && log[next].cycle <= cycle {
            engine.apply_updates(&log[next].updates);
            next += 1;
        }
        reports.push(engine.step_major_cycle());
    }
    Ok(ReplayOutcome {
        reports,
        metrics_json: recorder.metrics_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AircraftUpdate;

    #[test]
    fn replay_is_self_consistent() {
        let spec = ServerSpec {
            n: 150,
            seed: 31,
            ..ServerSpec::default()
        };
        let log = vec![LogEntry {
            seq: 1,
            cycle: 1,
            updates: vec![AircraftUpdate {
                id: 4,
                x: 10.0,
                y: -20.0,
                alt: 15_000.0,
                dx: 0.02,
                dy: 0.01,
            }],
        }];
        let a = replay_log(&spec, &log, 3).unwrap();
        let b = replay_log(&spec, &log, 3).unwrap();
        let render = |o: &ReplayOutcome| {
            o.reports
                .iter()
                .map(|r| r.to_json().to_compact())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(a.metrics_json, b.metrics_json);
        assert_eq!(a.reports[1].ingest_applied, 1, "entry lands before cycle 1");
        assert_eq!(a.reports[0].ingest_applied, 0);
    }
}
