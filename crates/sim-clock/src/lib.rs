//! Shared simulated-time and cost-accounting foundation.
//!
//! Every architecture model in this workspace (the SIMT GPU simulator, the
//! associative-processor emulator, the modeled multi-core) expresses elapsed
//! time as an integer number of **picoseconds** so that repeated runs of the
//! same workload produce bit-identical timelines — determinism is one of the
//! claims of the reproduced paper and it must hold by construction in the
//! simulators.
//!
//! The crate also defines [`CostSink`], the instrumentation channel through
//! which a single implementation of an algorithm reports its abstract
//! operation mix (flops, memory traffic, branches). Each architecture model
//! implements `CostSink` with its own cost table, so the ATM task algorithms
//! are written exactly once and re-priced per architecture.

pub mod cost;
pub mod duration;
pub mod rng;
pub mod stopwatch;
pub mod timeline;

pub use cost::{CostSink, NullSink, OpClass, OpCounter, ALL_OP_CLASSES, OP_CLASS_COUNT};
pub use duration::{SimDuration, SimInstant};
pub use rng::SimRng;
pub use stopwatch::Stopwatch;
pub use timeline::{Timeline, TimelineEvent};
