//! An append-only simulated timeline.
//!
//! Architecture models advance a [`Timeline`] by appending named events with
//! durations: kernel launches, host↔device transfers, associative search
//! passes, barrier phases. The timeline is the single source of truth for
//! "how long did the device take", and its event log doubles as a trace for
//! debugging and for the determinism experiment (two runs with the same seed
//! must produce identical event logs).

use crate::duration::{SimDuration, SimInstant};
use std::fmt;

/// One timed event on a device timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Short machine-readable label, e.g. `"kernel:TrackDrone"`.
    pub label: String,
    /// When the event started.
    pub start: SimInstant,
    /// How long it took.
    pub duration: SimDuration,
}

impl TimelineEvent {
    /// Instant at which the event completed.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }
}

impl fmt::Display for TimelineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} +{}] {}",
            self.start.elapsed_since_epoch().to_string(),
            self.duration,
            self.label
        )
    }
}

/// An advancing simulated clock with an optional event log.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    now: SimInstant,
    events: Vec<TimelineEvent>,
    record_events: bool,
}

impl Timeline {
    /// A timeline that records every event (useful for traces and tests).
    pub fn recording() -> Self {
        Timeline {
            now: SimInstant::EPOCH,
            events: Vec::new(),
            record_events: true,
        }
    }

    /// A timeline that only tracks the clock (no per-event allocation; the
    /// default for benchmark sweeps).
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Current simulated instant.
    #[inline]
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Total simulated time elapsed since the epoch.
    #[inline]
    pub fn elapsed(&self) -> SimDuration {
        self.now.elapsed_since_epoch()
    }

    /// Append an event of length `duration`, advancing the clock.
    pub fn advance(&mut self, label: &str, duration: SimDuration) {
        if self.record_events {
            self.events.push(TimelineEvent {
                label: label.to_owned(),
                start: self.now,
                duration,
            });
        }
        self.now += duration;
    }

    /// Advance the clock without logging a named event (idle waits).
    pub fn skip(&mut self, duration: SimDuration) {
        self.now += duration;
    }

    /// The recorded events (empty unless constructed with [`Timeline::recording`]).
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Reset the clock to the epoch and clear the log.
    pub fn reset(&mut self) {
        self.now = SimInstant::EPOCH;
        self.events.clear();
    }

    /// Sum of the durations of events whose label starts with `prefix`.
    pub fn total_for(&self, prefix: &str) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.label.starts_with(prefix))
            .map(|e| e.duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_moves_the_clock() {
        let mut t = Timeline::new();
        t.advance("a", SimDuration::from_millis(2));
        t.advance("b", SimDuration::from_millis(3));
        assert_eq!(t.elapsed(), SimDuration::from_millis(5));
        // Non-recording timeline keeps no events.
        assert!(t.events().is_empty());
    }

    #[test]
    fn recording_timeline_logs_events_in_order() {
        let mut t = Timeline::recording();
        t.advance("kernel:Track", SimDuration::from_micros(10));
        t.advance("memcpy:D2H", SimDuration::from_micros(5));
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "kernel:Track");
        assert_eq!(ev[0].start, SimInstant::EPOCH);
        assert_eq!(
            ev[1].start.elapsed_since_epoch(),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            ev[1].end().elapsed_since_epoch(),
            SimDuration::from_micros(15)
        );
    }

    #[test]
    fn skip_advances_without_logging() {
        let mut t = Timeline::recording();
        t.skip(SimDuration::from_secs(1));
        assert_eq!(t.elapsed(), SimDuration::from_secs(1));
        assert!(t.events().is_empty());
    }

    #[test]
    fn total_for_filters_by_prefix() {
        let mut t = Timeline::recording();
        t.advance("kernel:A", SimDuration::from_micros(1));
        t.advance("memcpy:H2D", SimDuration::from_micros(2));
        t.advance("kernel:B", SimDuration::from_micros(4));
        assert_eq!(t.total_for("kernel:"), SimDuration::from_micros(5));
        assert_eq!(t.total_for("memcpy:"), SimDuration::from_micros(2));
        assert_eq!(t.total_for("nothing"), SimDuration::ZERO);
    }

    #[test]
    fn reset_returns_to_epoch() {
        let mut t = Timeline::recording();
        t.advance("x", SimDuration::from_secs(2));
        t.reset();
        assert_eq!(t.elapsed(), SimDuration::ZERO);
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display_is_stable() {
        let e = TimelineEvent {
            label: "kernel:Track".into(),
            start: SimInstant::EPOCH,
            duration: SimDuration::from_micros(3),
        };
        let s = e.to_string();
        assert!(s.contains("kernel:Track"));
        assert!(s.contains("3.000us"));
    }
}
