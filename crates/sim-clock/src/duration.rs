//! Integer simulated time.
//!
//! [`SimDuration`] is a span of simulated time stored as whole picoseconds in
//! a `u64`; [`SimInstant`] is a point on a simulated timeline. `u64`
//! picoseconds cover about 213 days of simulated time, far beyond anything a
//! benchmark sweep produces, while keeping all arithmetic exact so that two
//! identical runs cannot drift apart through floating-point rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond/microsecond/millisecond/second.
const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// An exact span of simulated time (integer picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    picos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { picos: 0 };
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration { picos: u64::MAX };

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_picos(picos: u64) -> Self {
        SimDuration { picos }
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration {
            picos: ns * PS_PER_NS,
        }
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration {
            picos: us * PS_PER_US,
        }
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration {
            picos: ms * PS_PER_MS,
        }
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration {
            picos: s * PS_PER_S,
        }
    }

    /// Convert a cycle count at a clock frequency in MHz to a duration.
    ///
    /// One cycle at `f` MHz lasts `10^6 / f` picoseconds. The division is
    /// performed after the multiply in 128-bit arithmetic so the result is
    /// exact to the picosecond (truncated).
    #[inline]
    pub fn from_cycles(cycles: u64, clock_mhz: u32) -> Self {
        assert!(clock_mhz > 0, "clock frequency must be positive");
        let picos = (cycles as u128 * 1_000_000u128) / clock_mhz as u128;
        SimDuration {
            picos: picos.min(u64::MAX as u128) as u64,
        }
    }

    /// Construct from a floating-point number of seconds (saturating, for
    /// interop with measured wall-clock times).
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let picos = secs * PS_PER_S as f64;
        if picos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration {
                picos: picos as u64,
            }
        }
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_picos(self) -> u64 {
        self.picos
    }

    /// Duration in nanoseconds (truncated).
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.picos / PS_PER_NS
    }

    /// Duration in microseconds (truncated).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.picos / PS_PER_US
    }

    /// Duration in milliseconds (truncated).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.picos / PS_PER_MS
    }

    /// Duration as floating-point seconds (for reporting/plotting only —
    /// never feed this back into the simulation).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.picos as f64 / PS_PER_S as f64
    }

    /// Duration as floating-point milliseconds (for reporting/plotting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.picos as f64 / PS_PER_MS as f64
    }

    /// Saturating subtraction: zero if `other` is longer.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            picos: self.picos.saturating_sub(other.picos),
        }
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.picos
            .checked_add(other.picos)
            .map(|picos| SimDuration { picos })
    }

    /// Multiply by an integer factor, saturating at `SimDuration::MAX`.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration {
            picos: self.picos.saturating_mul(factor),
        }
    }

    /// True when this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.picos == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            picos: self
                .picos
                .checked_add(rhs.picos)
                .expect("SimDuration overflow"),
        }
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            picos: self
                .picos
                .checked_sub(rhs.picos)
                .expect("SimDuration underflow"),
        }
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            picos: self.picos.checked_mul(rhs).expect("SimDuration overflow"),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            picos: self.picos / rhs,
        }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    /// Human-readable rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.picos;
        if p == 0 {
            write!(f, "0s")
        } else if p < PS_PER_NS {
            write!(f, "{p}ps")
        } else if p < PS_PER_US {
            write!(f, "{:.3}ns", p as f64 / PS_PER_NS as f64)
        } else if p < PS_PER_MS {
            write!(f, "{:.3}us", p as f64 / PS_PER_US as f64)
        } else if p < PS_PER_S {
            write!(f, "{:.3}ms", p as f64 / PS_PER_MS as f64)
        } else {
            write!(f, "{:.3}s", p as f64 / PS_PER_S as f64)
        }
    }
}

/// A point in simulated time, measured from the start of a [`crate::Timeline`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimInstant {
    since_start: SimDuration,
}

impl SimInstant {
    /// The origin of simulated time.
    pub const EPOCH: SimInstant = SimInstant {
        since_start: SimDuration::ZERO,
    };

    /// Construct an instant at a given offset from the epoch.
    #[inline]
    pub const fn at(since_start: SimDuration) -> Self {
        SimInstant { since_start }
    }

    /// Offset from the epoch.
    #[inline]
    pub const fn elapsed_since_epoch(self) -> SimDuration {
        self.since_start
    }

    /// Span from an earlier instant (panics if `earlier` is later).
    #[inline]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        self.since_start - earlier.since_start
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            since_start: self.since_start + rhs,
        }
    }
}

impl AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.since_start += rhs;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn cycles_at_one_ghz_are_one_ns() {
        let d = SimDuration::from_cycles(5, 1_000);
        assert_eq!(d, SimDuration::from_nanos(5));
    }

    #[test]
    fn cycles_truncate_to_picos() {
        // 1 cycle at 1500 MHz = 666.66… ps, truncates to 666 ps.
        assert_eq!(SimDuration::from_cycles(1, 1_500).as_picos(), 666);
        // But 3 cycles = exactly 2000 ps: truncation happens once, on the
        // total, not per cycle.
        assert_eq!(SimDuration::from_cycles(3, 1_500).as_picos(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_micros(250);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 4 / 4, a);
        assert_eq!(
            a.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn instants_order_and_subtract() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_millis(500);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t1.elapsed_since_epoch().as_millis(), 500);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_picos(12).to_string(), "12ps");
        assert_eq!(SimDuration::from_nanos(1).to_string(), "1.000ns");
        assert_eq!(SimDuration::from_millis(500).to_string(), "500.000ms");
        assert_eq!(SimDuration::from_secs(8).to_string(), "8.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        let half = SimDuration::from_secs_f64(0.5);
        assert_eq!(half, SimDuration::from_millis(500));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
