//! Wall-clock measurement bridged into simulated time.
//!
//! Host backends (the sequential reference and the real-thread MIMD backend)
//! are *measured*, not modeled. [`Stopwatch`] wraps `std::time::Instant` and
//! reports elapsed wall time as a [`SimDuration`] so measured and modeled
//! results flow through the same reporting pipeline.

use crate::duration::SimDuration;
use std::time::Instant;

/// A wall-clock stopwatch reporting [`SimDuration`]s.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since `start`, as simulated-time units.
    pub fn elapsed(&self) -> SimDuration {
        let d = self.start.elapsed();
        // u128 nanoseconds -> u64 picoseconds, saturating. A measured span
        // long enough to saturate (213 days) would mean something else has
        // gone very wrong.
        let picos = d.as_nanos().saturating_mul(1_000);
        SimDuration::from_picos(picos.min(u64::MAX as u128) as u64)
    }

    /// Restart the stopwatch, returning the span measured so far.
    pub fn lap(&mut self) -> SimDuration {
        let elapsed = self.elapsed();
        self.start = Instant::now();
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nondecreasing() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets_the_origin() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= SimDuration::from_millis(1));
        // Immediately after a lap, elapsed is close to zero (well under the
        // first lap's span).
        assert!(sw.elapsed() < first + SimDuration::from_millis(1));
    }

    #[test]
    fn measured_time_is_positive_after_work() {
        let sw = Stopwatch::start();
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        assert!(sw.elapsed() > SimDuration::ZERO);
    }
}
