//! A small deterministic PRNG for seeded scenario generation.
//!
//! The airfield generator and terrain synthesizer need a reproducible
//! stream of uniform draws; determinism across platforms and across runs
//! is part of the repo's determinism policy (same seed → bit-identical
//! fleets, radar pictures and figure data). This is xoshiro256++ seeded
//! through SplitMix64 — no external crates, no global state.

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed the full 256-bit state from a single word via SplitMix64, the
    /// construction the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits → every float in [0,1) with 2^-24 spacing.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in the half-open interval `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_f32() * (hi - lo)
    }

    /// Uniform `f32` in the closed interval `[lo, hi]`.
    #[inline]
    pub fn range_f32_inclusive(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let unit = (self.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32);
        lo + unit * (hi - lo)
    }

    /// Uniform `u32` in the closed interval `[lo, hi]` (Lemire reduction).
    #[inline]
    pub fn range_u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + (((self.next_u64() >> 32) * span) >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f32_draws_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v), "{v}");
            let w = r.range_f32_inclusive(-2.0, 2.0);
            assert!((-2.0..=2.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn f32_range_covers_both_halves() {
        let mut r = SimRng::seed_from_u64(9);
        let draws: Vec<f32> = (0..1_000).map(|_| r.range_f32(-1.0, 1.0)).collect();
        assert!(draws.iter().any(|&v| v < -0.5));
        assert!(draws.iter().any(|&v| v > 0.5));
    }

    #[test]
    fn u32_inclusive_hits_both_endpoints() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.range_u32_inclusive(0, 3) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn u32_parity_is_roughly_balanced() {
        // The airfield generator derives coordinate signs from draw parity.
        let mut r = SimRng::seed_from_u64(11);
        let even = (0..10_000)
            .filter(|_| r.range_u32_inclusive(0, 50).is_multiple_of(2))
            .count();
        assert!((4_000..6_200).contains(&even), "{even}");
    }
}
