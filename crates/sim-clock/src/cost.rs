//! Abstract operation accounting.
//!
//! The ATM task algorithms are implemented once, as straight-line Rust, and
//! annotated with calls into a [`CostSink`]. Each architecture model supplies
//! its own sink: the GPU simulator maps operations onto per-warp issue
//! cycles, the associative processor prices them with its constant-time
//! associative operation table, and the modeled Xeon multiplies them by
//! per-core throughput. A [`NullSink`] compiles the accounting away for
//! plain host execution.

/// Classes of abstract machine operations the algorithms report.
///
/// The granularity follows what per-architecture cost tables can actually
/// distinguish: integer ALU, FP add/mul (single issue on all modeled
/// machines), the expensive FP divide/sqrt path, special-function unit work
/// (trigonometry, used by collision resolution's path rotation), and control
/// flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Integer add/sub/compare/logic.
    IntAlu = 0,
    /// Floating-point add/sub/compare.
    FpAdd = 1,
    /// Floating-point multiply (and fused multiply-add, counted once).
    FpMul = 2,
    /// Floating-point divide.
    FpDiv = 3,
    /// Floating-point square root.
    FpSqrt = 4,
    /// Special-function unit: sin/cos/exp approximations.
    Sfu = 5,
    /// A conditional branch.
    Branch = 6,
    /// A barrier / synchronization point.
    Sync = 7,
}

/// Number of [`OpClass`] variants (array-table sizing).
pub const OP_CLASS_COUNT: usize = 8;

/// All operation classes in discriminant order.
pub const ALL_OP_CLASSES: [OpClass; OP_CLASS_COUNT] = [
    OpClass::IntAlu,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpSqrt,
    OpClass::Sfu,
    OpClass::Branch,
    OpClass::Sync,
];

/// Receiver for the abstract operation stream of one logical thread of an
/// algorithm.
///
/// Implementations must be cheap: these methods are called inside the inner
/// loops of every task on every backend.
pub trait CostSink {
    /// Record `count` operations of class `class`.
    fn op(&mut self, class: OpClass, count: u64);

    /// Record a read of `bytes` bytes from the architecture's main memory.
    fn load(&mut self, bytes: u64);

    /// Record a read of `bytes` bytes that is *uniform across the SIMD
    /// group* — every lane of a warp (or every PE step of a lockstep scan)
    /// reads the same address this step, as the ATM scan loops do when they
    /// walk the shared aircraft array. Architectures with a cache or
    /// broadcast path serve such reads once per group; architectures
    /// without one (compute capability 1.x) pay per lane. The default
    /// forwards to [`CostSink::load`].
    fn load_shared(&mut self, bytes: u64) {
        self.load(bytes);
    }

    /// Record a write of `bytes` bytes to the architecture's main memory.
    fn store(&mut self, bytes: u64);

    /// Record a data-dependent branch. `diverged` is a hint that lanes of a
    /// SIMD/SIMT group are expected to disagree on this branch (the GPU
    /// model prices divergent branches higher).
    fn branch(&mut self, diverged: bool) {
        let _ = diverged;
        self.op(OpClass::Branch, 1);
    }

    /// Record `count` branches that all share one divergence hint, in a
    /// single call. Fast paths that *skip* work (e.g. the banded conflict
    /// scan) use this to book the operation mix of the skipped iterations
    /// in aggregate; every sink must tally exactly as if [`CostSink::branch`]
    /// had been called `count` times, so modeled time is unchanged.
    fn branches(&mut self, count: u64, diverged: bool) {
        for _ in 0..count {
            self.branch(diverged);
        }
    }

    /// Record `count` group-uniform reads of `bytes_each` bytes each, in a
    /// single call. Must tally exactly as `count` calls to
    /// [`CostSink::load_shared`] would.
    fn loads_shared(&mut self, count: u64, bytes_each: u64) {
        for _ in 0..count {
            self.load_shared(bytes_each);
        }
    }

    /// Convenience: one FP add/sub/compare.
    #[inline]
    fn fadd(&mut self, count: u64) {
        self.op(OpClass::FpAdd, count);
    }

    /// Convenience: one FP multiply / FMA.
    #[inline]
    fn fmul(&mut self, count: u64) {
        self.op(OpClass::FpMul, count);
    }

    /// Convenience: FP divisions.
    #[inline]
    fn fdiv(&mut self, count: u64) {
        self.op(OpClass::FpDiv, count);
    }

    /// Convenience: FP square roots.
    #[inline]
    fn fsqrt(&mut self, count: u64) {
        self.op(OpClass::FpSqrt, count);
    }

    /// Convenience: integer/logic operations.
    #[inline]
    fn ialu(&mut self, count: u64) {
        self.op(OpClass::IntAlu, count);
    }

    /// Convenience: special-function-unit operations (sin/cos).
    #[inline]
    fn sfu(&mut self, count: u64) {
        self.op(OpClass::Sfu, count);
    }
}

/// A sink that discards everything; used for plain host execution where the
/// wall clock itself is the measurement.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl CostSink for NullSink {
    #[inline]
    fn op(&mut self, _class: OpClass, _count: u64) {}
    #[inline]
    fn load(&mut self, _bytes: u64) {}
    #[inline]
    fn store(&mut self, _bytes: u64) {}
    #[inline]
    fn branches(&mut self, _count: u64, _diverged: bool) {}
    #[inline]
    fn loads_shared(&mut self, _count: u64, _bytes_each: u64) {}
}

/// A plain counting sink: tallies per-class operation counts and memory
/// traffic. This is both a useful standalone profiler (the analytic Xeon
/// model consumes it) and the reference against which architecture sinks
/// are tested.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct OpCounter {
    /// Operation tallies indexed by `OpClass as usize`.
    pub ops: [u64; OP_CLASS_COUNT],
    /// Total bytes read from main memory.
    pub bytes_loaded: u64,
    /// Total bytes written to main memory.
    pub bytes_stored: u64,
    /// Number of loads (individual requests), regardless of width.
    pub load_count: u64,
    /// Number of stores.
    pub store_count: u64,
    /// Branches flagged as divergent by the algorithm.
    pub divergent_branches: u64,
}

impl OpCounter {
    /// A fresh, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tally for one class.
    #[inline]
    pub fn count(&self, class: OpClass) -> u64 {
        self.ops[class as usize]
    }

    /// Sum of all compute-class operations (excludes Sync).
    pub fn total_compute_ops(&self) -> u64 {
        ALL_OP_CLASSES
            .iter()
            .filter(|c| !matches!(c, OpClass::Sync))
            .map(|&c| self.count(c))
            .sum()
    }

    /// Total memory traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Merge another counter into this one (used to fold per-thread
    /// counters into per-machine totals).
    pub fn merge(&mut self, other: &OpCounter) {
        for i in 0..OP_CLASS_COUNT {
            self.ops[i] += other.ops[i];
        }
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.load_count += other.load_count;
        self.store_count += other.store_count;
        self.divergent_branches += other.divergent_branches;
    }

    /// Reset all tallies to zero, retaining the allocation-free layout.
    pub fn reset(&mut self) {
        *self = OpCounter::default();
    }
}

impl CostSink for OpCounter {
    #[inline]
    fn op(&mut self, class: OpClass, count: u64) {
        self.ops[class as usize] += count;
    }

    #[inline]
    fn load(&mut self, bytes: u64) {
        self.bytes_loaded += bytes;
        self.load_count += 1;
    }

    #[inline]
    fn store(&mut self, bytes: u64) {
        self.bytes_stored += bytes;
        self.store_count += 1;
    }

    #[inline]
    fn branch(&mut self, diverged: bool) {
        self.ops[OpClass::Branch as usize] += 1;
        if diverged {
            self.divergent_branches += 1;
        }
    }

    #[inline]
    fn branches(&mut self, count: u64, diverged: bool) {
        self.ops[OpClass::Branch as usize] += count;
        if diverged {
            self.divergent_branches += count;
        }
    }

    #[inline]
    fn loads_shared(&mut self, count: u64, bytes_each: u64) {
        self.bytes_loaded += count * bytes_each;
        self.load_count += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counter_tallies_by_class() {
        let mut c = OpCounter::new();
        c.fadd(3);
        c.fmul(2);
        c.fdiv(1);
        c.ialu(10);
        c.op(OpClass::FpSqrt, 4);
        assert_eq!(c.count(OpClass::FpAdd), 3);
        assert_eq!(c.count(OpClass::FpMul), 2);
        assert_eq!(c.count(OpClass::FpDiv), 1);
        assert_eq!(c.count(OpClass::IntAlu), 10);
        assert_eq!(c.count(OpClass::FpSqrt), 4);
        assert_eq!(c.total_compute_ops(), 20);
    }

    #[test]
    fn op_counter_tracks_memory_traffic() {
        let mut c = OpCounter::new();
        c.load(16);
        c.load(4);
        c.store(8);
        assert_eq!(c.bytes_loaded, 20);
        assert_eq!(c.bytes_stored, 8);
        assert_eq!(c.load_count, 2);
        assert_eq!(c.store_count, 1);
        assert_eq!(c.total_bytes(), 28);
    }

    #[test]
    fn branches_and_divergence() {
        let mut c = OpCounter::new();
        c.branch(false);
        c.branch(true);
        c.branch(true);
        assert_eq!(c.count(OpClass::Branch), 3);
        assert_eq!(c.divergent_branches, 2);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = OpCounter::new();
        a.fadd(1);
        a.load(8);
        a.branch(true);
        let mut b = OpCounter::new();
        b.fadd(2);
        b.store(4);
        b.branch(false);
        a.merge(&b);
        assert_eq!(a.count(OpClass::FpAdd), 3);
        assert_eq!(a.bytes_loaded, 8);
        assert_eq!(a.bytes_stored, 4);
        assert_eq!(a.count(OpClass::Branch), 2);
        assert_eq!(a.divergent_branches, 1);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut s = NullSink;
        s.op(OpClass::FpDiv, 1_000_000);
        s.load(u64::MAX);
        s.store(u64::MAX);
        s.branch(true);
        // Nothing to assert beyond "it did not panic/overflow".
    }

    #[test]
    fn aggregate_bookings_match_per_call_bookings() {
        let mut per_call = OpCounter::new();
        for _ in 0..7 {
            per_call.branch(false);
        }
        for _ in 0..3 {
            per_call.branch(true);
        }
        for _ in 0..5 {
            per_call.load_shared(24);
        }
        let mut agg = OpCounter::new();
        agg.branches(7, false);
        agg.branches(3, true);
        agg.loads_shared(5, 24);
        assert_eq!(per_call, agg);
    }

    #[test]
    fn discriminants_cover_table_indices() {
        for (i, c) in ALL_OP_CLASSES.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
