//! A std-only scoped-thread work pool for fanning independent measurement
//! points across host cores.
//!
//! Every sweep/experiment point in this crate is independent: each
//! instantiates its own backend and airfield from a seed, and all paper
//! platforms are deterministically modeled, so a point's result does not
//! depend on when or where it runs. [`Harness::run`] exploits that: workers
//! claim point indices from a shared counter and write results into
//! index-addressed slots, so the returned `Vec` is in the exact order the
//! serial loop would produce — downstream series, tables and JSON artifacts
//! are byte-identical regardless of the job count. Only *wall clock*
//! changes; simulated time is computed inside each point and never observes
//! host scheduling.
//!
//! With `jobs <= 1` (or a single point) the pool is bypassed entirely and
//! the exact serial code path runs, which is what `figures --jobs 1` and
//! the benchmark baseline use.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width work pool (see module docs).
#[derive(Clone, Debug)]
pub struct Harness {
    jobs: usize,
}

impl Harness {
    /// A harness that runs everything inline on the calling thread.
    pub fn serial() -> Harness {
        Harness { jobs: 1 }
    }

    /// A harness with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Harness {
        Harness { jobs: jobs.max(1) }
    }

    /// A harness sized to the host (`std::thread::available_parallelism`,
    /// falling back to serial when the host cannot report it).
    pub fn default_parallel() -> Harness {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Harness::new(jobs)
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate `f(0..count)` and return the results in index order.
    ///
    /// Serial (`jobs <= 1` or `count <= 1`) runs the plain iterator chain;
    /// otherwise `min(jobs, count)` scoped threads claim indices from an
    /// atomic counter and slot results by index. A panic in `f` propagates
    /// to the caller when the scope joins.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.jobs <= 1 || count <= 1 {
            return (0..count).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let f = &f;
        let next = &next;
        let slots = &slots;
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(count) {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("slot lock poisoned") = Some(value);
                });
            }
        });
        slots
            .iter()
            .map(|m| {
                m.lock()
                    .expect("slot lock poisoned")
                    .take()
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial_in_value_and_order() {
        let work = |i: usize| i * i + 1;
        let serial = Harness::serial().run(100, work);
        for jobs in [2, 3, 8, 200] {
            assert_eq!(Harness::new(jobs).run(100, work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_and_single_counts_are_fine() {
        let h = Harness::new(4);
        assert_eq!(h.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(h.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(Harness::new(0).jobs(), 1);
        assert!(Harness::default_parallel().jobs() >= 1);
        assert_eq!(Harness::serial().jobs(), 1);
    }

    #[test]
    fn workers_actually_run_concurrently_when_asked() {
        // Not a timing assertion — just that all indices are covered once
        // with more threads than items and more items than threads.
        let h = Harness::new(16);
        let out = h.run(5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        let big = h.run(1000, |i| i);
        assert_eq!(big, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        Harness::new(4).run(8, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
