//! A std-only scoped-thread work pool for fanning independent measurement
//! points across host cores.
//!
//! Every sweep/experiment point in this crate is independent: each
//! instantiates its own backend and airfield from a seed, and all paper
//! platforms are deterministically modeled, so a point's result does not
//! depend on when or where it runs. [`Harness::run`] exploits that: workers
//! claim point indices from a shared counter and write results into
//! index-addressed slots, so the returned `Vec` is in the exact order the
//! serial loop would produce — downstream series, tables and JSON artifacts
//! are byte-identical regardless of the job count. Only *wall clock*
//! changes; simulated time is computed inside each point and never observes
//! host scheduling.
//!
//! With `jobs <= 1` (or a single point) the pool is bypassed entirely and
//! the exact serial code path runs, which is what `figures --jobs 1` and
//! the benchmark baseline use.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width work pool (see module docs).
#[derive(Clone, Debug)]
pub struct Harness {
    jobs: usize,
}

impl Harness {
    /// A harness that runs everything inline on the calling thread.
    pub fn serial() -> Harness {
        Harness { jobs: 1 }
    }

    /// A harness with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Harness {
        Harness { jobs: jobs.max(1) }
    }

    /// A harness sized to the host (`std::thread::available_parallelism`,
    /// falling back to serial when the host cannot report it).
    pub fn default_parallel() -> Harness {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Harness::new(jobs)
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate `f(0..count)` and return the results in index order.
    ///
    /// Serial (`jobs <= 1` or `count <= 1`) runs the plain iterator chain;
    /// otherwise `min(jobs, count)` scoped threads claim indices from an
    /// atomic counter and slot results by index. A panic in `f` propagates
    /// to the caller when the scope joins.
    ///
    /// Indices are claimed FIFO (0, 1, 2, …). When the per-index costs are
    /// very uneven that tail-serialises — a worker that claims the heaviest
    /// index last runs it alone while the others idle. Callers that know
    /// their cost structure should pass a heaviest-first permutation to
    /// [`Harness::run_ordered`] instead.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let order: Vec<usize> = (0..count).collect();
        self.run_ordered(count, &order, f)
    }

    /// Evaluate `f` over `0..count`, claiming indices in the order given by
    /// the permutation `order`, and return the results in *index* order.
    ///
    /// The claim order is a wall-clock knob only: results are slotted by
    /// index, so the returned `Vec` is byte-identical to
    /// [`Harness::run`]'s (and to the serial loop's) for any permutation.
    /// Passing the heaviest indices first approximates LPT (longest
    /// processing time) list scheduling, which avoids the FIFO tail where
    /// the largest point starts last and runs alone.
    ///
    /// Panics if `order` is not a permutation of `0..count`.
    pub fn run_ordered<T, F>(&self, count: usize, order: &[usize], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_ordered_observed(count, order, f, |_, _| {})
    }

    /// [`Harness::run_ordered`] with a completion observer: `observe(i, &v)`
    /// fires once per index, as soon as `f(i)` has produced `v`, before the
    /// full result `Vec` exists. This is the seam the streaming figure
    /// writers hang off: a sweep can emit each point the moment it is
    /// measured instead of waiting for the whole run to join.
    ///
    /// Observations arrive in *completion* order — the claim permutation
    /// serially, an interleaving of it under parallel workers — so the
    /// observer must slot by index if it needs a deterministic view. Calls
    /// are serialized (behind a mutex in the parallel path): the observer
    /// never runs concurrently with itself, and may therefore hold plain
    /// mutable state. The returned `Vec` is in index order and
    /// byte-identical to [`Harness::run_ordered`]'s for any job count.
    ///
    /// Panics if `order` is not a permutation of `0..count`.
    pub fn run_ordered_observed<T, F, O>(
        &self,
        count: usize,
        order: &[usize],
        f: F,
        mut observe: O,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        O: FnMut(usize, &T) + Send,
    {
        assert_eq!(order.len(), count, "order must cover every index once");
        let mut seen = vec![false; count];
        for &i in order {
            assert!(
                i < count && !std::mem::replace(&mut seen[i], true),
                "order must be a permutation of 0..count"
            );
        }
        if self.jobs <= 1 || count <= 1 {
            // Execute in claim order even serially (so instrumented closures
            // observe the same sequence), but return in index order.
            let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
            for &i in order {
                let value = f(i);
                observe(i, &value);
                slots[i] = Some(value);
            }
            return slots
                .into_iter()
                .map(|v| v.expect("permutation filled every slot"))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let observe = Mutex::new(observe);
        let f = &f;
        let next = &next;
        let slots = &slots;
        let observe = &observe;
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(count) {
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= count {
                        break;
                    }
                    let i = order[k];
                    let value = f(i);
                    observe.lock().expect("observer lock poisoned")(i, &value);
                    *slots[i].lock().expect("slot lock poisoned") = Some(value);
                });
            }
        });
        slots
            .iter()
            .map(|m| {
                m.lock()
                    .expect("slot lock poisoned")
                    .take()
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// The claim permutation for [`Harness::run_ordered`] given a per-index
/// cost estimate: heaviest first, stable by index within equal costs (LPT
/// list scheduling). The estimates only need relative accuracy — any
/// monotone proxy of the real point cost (aircraft count, measured ms of a
/// prior run) yields the same order. Non-finite estimates sort last.
pub fn descending_cost_order(costs: &[f64]) -> Vec<usize> {
    let key = |i: usize| {
        if costs[i].is_finite() {
            costs[i]
        } else {
            f64::NEG_INFINITY
        }
    };
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| key(b).total_cmp(&key(a)).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial_in_value_and_order() {
        let work = |i: usize| i * i + 1;
        let serial = Harness::serial().run(100, work);
        for jobs in [2, 3, 8, 200] {
            assert_eq!(Harness::new(jobs).run(100, work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_and_single_counts_are_fine() {
        let h = Harness::new(4);
        assert_eq!(h.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(h.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(Harness::new(0).jobs(), 1);
        assert!(Harness::default_parallel().jobs() >= 1);
        assert_eq!(Harness::serial().jobs(), 1);
    }

    #[test]
    fn workers_actually_run_concurrently_when_asked() {
        // Not a timing assertion — just that all indices are covered once
        // with more threads than items and more items than threads.
        let h = Harness::new(16);
        let out = h.run(5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        let big = h.run(1000, |i| i);
        assert_eq!(big, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        Harness::new(4).run(8, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn ordered_run_slots_results_by_index_for_any_permutation() {
        let work = |i: usize| i * 31 + 5;
        let serial = Harness::serial().run(20, work);
        let reversed: Vec<usize> = (0..20).rev().collect();
        let interleaved: Vec<usize> = (0..20)
            .step_by(2)
            .chain((0..20).skip(1).step_by(2))
            .collect();
        for order in [&reversed, &interleaved] {
            for jobs in [1, 2, 7, 64] {
                let out = Harness::new(jobs).run_ordered(20, order, work);
                assert_eq!(out, serial, "jobs={jobs} order={order:?}");
            }
        }
    }

    #[test]
    fn serial_ordered_run_claims_in_the_given_order() {
        // With one job the claim sequence is fully deterministic: the
        // instrumented closure must observe exactly the permutation.
        let order = vec![4usize, 0, 3, 1, 2];
        let claimed = Mutex::new(Vec::new());
        let out = Harness::serial().run_ordered(5, &order, |i| {
            claimed.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(*claimed.lock().unwrap(), order);
    }

    #[test]
    fn parallel_ordered_run_claims_every_index_exactly_once() {
        // Across threads the *completion* order may interleave, but the
        // multiset of claimed indices must still be the permutation.
        let order: Vec<usize> = (0..50).rev().collect();
        let claimed = Mutex::new(Vec::new());
        Harness::new(8).run_ordered(50, &order, |i| {
            claimed.lock().unwrap().push(i);
        });
        let mut got = claimed.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn observer_sees_every_completion_exactly_once_with_its_value() {
        let order: Vec<usize> = (0..30).rev().collect();
        for jobs in [1, 4] {
            let mut seen: Vec<(usize, usize)> = Vec::new();
            let out = Harness::new(jobs).run_ordered_observed(
                30,
                &order,
                |i| i * 3,
                |i, &v| seen.push((i, v)),
            );
            assert_eq!(out, (0..30).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(seen.len(), 30, "jobs={jobs}");
            assert!(seen.iter().all(|&(i, v)| v == i * 3));
            let mut indices: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..30).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_observer_fires_in_claim_order_before_the_run_returns() {
        let order = vec![2usize, 0, 1];
        let mut seen = Vec::new();
        Harness::serial().run_ordered_observed(3, &order, |i| i, |i, _| seen.push(i));
        assert_eq!(seen, order);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn ordered_run_rejects_duplicate_indices() {
        Harness::serial().run_ordered(3, &[0, 1, 1], |i| i);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn ordered_run_rejects_short_orders() {
        Harness::serial().run_ordered(3, &[0, 1], |i| i);
    }

    /// Simulate greedy list scheduling: workers claim items in `order`,
    /// each item `i` occupying a worker for `durations[i]`; return the
    /// makespan. This is the exact discipline `run_ordered` implements
    /// (next free worker takes the next entry of the permutation), reduced
    /// to arithmetic so the test is deterministic.
    fn greedy_makespan(durations: &[u64], order: &[usize], workers: usize) -> u64 {
        let mut busy_until = vec![0u64; workers.max(1)];
        for &i in order {
            let w = (0..busy_until.len())
                .min_by_key(|&w| busy_until[w])
                .expect("at least one worker");
            busy_until[w] += durations[i];
        }
        busy_until.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn heaviest_first_beats_fifo_on_uneven_workloads() {
        // The sweep's shape: many light points plus a dominant heavy one
        // that FIFO starts last. Heaviest-first lets the light points pack
        // around it instead of every worker idling while it runs alone.
        let durations = [1, 1, 1, 1, 1, 1, 8u64];
        let fifo: Vec<usize> = (0..durations.len()).collect();
        let mut lpt = fifo.clone();
        lpt.sort_by(|&a, &b| durations[b].cmp(&durations[a]).then(a.cmp(&b)));
        let fifo_span = greedy_makespan(&durations, &fifo, 2);
        let lpt_span = greedy_makespan(&durations, &lpt, 2);
        assert_eq!(fifo_span, 11, "FIFO tail-serialises the heavy point");
        assert_eq!(lpt_span, 8, "LPT overlaps it with the light ones");
        assert!(lpt_span < fifo_span);

        // A geometric ramp (the actual sweep ns double): LPT is never worse.
        let ramp = [1u64, 2, 4, 8, 16, 1, 2, 4, 8, 16];
        let fifo: Vec<usize> = (0..ramp.len()).collect();
        let mut lpt = fifo.clone();
        lpt.sort_by(|&a, &b| ramp[b].cmp(&ramp[a]).then(a.cmp(&b)));
        for workers in [2, 3, 4] {
            assert!(
                greedy_makespan(&ramp, &lpt, workers) <= greedy_makespan(&ramp, &fifo, workers),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn descending_cost_order_is_a_stable_heaviest_first_permutation() {
        assert_eq!(
            descending_cost_order(&[3.0, 9.0, 1.0, 9.0]),
            vec![1, 3, 0, 2]
        );
        assert_eq!(descending_cost_order(&[]), Vec::<usize>::new());
        // Non-finite estimates sort last rather than poisoning the order.
        assert_eq!(descending_cost_order(&[1.0, f64::NAN, 2.0]), vec![2, 0, 1]);
    }

    #[test]
    fn cost_ordered_claiming_makespan_is_no_worse_than_fifo() {
        // The ablation fan-out's shape: six uneven points (see
        // ABLATION_COST_ESTIMATES) plus the deadline experiment's shape
        // (per-platform stripes of a geometric n ramp). In both, claiming
        // by descending cost estimate must never lose to FIFO under the
        // greedy discipline run_ordered implements.
        let shapes: [&[u64]; 3] = [
            &[40, 30, 8, 6, 3, 60],          // ablations
            &[1, 4, 16, 1, 4, 16, 1, 4, 16], // deadlines: 3 platforms × 3 ns
            &[5, 5, 5, 5],                   // uniform: order cannot matter
        ];
        for durations in shapes {
            let costs: Vec<f64> = durations.iter().map(|&d| d as f64).collect();
            let lpt = descending_cost_order(&costs);
            let fifo: Vec<usize> = (0..durations.len()).collect();
            for workers in [2, 3, 4] {
                assert!(
                    greedy_makespan(durations, &lpt, workers)
                        <= greedy_makespan(durations, &fifo, workers),
                    "shape {durations:?} workers={workers}"
                );
            }
        }
    }
}
