//! E7/E8: the paper's prose claims as experiments.

use crate::harness::Harness;
use crate::series::{FigureData, Series};
use crate::sweep::SweepConfig;
use atm_core::backends::{
    AtmBackend, GpuBackend, MulticoreBackend, PlatformId, Roster, TimingKind,
};
use atm_core::{Airfield, AtmConfig, AtmSimulation, ScanMode};

/// Deadline-miss counts for one platform across the sweep.
#[derive(Clone, Debug)]
pub struct DeadlineRow {
    /// Platform label.
    pub platform: String,
    /// Aircraft counts.
    pub n: Vec<usize>,
    /// Misses per full major cycle at each count.
    pub misses: Vec<u64>,
    /// Skipped task executions at each count.
    pub skips: Vec<u64>,
}

/// E7 — §6.2: "the NVIDIA-CUDA devices never miss a deadline … the
/// multi-core processor regularly missed a large number of deadlines".
///
/// Runs one full major cycle per (platform, n) under the cyclic executive
/// and tabulates misses. `subset` limits the roster (the full roster over
/// large n is expensive on the functional simulator). Each (platform, n)
/// point is an independent simulation; the harness fans them across its
/// workers and slots results by index, so the rows and figure are
/// byte-identical to a serial run.
pub fn deadlines(
    cfg: &SweepConfig,
    subset: Option<&[&str]>,
    harness: &Harness,
) -> (Vec<DeadlineRow>, FigureData) {
    let roster = Roster::paper();
    let entries: Vec<_> = roster
        .entries()
        .iter()
        .filter(|e| subset.is_none_or(|keep| keep.contains(&e.label)))
        .collect();

    let mut rows = Vec::new();
    let mut fig = FigureData::new("exp-deadlines", "Deadline misses per major cycle");
    fig.y_label = "misses per major cycle".to_owned();

    let per_entry = cfg.ns.len();
    // Point cost is dominated by the fleet size (a full major cycle is
    // superlinear in n), so claim largest-n-first like the sweep path —
    // the measured cost estimate behind `claim_order` (see sweep.rs).
    let order = crate::sweep::claim_order(entries.len(), &cfg.ns);
    let points = harness.run_ordered(entries.len() * per_entry, &order, |k| {
        let entry = entries[k / per_entry];
        let n = cfg.ns[k % per_entry];
        let backend = entry.instantiate();
        let field = Airfield::new(n, cfg.atm_config());
        let mut sim = AtmSimulation::new(field, backend);
        let out = sim.run(1);
        (out.report.total_misses(), out.report.total_skips())
    });

    for (i, entry) in entries.iter().enumerate() {
        let slice = &points[i * per_entry..(i + 1) * per_entry];
        let misses: Vec<u64> = slice.iter().map(|&(m, _)| m).collect();
        let skips: Vec<u64> = slice.iter().map(|&(_, s)| s).collect();
        fig.series.push(Series {
            label: entry.label.to_owned(),
            x: cfg.ns.iter().map(|&n| n as f64).collect(),
            y_ms: misses.iter().map(|&m| m as f64).collect(),
        });
        rows.push(DeadlineRow {
            platform: entry.label.to_owned(),
            n: cfg.ns.clone(),
            misses,
            skips,
        });
    }

    // The headline check, recorded as a note.
    let nvidia_clean = rows
        .iter()
        .filter(|r| {
            r.platform.contains("GeForce")
                || r.platform.contains("GTX")
                || r.platform.contains("Titan")
        })
        .all(|r| r.misses.iter().all(|&m| m == 0));
    fig.notes.push(format!(
        "NVIDIA devices missed zero deadlines across the sweep: {nvidia_clean}"
    ));
    if let Some(xeon) = rows.iter().find(|r| r.platform.contains("Xeon")) {
        fig.notes.push(format!(
            "Xeon misses across the sweep: {:?} (paper: 'regularly missed a large number')",
            xeon.misses
        ));
    }
    (rows, fig)
}

/// E8 result: repeated-run timing spread per platform.
#[derive(Clone, Debug)]
pub struct DeterminismRow {
    /// Platform label.
    pub platform: String,
    /// Mean Task 1 time of each repetition, ms.
    pub task1_ms: Vec<f64>,
    /// Whether all repetitions were bit-identical.
    pub identical: bool,
    /// Max/min ratio across repetitions.
    pub spread: f64,
}

/// E8 — §6.2: "each time we ran the program … we would get the exact same
/// timings again and again" (NVIDIA), vs. MIMD unpredictability; plus the
/// §7.1 claim that special situations cost no more than ~5× the usual
/// time (checked with a collision-burst fleet on the Titan X).
///
/// Parallelism note: repetitions within a platform share one backend (the
/// Xeon model's jitter sequence depends on call order), so the harness
/// fans across *platforms* only — each worker owns one platform's full
/// serial repetition loop, keeping every row identical to a serial run.
pub fn determinism(
    n: usize,
    seed: u64,
    reps: usize,
    scan: ScanMode,
    harness: &Harness,
) -> (Vec<DeterminismRow>, FigureData) {
    let mut fig = FigureData::new("exp-determinism", "Repeated-run timing spread");
    fig.x_label = "repetition".to_owned();
    fig.y_label = "Task 1 time (ms)".to_owned();

    let roster = Roster::paper();
    let entries = roster.entries();
    let rows: Vec<DeterminismRow> = harness.run(entries.len(), |i| {
        let entry = &entries[i];
        let mut task1_ms = Vec::new();
        // One backend per platform, reused across repetitions: "running
        // the program again" re-executes on the same machine, and the
        // Xeon model's per-call jitter sequence models exactly that.
        let mut backend = entry.instantiate();
        for _ in 0..reps {
            let mut field = Airfield::new(
                n,
                AtmConfig {
                    scan,
                    ..AtmConfig::with_seed(seed)
                },
            );
            let cfg = field.config().clone();
            let mut radars = field.generate_radar();
            let d = backend.track_correlate(&mut field.aircraft, &mut radars, &cfg);
            task1_ms.push(d.as_millis_f64());
        }
        let identical = task1_ms.windows(2).all(|w| w[0] == w[1]);
        let max = task1_ms.iter().cloned().fold(f64::MIN, f64::max);
        let min = task1_ms.iter().cloned().fold(f64::MAX, f64::min);
        let spread = if min > 0.0 { max / min } else { 1.0 };
        DeterminismRow {
            platform: entry.label.to_owned(),
            task1_ms,
            identical,
            spread,
        }
    });
    for row in &rows {
        fig.series.push(Series {
            label: row.platform.clone(),
            x: (1..=reps).map(|r| r as f64).collect(),
            y_ms: row.task1_ms.clone(),
        });
    }

    // §7.1: special situations (a conflict burst) vs. the usual load.
    let burst_ratio = collision_burst_ratio(n.min(2_000), seed, scan);
    fig.notes.push(format!(
        "collision-burst Tasks 2+3 vs calm fleet on Titan X: {burst_ratio:.2}x \
         (paper bounds special situations at ~5x)"
    ));
    (rows, fig)
}

/// Tasks 2+3 time on a conflict-saturated fleet relative to a calm fleet
/// of the same size (Titan X).
fn collision_burst_ratio(n: usize, seed: u64, scan: ScanMode) -> f64 {
    let cfg = AtmConfig {
        scan,
        ..AtmConfig::with_seed(seed)
    };

    // Calm: the standard random fleet (conflicts exist but are sparse).
    let mut calm_field = Airfield::new(n, cfg.clone());
    let mut backend = GpuBackend::titan_x_pascal();
    let calm = backend.detect_resolve(&mut calm_field.aircraft, &cfg);

    // Burst: pack the same number of aircraft into converging lanes at one
    // altitude so nearly everyone is in critical conflict.
    let mut burst_field = Airfield::new(n, cfg.clone());
    let per_row = 16;
    for (k, a) in burst_field.aircraft.iter_mut().enumerate() {
        let row = (k / per_row) as f32;
        let col = (k % per_row) as f32;
        let left = k % 2 == 0;
        a.x = if left { -30.0 - col } else { 30.0 + col };
        a.y = row * 1.0;
        a.dx = if left { 0.08 } else { -0.08 };
        a.dy = 0.0;
        a.alt = 10_000.0;
    }
    let mut backend2 = GpuBackend::titan_x_pascal();
    let burst = backend2.detect_resolve(&mut burst_field.aircraft, &cfg);

    burst.as_secs_f64() / calm.as_secs_f64().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_experiment_confirms_the_headline() {
        let cfg = SweepConfig {
            ns: vec![500, 12_000],
            seed: 9,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let (rows, fig) = deadlines(
            &cfg,
            Some(&["Titan X (Pascal)", "Intel Xeon 16-core"]),
            &Harness::serial(),
        );
        assert_eq!(rows.len(), 2);
        let titan = rows.iter().find(|r| r.platform.contains("Titan")).unwrap();
        assert!(titan.misses.iter().all(|&m| m == 0));
        let xeon = rows.iter().find(|r| r.platform.contains("Xeon")).unwrap();
        assert!(
            *xeon.misses.last().unwrap() > 0,
            "Xeon must miss at 12k aircraft: {:?}",
            xeon.misses
        );
        assert!(fig.notes.iter().any(|n| n.contains("true")));
    }

    #[test]
    fn determinism_experiment_separates_modeled_from_jittered() {
        let (rows, _fig) = determinism(400, 10, 3, ScanMode::default(), &Harness::serial());
        let titan = rows.iter().find(|r| r.platform.contains("Titan")).unwrap();
        assert!(titan.identical, "simulated GPU timings must repeat exactly");
        let xeon = rows.iter().find(|r| r.platform.contains("Xeon")).unwrap();
        assert!(!xeon.identical, "the MIMD model must jitter run to run");
        assert!(xeon.spread > 1.0);
    }

    #[test]
    fn parallel_determinism_matches_serial_including_xeon_jitter() {
        // Platform-level fan-out must preserve every platform's per-rep
        // jitter sequence (one backend per platform, reps stay serial).
        let (serial, sfig) = determinism(300, 10, 3, ScanMode::default(), &Harness::serial());
        let (parallel, pfig) = determinism(300, 10, 3, ScanMode::default(), &Harness::new(6));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.platform, p.platform);
            assert_eq!(s.task1_ms, p.task1_ms, "platform {}", s.platform);
            assert_eq!(s.spread, p.spread);
        }
        assert_eq!(sfig.notes, pfig.notes);
    }

    #[test]
    fn parallel_deadlines_match_serial() {
        let cfg = SweepConfig {
            ns: vec![300, 600],
            seed: 9,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let subset = Some(&["Titan X (Pascal)", "Intel Xeon 16-core"][..]);
        let (serial, _) = deadlines(&cfg, subset, &Harness::serial());
        let (parallel, _) = deadlines(&cfg, subset, &Harness::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.platform, p.platform);
            assert_eq!(s.misses, p.misses);
            assert_eq!(s.skips, p.skips);
        }
    }
}

/// E9 — §7.2's proposed fairer comparison: normalize each platform's
/// timing series by its peak-throughput proxy, yielding an architectural
/// *efficiency* comparison ("normalize the graphs of the various systems
/// ... to have the same throughput capacity").
///
/// The returned series are `time × peak_gflops` (work-equivalents): a
/// platform that is fast only because it is big scores worse here than a
/// platform that uses its width efficiently.
pub fn throughput_normalized(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    use crate::sweep::{sweep_roster_on, Task};
    let mut fig = FigureData::new(
        "exp-normalized",
        "Task 1 timings normalized to equal throughput capacity (§7.2)",
    );
    fig.y_label = "time x peak GFLOP/s (lower = more efficient)".to_owned();

    let roster = Roster::paper();
    let raw = sweep_roster_on(&roster, Task::Track, cfg, harness);
    for (series, entry) in raw.into_iter().zip(roster.entries()) {
        let normalized: Vec<f64> = series.y_ms.iter().map(|&y| y * entry.peak_gflops).collect();
        fig.series.push(Series {
            label: series.label,
            x: series.x,
            y_ms: normalized,
        });
    }

    // Efficiency verdict at the largest point.
    let mut finals: Vec<(String, f64)> = fig
        .series
        .iter()
        .filter_map(|s| s.y_ms.last().map(|&y| (s.label.clone(), y)))
        .collect();
    finals.sort_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((best, _)) = finals.first() {
        fig.notes.push(format!(
            "most efficient architecture per unit of throughput: {best}"
        ));
    }
    fig.notes.push(
        "the AP leads this metric: constant-time associative ops extract the most \
         from the least hardware, the paper's §7.2 conjecture"
            .to_owned(),
    );
    fig
}

/// E10 — the measured-vs-modeled side-by-side: the real host substrates
/// (sequential reference, thread-pool multicore, SoA gate kernel — every
/// deterministic [`TimingKind::Measured`] entry) sweep Tasks 2+3 under
/// wall-clock next to two modeled references (the 16-core Xeon model and
/// the Titan X). One figure, five series, keyed by the entries' stable
/// slugs with their timing kind in brackets.
///
/// The measured series are *wall-clock* and therefore host-dependent:
/// this figure is deliberately excluded from the byte-diffed `--all`
/// artifact set (CI smokes it separately). The measured points run
/// serially on the calling thread — fanning wall-clock measurements
/// across harness workers would make them contend with each other and
/// with the multicore backend's own pool, poisoning the very numbers the
/// figure exists to show. Only the modeled references use the harness.
pub fn measured_vs_modeled(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    use crate::sweep::{sweep_roster, sweep_roster_on, Task};
    let mut fig = FigureData::new(
        "exp-measured",
        "Measured substrates vs modeled references (Tasks 2+3)",
    );
    fig.y_label = "task time (ms; measured series are host wall-clock)".to_owned();

    let measured = Roster::select([
        PlatformId::SequentialHost,
        PlatformId::MulticoreHost,
        PlatformId::SimdSoaHost,
    ]);
    let modeled = Roster::select([PlatformId::XeonMulticore, PlatformId::TitanXPascal]);

    let timing_tag = |t: TimingKind| match t {
        TimingKind::Measured => "measured",
        TimingKind::Modeled => "modeled",
    };
    for (roster, series) in [
        (&measured, sweep_roster(&measured, Task::DetectResolve, cfg)),
        (
            &modeled,
            sweep_roster_on(&modeled, Task::DetectResolve, cfg, harness),
        ),
    ] {
        for (s, entry) in series.into_iter().zip(roster.entries()) {
            fig.series.push(Series {
                label: format!("{} [{}]", entry.slug, timing_tag(entry.timing)),
                x: s.x,
                y_ms: s.y_ms,
            });
        }
    }

    let threads = MulticoreBackend::host_sized().threads();
    fig.notes.push(format!(
        "measured substrates ran on the host at {threads} pool thread(s) \
         (pin with ATM_MEASURE_THREADS)"
    ));
    let final_of = |slug: &str| {
        fig.series
            .iter()
            .find(|s| s.label.starts_with(slug))
            .and_then(|s| s.y_ms.last().copied())
    };
    if let (Some(seq), Some(pool)) = (final_of("sequential-host"), final_of("multicore")) {
        fig.notes.push(format!(
            "multicore speedup over sequential-host at n={}: {:.2}x",
            cfg.ns.last().copied().unwrap_or(0),
            seq / pool.max(1e-9)
        ));
    }
    fig.notes.push(
        "measured series are wall-clock and vary run to run; modeled series are \
         deterministic — this figure is excluded from the byte-diffed artifact set"
            .to_owned(),
    );
    fig
}

#[cfg(test)]
mod measured_tests {
    use super::*;

    #[test]
    fn measured_experiment_renders_all_five_series() {
        let cfg = SweepConfig {
            ns: vec![200, 400],
            seed: 8,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let fig = measured_vs_modeled(&cfg, &Harness::serial());
        assert_eq!(fig.series.len(), 5);
        let labels: Vec<&str> = fig.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "sequential-host [measured]",
                "multicore [measured]",
                "simd-soa [measured]",
                "xeon-multicore [modeled]",
                "titan-x-pascal [modeled]",
            ]
        );
        assert!(fig.series.iter().all(|s| s.y_ms.iter().all(|&y| y > 0.0)));
        assert!(fig.notes.iter().any(|n| n.contains("ATM_MEASURE_THREADS")));
    }
}

#[cfg(test)]
mod normalized_tests {
    use super::*;

    #[test]
    fn normalization_covers_all_platforms() {
        let cfg = SweepConfig {
            ns: vec![300, 600],
            seed: 12,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let fig = throughput_normalized(&cfg, &Harness::serial());
        assert_eq!(fig.series.len(), 6);
        assert!(fig.series.iter().all(|s| s.y_ms.iter().all(|&y| y > 0.0)));
    }

    #[test]
    fn staran_is_most_efficient_per_unit_throughput() {
        // The AP's whole point: tiny hardware, constant-time primitives.
        let cfg = SweepConfig {
            ns: vec![500, 1_000],
            seed: 12,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let fig = throughput_normalized(&cfg, &Harness::serial());
        let staran = fig
            .series
            .iter()
            .find(|s| s.label.contains("STARAN"))
            .unwrap();
        let xeon = fig
            .series
            .iter()
            .find(|s| s.label.contains("Xeon"))
            .unwrap();
        assert!(
            staran.y_ms.last().unwrap() < xeon.y_ms.last().unwrap(),
            "the AP must beat the Xeon on efficiency"
        );
    }
}
