//! Figure data containers and rendering.

use std::fmt;
use telemetry::JsonValue;

/// One platform's timing series over the aircraft-count sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Platform label (the figure legend entry).
    pub label: String,
    /// Aircraft counts.
    pub x: Vec<f64>,
    /// Mean task time in milliseconds at each count.
    pub y_ms: Vec<f64>,
}

impl Series {
    /// Last-point slope proxy: `y/x` at the largest x (ms per aircraft).
    pub fn final_per_aircraft(&self) -> f64 {
        match (self.x.last(), self.y_ms.last()) {
            (Some(&x), Some(&y)) if x > 0.0 => y / x,
            _ => 0.0,
        }
    }

    /// The series as a JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj()
            .set("label", self.label.as_str())
            .set(
                "x",
                JsonValue::Arr(self.x.iter().map(|&v| JsonValue::F64(v)).collect()),
            )
            .set(
                "y_ms",
                JsonValue::Arr(self.y_ms.iter().map(|&v| JsonValue::F64(v)).collect()),
            )
    }
}

/// A regenerated figure: several series over the same sweep.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Identifier ("fig4" … "fig9").
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form annotations (fit verdicts, crossovers, notes).
    pub notes: Vec<String>,
}

impl FigureData {
    /// Construct an empty figure.
    pub fn new(id: &str, title: &str) -> Self {
        FigureData {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: "aircraft".to_owned(),
            y_label: "mean task time (ms)".to_owned(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The figure as a JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj()
            .set("id", self.id.as_str())
            .set("title", self.title.as_str())
            .set("x_label", self.x_label.as_str())
            .set("y_label", self.y_label.as_str())
            .set(
                "series",
                JsonValue::Arr(self.series.iter().map(Series::to_json_value).collect()),
            )
            .set(
                "notes",
                JsonValue::Arr(
                    self.notes
                        .iter()
                        .map(|n| JsonValue::Str(n.clone()))
                        .collect(),
                ),
            )
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

impl fmt::Display for FigureData {
    /// Render as an aligned text table: one row per x, one column per
    /// series — the same rows the paper's plots are drawn from.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        if self.series.is_empty() {
            return writeln!(f, "(no data)");
        }
        write!(f, "{:>10}", self.x_label)?;
        for s in &self.series {
            write!(f, " {:>22}", truncate(&s.label, 22))?;
        }
        writeln!(f)?;
        let xs = &self.series[0].x;
        for (row, &x) in xs.iter().enumerate() {
            write!(f, "{x:>10.0}")?;
            for s in &self.series {
                match s.y_ms.get(row) {
                    Some(y) => write!(f, " {y:>22.4}")?,
                    None => write!(f, " {:>22}", "-")?,
                }
            }
            writeln!(f)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Truncate a label to `n` chars for the fixed-width table columns (shared
/// with the streaming writer so both render identical headers).
pub(crate) fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        let mut f = FigureData::new("fig4", "Task 1 timings in all platforms");
        f.series.push(Series {
            label: "STARAN AP".into(),
            x: vec![1000.0, 2000.0],
            y_ms: vec![10.0, 20.0],
        });
        f.series.push(Series {
            label: "Titan X (Pascal)".into(),
            x: vec![1000.0, 2000.0],
            y_ms: vec![0.5, 1.0],
        });
        f
    }

    #[test]
    fn table_renders_rows_and_columns() {
        let s = fig().to_string();
        assert!(s.contains("fig4"), "{s}");
        assert!(s.contains("STARAN AP"), "{s}");
        assert!(s.contains("1000"), "{s}");
        assert!(s.contains("20.0000"), "{s}");
    }

    #[test]
    fn json_structure_holds_ids_labels_and_values() {
        let v = fig().to_json_value();
        let JsonValue::Obj(fields) = &v else {
            panic!("figure must be an object")
        };
        assert_eq!(
            fields[0],
            ("id".to_owned(), JsonValue::Str("fig4".to_owned()))
        );
        let series = fields
            .iter()
            .find(|(k, _)| k == "series")
            .map(|(_, v)| v)
            .unwrap();
        let JsonValue::Arr(items) = series else {
            panic!("series must be an array")
        };
        assert_eq!(items.len(), 2);
        let JsonValue::Obj(s0) = &items[0] else {
            panic!("series entries are objects")
        };
        assert_eq!(
            s0[0],
            ("label".to_owned(), JsonValue::Str("STARAN AP".to_owned()))
        );
        assert_eq!(
            s0[2],
            (
                "y_ms".to_owned(),
                JsonValue::Arr(vec![JsonValue::F64(10.0), JsonValue::F64(20.0)])
            )
        );
        // Rendered text contains the values in round-trip form.
        let text = fig().to_json();
        assert!(text.contains("\"Titan X (Pascal)\""), "{text}");
        assert!(text.contains("20.0"), "{text}");
    }

    #[test]
    fn per_aircraft_slope_proxy() {
        let s = &fig().series[0];
        assert!((s.final_per_aircraft() - 0.01).abs() < 1e-12);
        let empty = Series {
            label: "e".into(),
            x: vec![],
            y_ms: vec![],
        };
        assert_eq!(empty.final_per_aircraft(), 0.0);
    }

    #[test]
    fn long_labels_are_truncated() {
        assert_eq!(truncate("abc", 5), "abc");
        let t = truncate("abcdefghij", 5);
        assert!(t.chars().count() <= 5);
        assert!(t.ends_with('…'));
    }
}
