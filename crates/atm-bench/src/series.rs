//! Figure data containers and rendering.

use serde::Serialize;
use std::fmt;

/// One platform's timing series over the aircraft-count sweep.
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct Series {
    /// Platform label (the figure legend entry).
    pub label: String,
    /// Aircraft counts.
    pub x: Vec<f64>,
    /// Mean task time in milliseconds at each count.
    pub y_ms: Vec<f64>,
}

impl Series {
    /// Last-point slope proxy: `y/x` at the largest x (ms per aircraft).
    pub fn final_per_aircraft(&self) -> f64 {
        match (self.x.last(), self.y_ms.last()) {
            (Some(&x), Some(&y)) if x > 0.0 => y / x,
            _ => 0.0,
        }
    }
}

/// A regenerated figure: several series over the same sweep.
#[derive(Clone, Debug, Serialize)]
pub struct FigureData {
    /// Identifier ("fig4" … "fig9").
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form annotations (fit verdicts, crossovers, notes).
    pub notes: Vec<String>,
}

impl FigureData {
    /// Construct an empty figure.
    pub fn new(id: &str, title: &str) -> Self {
        FigureData {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: "aircraft".to_owned(),
            y_label: "mean task time (ms)".to_owned(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure data serializes")
    }
}

impl fmt::Display for FigureData {
    /// Render as an aligned text table: one row per x, one column per
    /// series — the same rows the paper's plots are drawn from.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        if self.series.is_empty() {
            return writeln!(f, "(no data)");
        }
        write!(f, "{:>10}", self.x_label)?;
        for s in &self.series {
            write!(f, " {:>22}", truncate(&s.label, 22))?;
        }
        writeln!(f)?;
        let xs = &self.series[0].x;
        for (row, &x) in xs.iter().enumerate() {
            write!(f, "{x:>10.0}")?;
            for s in &self.series {
                match s.y_ms.get(row) {
                    Some(y) => write!(f, " {y:>22.4}")?,
                    None => write!(f, " {:>22}", "-")?,
                }
            }
            writeln!(f)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        let mut f = FigureData::new("fig4", "Task 1 timings in all platforms");
        f.series.push(Series {
            label: "STARAN AP".into(),
            x: vec![1000.0, 2000.0],
            y_ms: vec![10.0, 20.0],
        });
        f.series.push(Series {
            label: "Titan X (Pascal)".into(),
            x: vec![1000.0, 2000.0],
            y_ms: vec![0.5, 1.0],
        });
        f
    }

    #[test]
    fn table_renders_rows_and_columns() {
        let s = fig().to_string();
        assert!(s.contains("fig4"), "{s}");
        assert!(s.contains("STARAN AP"), "{s}");
        assert!(s.contains("1000"), "{s}");
        assert!(s.contains("20.0000"), "{s}");
    }

    #[test]
    fn json_round_trips_structure() {
        let j = fig().to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "fig4");
        assert_eq!(v["series"][1]["label"], "Titan X (Pascal)");
        assert_eq!(v["series"][0]["y_ms"][1], 20.0);
    }

    #[test]
    fn per_aircraft_slope_proxy() {
        let s = &fig().series[0];
        assert!((s.final_per_aircraft() - 0.01).abs() < 1e-12);
        let empty = Series { label: "e".into(), x: vec![], y_ms: vec![] };
        assert_eq!(empty.final_per_aircraft(), 0.0);
    }

    #[test]
    fn long_labels_are_truncated() {
        assert_eq!(truncate("abc", 5), "abc");
        let t = truncate("abcdefghij", 5);
        assert!(t.chars().count() <= 5);
        assert!(t.ends_with('…'));
    }
}
