//! Incremental figure writers: emit table rows and JSON series as sweep
//! points complete, instead of materializing whole [`Series`] first.
//!
//! The shape of a figure is known before any point is measured — the
//! roster fixes the series labels, the sweep config fixes the x domain —
//! so a [`FigureStream`] is constructed from that [`FigureSkeleton`] up
//! front and fed `(series, point, y)` triples in *completion* order (see
//! [`crate::sweep::sweep_roster_streamed`]). It buffers only what
//! byte-identical output forces it to buffer:
//!
//! * a table row waits for every series' value at that x (a row spans all
//!   columns), and rows must leave in x order;
//! * a JSON series waits for all of its points, and series must leave in
//!   roster order.
//!
//! Everything that *can* leave early does: the table header and the JSON
//! prelude are written at construction, each row the moment its last cell
//! lands, each series object the moment its last point lands. Notes are
//! computed from the finished series by the annotators, so they flush in
//! [`FigureStream::finish`].
//!
//! The output is guaranteed byte-identical to the materialized renderers —
//! `format!("{fig}")` for the table, [`FigureData::to_json`] for the JSON —
//! which is what lets CI diff a streamed run against the serial baseline.

use crate::series::{truncate, FigureData, Series};
use std::io::{self, Write};
use telemetry::JsonValue;

/// The part of a figure that is known before any point is measured.
#[derive(Clone, Debug)]
pub struct FigureSkeleton {
    /// Identifier ("fig4" … "fig9").
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series labels in roster order (the table columns).
    pub labels: Vec<String>,
    /// The shared x domain (the table rows).
    pub xs: Vec<f64>,
}

impl FigureSkeleton {
    /// The skeleton of `fig` (id, title, axis labels) over the given
    /// series labels and x domain.
    pub fn of(fig: &FigureData, labels: Vec<String>, xs: Vec<f64>) -> FigureSkeleton {
        FigureSkeleton {
            id: fig.id.clone(),
            title: fig.title.clone(),
            x_label: fig.x_label.clone(),
            y_label: fig.y_label.clone(),
            labels,
            xs,
        }
    }
}

/// Re-indent a pretty-printed JSON fragment rendered at depth 0 so it can
/// be embedded at a deeper nesting level. Safe byte-wise because
/// [`JsonValue`] escapes every control character — a rendered fragment
/// contains raw newlines only where the pretty-printer put them, and
/// pretty indentation is linear in depth.
fn reindent(fragment: &str, pad: &str) -> String {
    fragment.replace('\n', &format!("\n{pad}"))
}

/// A streaming figure writer (see module docs).
///
/// `table` receives exactly the bytes of the figure's `Display` rendering;
/// `json` exactly the bytes of [`FigureData::to_json`].
pub struct FigureStream<T: Write, J: Write> {
    skel: FigureSkeleton,
    table: T,
    json: J,
    /// `cells[series][point]`, filled as measurements arrive.
    cells: Vec<Vec<Option<f64>>>,
    /// Table rows already written.
    rows_out: usize,
    /// JSON series objects already written.
    series_out: usize,
}

impl<T: Write, J: Write> FigureStream<T, J> {
    /// Open the stream: writes the table header and the JSON prelude
    /// (everything up to the contents of the `series` array) immediately.
    pub fn begin(skel: FigureSkeleton, mut table: T, mut json: J) -> io::Result<Self> {
        writeln!(table, "== {} — {} ==", skel.id, skel.title)?;
        if skel.labels.is_empty() {
            writeln!(table, "(no data)")?;
        } else {
            write!(table, "{:>10}", skel.x_label)?;
            for label in &skel.labels {
                write!(table, " {:>22}", truncate(label, 22))?;
            }
            writeln!(table)?;
        }

        let head = JsonValue::obj()
            .set("id", skel.id.as_str())
            .set("title", skel.title.as_str())
            .set("x_label", skel.x_label.as_str())
            .set("y_label", skel.y_label.as_str())
            .to_pretty();
        let head = head
            .strip_suffix("\n}")
            .expect("a non-empty pretty object ends with a bare closing brace");
        write!(json, "{head},\n  \"series\": ")?;
        write!(json, "{}", if skel.labels.is_empty() { "[]" } else { "[" })?;

        let cells = skel
            .labels
            .iter()
            .map(|_| vec![None; skel.xs.len()])
            .collect();
        let mut stream = FigureStream {
            skel,
            table,
            json,
            cells,
            rows_out: 0,
            series_out: 0,
        };
        // Zero-point series (empty x domain) are complete from the start.
        stream.flush_ready()?;
        Ok(stream)
    }

    /// Record the measurement for `(series, point)` and flush whatever it
    /// completes: the table row at `point` once every series has it, the
    /// JSON object for `series` once all its points are in (each only when
    /// its predecessors have left). Panics on out-of-range indices or a
    /// duplicate point.
    pub fn point(&mut self, series: usize, point: usize, y_ms: f64) -> io::Result<()> {
        let cell = &mut self.cells[series][point];
        assert!(
            cell.replace(y_ms).is_none(),
            "duplicate sweep point ({series}, {point})"
        );
        self.flush_ready()
    }

    fn flush_ready(&mut self) -> io::Result<()> {
        while self.rows_out < self.skel.xs.len()
            && self.cells.iter().all(|c| c[self.rows_out].is_some())
        {
            let row = self.rows_out;
            write!(self.table, "{:>10.0}", self.skel.xs[row])?;
            for cell in &self.cells {
                let y = cell[row].expect("checked above");
                write!(self.table, " {y:>22.4}")?;
            }
            writeln!(self.table)?;
            self.rows_out += 1;
        }
        while self.series_out < self.skel.labels.len()
            && self.cells[self.series_out].iter().all(Option::is_some)
        {
            let k = self.series_out;
            let series = Series {
                label: self.skel.labels[k].clone(),
                x: self.skel.xs.clone(),
                y_ms: self.cells[k].iter().map(|y| y.expect("checked")).collect(),
            };
            let body = reindent(&series.to_json_value().to_pretty(), "    ");
            if k > 0 {
                write!(self.json, ",")?;
            }
            write!(self.json, "\n    {body}")?;
            self.series_out += 1;
        }
        Ok(())
    }

    /// Close the stream: writes the notes (computed by the caller from the
    /// finished series) and the JSON epilogue, then flushes both writers.
    /// Panics if any point is still missing.
    pub fn finish(mut self, notes: &[String]) -> io::Result<()> {
        self.flush_ready()?;
        assert!(
            self.series_out == self.skel.labels.len() && self.rows_out == self.skel.xs.len(),
            "finish() before every sweep point arrived"
        );
        // The Display renderer prints notes only below a non-empty table.
        if !self.skel.labels.is_empty() {
            for note in notes {
                writeln!(self.table, "  note: {note}")?;
            }
        }
        if !self.skel.labels.is_empty() {
            write!(self.json, "\n  ]")?;
        }
        let notes_arr = JsonValue::Arr(notes.iter().map(|n| JsonValue::Str(n.clone())).collect());
        let notes_body = reindent(&notes_arr.to_pretty(), "  ");
        write!(self.json, ",\n  \"notes\": {notes_body}\n}}")?;
        self.table.flush()?;
        self.json.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The materialized figure the streamed bytes must reproduce.
    fn materialize(skel: &FigureSkeleton, cells: &[Vec<f64>], notes: &[String]) -> FigureData {
        let mut fig = FigureData::new(&skel.id, &skel.title);
        fig.x_label = skel.x_label.clone();
        fig.y_label = skel.y_label.clone();
        fig.series = skel
            .labels
            .iter()
            .zip(cells)
            .map(|(label, y)| Series {
                label: label.clone(),
                x: skel.xs.clone(),
                y_ms: y.clone(),
            })
            .collect();
        fig.notes = notes.to_vec();
        fig
    }

    fn skel() -> FigureSkeleton {
        FigureSkeleton {
            id: "fig4".into(),
            title: "Comparing Task 1 timings in all platforms".into(),
            x_label: "aircraft".into(),
            y_label: "mean task time (ms)".into(),
            labels: vec![
                "STARAN AP".into(),
                "a label far too long for one column".into(),
            ],
            xs: vec![500.0, 1000.0, 2000.0],
        }
    }

    fn stream_all(
        skel: &FigureSkeleton,
        cells: &[Vec<f64>],
        notes: &[String],
        arrival: &[(usize, usize)],
    ) -> (String, String) {
        let mut table = Vec::new();
        let mut json = Vec::new();
        let mut s = FigureStream::begin(skel.clone(), &mut table, &mut json).unwrap();
        for &(series, point) in arrival {
            s.point(series, point, cells[series][point]).unwrap();
        }
        s.finish(notes).unwrap();
        (
            String::from_utf8(table).unwrap(),
            String::from_utf8(json).unwrap(),
        )
    }

    #[test]
    fn streamed_bytes_match_the_materialized_renderers() {
        let skel = skel();
        let cells = vec![vec![10.0, 20.5, 41.0], vec![0.5, 1.0, 2.25]];
        let notes = vec![
            "at the largest sweep point: ...".to_owned(),
            "two".to_owned(),
        ];
        // Completion order scrambled the way a parallel sweep would.
        let arrival = [(1, 2), (0, 0), (1, 0), (0, 2), (0, 1), (1, 1)];
        let (table, json) = stream_all(&skel, &cells, &notes, &arrival);
        let fig = materialize(&skel, &cells, &notes);
        assert_eq!(table, format!("{fig}"));
        assert_eq!(json, fig.to_json());
    }

    #[test]
    fn streamed_bytes_match_with_no_notes_and_one_series() {
        let skel = FigureSkeleton {
            labels: vec!["GTX 880M".into()],
            ..skel()
        };
        let cells = vec![vec![1.0, 2.0, 3.0]];
        let (table, json) = stream_all(&skel, &cells, &[], &[(0, 1), (0, 0), (0, 2)]);
        let fig = materialize(&skel, &cells, &[]);
        assert_eq!(table, format!("{fig}"));
        assert_eq!(json, fig.to_json());
    }

    #[test]
    fn empty_skeleton_renders_the_no_data_figure() {
        let skel = FigureSkeleton {
            labels: vec![],
            xs: vec![],
            ..skel()
        };
        let notes = vec!["orphan note".to_owned()];
        let (table, json) = stream_all(&skel, &[], &notes, &[]);
        let fig = materialize(&skel, &[], &notes);
        assert_eq!(table, format!("{fig}"));
        assert_eq!(json, fig.to_json());
    }

    /// A clonable byte sink so the test can inspect a stream's output
    /// while the stream still owns its writer.
    #[derive(Clone, Default)]
    struct SharedBuf(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn string(&self) -> String {
            String::from_utf8(self.0.borrow().clone()).unwrap()
        }
        fn len(&self) -> usize {
            self.0.borrow().len()
        }
    }

    #[test]
    fn rows_and_series_flush_as_soon_as_their_last_cell_lands() {
        let skel = skel();
        let table = SharedBuf::default();
        let json = SharedBuf::default();
        let mut s = FigureStream::begin(skel.clone(), table.clone(), json.clone()).unwrap();

        // Header (title line + column line) is out before any point.
        assert_eq!(table.string().lines().count(), 2);
        let header_len = table.len();

        s.point(0, 0, 10.0).unwrap();
        assert_eq!(table.len(), header_len, "row 0 must wait for series 1");
        s.point(1, 0, 0.5).unwrap();
        assert!(table.len() > header_len, "row 0 complete, must flush");
        assert!(table.string().contains("500"));
        assert!(!table.string().contains("1000"));

        // Series 0 completes: its JSON object flushes before series 1 has
        // a single remaining point measured.
        let json_before = json.len();
        s.point(0, 1, 20.5).unwrap();
        s.point(0, 2, 41.0).unwrap();
        assert!(json.len() > json_before, "series 0 complete, must flush");
        assert!(json.string().contains("\"STARAN AP\""));
        assert!(!json.string().contains("too long"));

        s.point(1, 1, 1.0).unwrap();
        s.point(1, 2, 2.25).unwrap();
        s.finish(&[]).unwrap();
        let fig = materialize(&skel, &[vec![10.0, 20.5, 41.0], vec![0.5, 1.0, 2.25]], &[]);
        assert_eq!(table.string(), format!("{fig}"));
        assert_eq!(json.string(), fig.to_json());
    }

    #[test]
    #[should_panic(expected = "duplicate sweep point")]
    fn duplicate_points_are_rejected() {
        let mut s = FigureStream::begin(skel(), Vec::new(), Vec::new()).unwrap();
        s.point(0, 0, 1.0).unwrap();
        s.point(0, 0, 1.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "before every sweep point")]
    fn finishing_early_is_rejected() {
        let s = FigureStream::begin(skel(), Vec::new(), Vec::new()).unwrap();
        s.finish(&[]).unwrap();
    }
}
