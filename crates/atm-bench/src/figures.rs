//! Generators for the paper's Figures 4–9.
//!
//! Every generator takes a [`Harness`] and fans its sweep points across the
//! harness's workers; the harness's index-slotted results keep each figure
//! byte-identical to a serial run (pass [`Harness::serial`] to force the
//! seed code path).
//!
//! Each figure is described once by a [`FigSpec`] — id, title, roster,
//! task, annotation style — and produced through one of two drivers over
//! that spec: [`figure`] materializes the whole [`FigureData`] before
//! anything is rendered, [`figure_streamed`] pushes every sweep point into
//! a [`FigureStream`] the moment it is measured, so table rows and JSON
//! series leave while the sweep is still running. Both drivers share the
//! sweep and the annotators, and the stream writer reproduces the
//! materialized renderers byte for byte, so the two paths cannot diverge.

use crate::harness::Harness;
use crate::series::FigureData;
use crate::stream::{FigureSkeleton, FigureStream};
use crate::sweep::{sweep_roster_on, sweep_roster_streamed, SweepConfig, Task};
use atm_core::backends::{PlatformId, Roster};
use curvefit::{classify_curve, fit_exponential, fit_poly, CurveClass};
use std::io::{self, Write};

/// How a figure's notes are derived from its finished series.
enum Style {
    /// Final-point ordering, optionally with the Xeon growth-law contrast.
    Ordering { xeon: bool },
    /// MATLAB-style linear/quadratic fits (Figs. 8 and 9).
    Fit,
}

/// One figure of the paper: everything needed to run and annotate it.
struct FigSpec {
    id: &'static str,
    title: &'static str,
    roster: Roster,
    task: Task,
    style: Style,
}

/// The spec for paper figure `n`, or `None` outside 4..=9.
fn spec(n: u32) -> Option<FigSpec> {
    Some(match n {
        4 => FigSpec {
            id: "fig4",
            title: "Comparing Task 1 timings in all platforms",
            roster: Roster::paper(),
            task: Task::Track,
            style: Style::Ordering { xeon: true },
        },
        5 => FigSpec {
            id: "fig5",
            title: "Comparing Task 1 timings in all NVIDIA cards",
            roster: Roster::nvidia(),
            task: Task::Track,
            style: Style::Ordering { xeon: false },
        },
        6 => FigSpec {
            id: "fig6",
            title: "Comparing Tasks 2 and 3 timings in all platforms",
            roster: Roster::paper(),
            task: Task::DetectResolve,
            style: Style::Ordering { xeon: true },
        },
        7 => FigSpec {
            id: "fig7",
            title: "Comparing Tasks 2 and 3 timings in all NVIDIA cards",
            roster: Roster::nvidia(),
            task: Task::DetectResolve,
            style: Style::Ordering { xeon: false },
        },
        8 => FigSpec {
            id: "fig8",
            title: "Near linear curve for Task 1 timings on the GTX 880M card",
            roster: Roster::select([PlatformId::Gtx880m]),
            task: Task::Track,
            style: Style::Fit,
        },
        9 => FigSpec {
            id: "fig9",
            title: "Quadratic (low coefficient) curve for Tasks 2 and 3 timings on GT9800",
            roster: Roster::select([PlatformId::Geforce9800Gt]),
            task: Task::DetectResolve,
            style: Style::Fit,
        },
        _ => return None,
    })
}

/// Apply a spec's annotation style to a figure whose series are complete.
fn annotate(style: &Style, fig: &mut FigureData) {
    match style {
        Style::Ordering { xeon } => {
            annotate_ordering(fig);
            if *xeon {
                annotate_xeon_growth(fig);
            }
        }
        Style::Fit => annotate_fits(fig),
    }
}

/// Produce paper figure `n` (4..=9), materialized: the sweep runs to
/// completion, then the series are annotated. `None` outside 4..=9.
pub fn figure(n: u32, cfg: &SweepConfig, harness: &Harness) -> Option<FigureData> {
    let spec = spec(n)?;
    let mut fig = FigureData::new(spec.id, spec.title);
    fig.series = sweep_roster_on(&spec.roster, spec.task, cfg, harness);
    annotate(&spec.style, &mut fig);
    Some(fig)
}

/// Produce paper figure `n` (4..=9), streaming: every sweep point is
/// pushed into a [`FigureStream`] over `table`/`json` the moment it is
/// measured, so partial output exists while later points are still being
/// computed; notes flush at the end (they are functions of the finished
/// series). The bytes written are identical to rendering [`figure`]'s
/// result with `Display` / [`FigureData::to_json`], and the returned
/// figure is identical to [`figure`]'s. `Ok(None)` outside 4..=9.
pub fn figure_streamed<T: Write + Send, J: Write + Send>(
    n: u32,
    cfg: &SweepConfig,
    harness: &Harness,
    table: T,
    json: J,
) -> io::Result<Option<FigureData>> {
    let Some(spec) = spec(n) else { return Ok(None) };
    let mut fig = FigureData::new(spec.id, spec.title);
    let labels: Vec<String> = spec
        .roster
        .entries()
        .iter()
        .map(|e| e.label.to_owned())
        .collect();
    let xs: Vec<f64> = cfg.ns.iter().map(|&n| n as f64).collect();
    let mut stream = FigureStream::begin(FigureSkeleton::of(&fig, labels, xs), table, json)?;
    let mut write_error = None;
    fig.series = sweep_roster_streamed(&spec.roster, spec.task, cfg, harness, |entry, point, y| {
        if write_error.is_none() {
            write_error = stream.point(entry, point, y).err();
        }
    });
    if let Some(e) = write_error {
        return Err(e);
    }
    annotate(&spec.style, &mut fig);
    stream.finish(&fig.notes)?;
    Ok(Some(fig))
}

/// Fig. 4 — "Comparing Task 1 timings in all platforms".
pub fn fig4(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(4, cfg, harness).expect("figure 4 is in the paper")
}

/// Fig. 5 — "Comparing Task 1 timings in all NVIDIA cards".
pub fn fig5(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(5, cfg, harness).expect("figure 5 is in the paper")
}

/// Fig. 6 — "Comparing Tasks 2 and 3 timings in all platforms".
pub fn fig6(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(6, cfg, harness).expect("figure 6 is in the paper")
}

/// Fig. 7 — "Comparing Tasks 2 and 3 timings in all NVIDIA cards".
pub fn fig7(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(7, cfg, harness).expect("figure 7 is in the paper")
}

/// Fig. 8 — "Near linear curve for Task 1 timings on the GTX 880M card":
/// the Task 1 series on the 880M plus MATLAB-style linear/quadratic fits
/// and goodness-of-fit numbers.
pub fn fig8(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(8, cfg, harness).expect("figure 8 is in the paper")
}

/// Fig. 9 — "Quadratic (low coefficient) curve for Tasks 2 and 3 timings
/// on the GeForce 9800 GT card".
pub fn fig9(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    figure(9, cfg, harness).expect("figure 9 is in the paper")
}

/// Shared fit machinery for Figs. 8 and 9.
fn annotate_fits(fig: &mut FigureData) {
    for s in &fig.series {
        match classify_curve(&s.x, &s.y_ms) {
            Ok((class, linear, quad)) => {
                fig.notes.push(format!("{}: classified {}", s.label, class));
                fig.notes.push(format!("{}: linear    {}", s.label, linear));
                fig.notes.push(format!("{}: quadratic {}", s.label, quad));
                if class != CurveClass::Quadratic {
                    fig.notes.push(format!(
                        "{}: SIMD-like (near-linear) scaling confirmed",
                        s.label
                    ));
                }
            }
            Err(e) => fig.notes.push(format!("{}: fit failed: {e}", s.label)),
        }
        // The verdict depends on the sweep domain (the quadratic term's
        // share grows with n); also classify the paper-scale prefix so the
        // domain dependence is visible in the artifact.
        if s.x.len() > 3 {
            let k = 3;
            if let Ok((class, ..)) = classify_curve(&s.x[..k], &s.y_ms[..k]) {
                fig.notes.push(format!(
                    "{}: over the restricted domain (n ≤ {:.0}): classified {}",
                    s.label,
                    s.x[k - 1],
                    class
                ));
            }
        }
    }
}

/// The paper calls the multi-core curve "essentially certain to be an
/// exponential curve"; quantify that by comparing polynomial and
/// exponential fits on the Xeon series.
fn annotate_xeon_growth(fig: &mut FigureData) {
    let Some(xeon) = fig.series.iter().find(|s| s.label.contains("Xeon")) else {
        return;
    };
    let quad = fit_poly(&xeon.x, &xeon.y_ms, 2);
    let expo = fit_exponential(&xeon.x, &xeon.y_ms);
    if let (Ok(quad), Ok(expo)) = (quad, expo) {
        let verdict = if expo.gof.sse < quad.gof.sse {
            "exponential fits best (paper: 'essentially certain to be exponential')"
        } else {
            "super-linear polynomial fits best (paper calls it 'possibly exponential')"
        };
        fig.notes.push(format!("Xeon growth: {verdict}"));
        fig.notes.push(format!("Xeon quadratic   {quad}"));
        fig.notes.push(format!("Xeon exponential {expo}"));
    }
}

/// Note who wins at the largest sweep point (the paper's headline: the
/// NVIDIA devices beat the AP, ClearSpeed and Xeon series).
fn annotate_ordering(fig: &mut FigureData) {
    let mut finals: Vec<(String, f64)> = fig
        .series
        .iter()
        .filter_map(|s| s.y_ms.last().map(|&y| (s.label.clone(), y)))
        .collect();
    finals.sort_by(|a, b| a.1.total_cmp(&b.1));
    let order = finals
        .iter()
        .map(|(l, y)| format!("{l} ({y:.3} ms)"))
        .collect::<Vec<_>>()
        .join("  <  ");
    fig.notes
        .push(format!("at the largest sweep point: {order}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    use atm_core::ScanMode;

    fn tiny() -> SweepConfig {
        SweepConfig {
            ns: vec![200, 400, 800],
            seed: 5,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        }
    }

    #[test]
    fn fig5_has_three_nvidia_series() {
        let f = fig5(&tiny(), &Harness::serial());
        assert_eq!(f.series.len(), 3);
        assert!(f.notes.iter().any(|n| n.contains("largest sweep point")));
    }

    #[test]
    fn fig8_classifies_the_880m_curve() {
        let f = fig8(&tiny(), &Harness::serial());
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].label, "GTX 880M");
        assert!(f.notes.iter().any(|n| n.contains("classified")));
        assert!(f.notes.iter().any(|n| n.contains("R²")));
    }

    #[test]
    fn fig9_fits_the_9800_gt_detect_curve() {
        let f = fig9(&tiny(), &Harness::serial());
        assert_eq!(f.series[0].label, "GeForce 9800 GT");
        assert!(f.notes.iter().any(|n| n.contains("quadratic")));
    }

    #[test]
    fn parallel_figure_matches_serial_figure_exactly() {
        let serial = fig6(&tiny(), &Harness::serial());
        let parallel = fig6(&tiny(), &Harness::new(4));
        assert_eq!(serial.notes, parallel.notes);
        assert_eq!(serial.series.len(), parallel.series.len());
        for (s, p) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.y_ms, p.y_ms);
        }
    }

    #[test]
    fn there_is_no_figure_outside_the_papers_range() {
        assert!(figure(3, &tiny(), &Harness::serial()).is_none());
        assert!(figure(10, &tiny(), &Harness::serial()).is_none());
        let streamed = figure_streamed(10, &tiny(), &Harness::serial(), Vec::new(), Vec::new())
            .expect("no I/O performed");
        assert!(streamed.is_none());
    }

    #[test]
    fn streamed_figures_write_the_materialized_bytes() {
        // Every paper figure, both annotation styles, serial and parallel:
        // the streamed table/JSON bytes must equal the materialized
        // renderings and the returned figure must match `figure`'s.
        let cfg = tiny();
        for n in [4, 8] {
            let baseline = figure(n, &cfg, &Harness::serial()).unwrap();
            for jobs in [1, 4] {
                let mut table = Vec::new();
                let mut json = Vec::new();
                let fig = figure_streamed(n, &cfg, &Harness::new(jobs), &mut table, &mut json)
                    .expect("in-memory writers cannot fail")
                    .expect("paper figure");
                assert_eq!(fig.notes, baseline.notes, "fig{n} jobs={jobs}");
                assert_eq!(fig.series, baseline.series, "fig{n} jobs={jobs}");
                assert_eq!(
                    String::from_utf8(table).unwrap(),
                    format!("{baseline}"),
                    "fig{n} jobs={jobs} table bytes"
                );
                assert_eq!(
                    String::from_utf8(json).unwrap(),
                    baseline.to_json(),
                    "fig{n} jobs={jobs} json bytes"
                );
            }
        }
    }

    #[test]
    fn nvidia_beats_the_xeon_in_fig4_ordering() {
        let f = fig4(
            &SweepConfig {
                ns: vec![1_000, 2_000],
                seed: 5,
                reps: 1,
                scan: ScanMode::default(),
                shards: 1,
            },
            &Harness::serial(),
        );
        let xeon = f.series.iter().find(|s| s.label.contains("Xeon")).unwrap();
        let titan = f.series.iter().find(|s| s.label.contains("Titan")).unwrap();
        assert!(
            titan.y_ms.last().unwrap() < xeon.y_ms.last().unwrap(),
            "the paper's headline ordering must hold"
        );
    }
}
