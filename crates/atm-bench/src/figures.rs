//! Generators for the paper's Figures 4–9.
//!
//! Every generator takes a [`Harness`] and fans its sweep points across the
//! harness's workers; the harness's index-slotted results keep each figure
//! byte-identical to a serial run (pass [`Harness::serial`] to force the
//! seed code path).

use crate::harness::Harness;
use crate::series::{FigureData, Series};
use crate::sweep::{sweep_roster_on, SweepConfig, Task};
use atm_core::backends::{PlatformId, Roster};
use curvefit::{classify_curve, fit_exponential, fit_poly, CurveClass};

/// Fig. 4 — "Comparing Task 1 timings in all platforms".
pub fn fig4(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let mut fig = FigureData::new("fig4", "Comparing Task 1 timings in all platforms");
    fig.series = sweep_roster_on(&Roster::paper(), Task::Track, cfg, harness);
    annotate_ordering(&mut fig);
    annotate_xeon_growth(&mut fig);
    fig
}

/// Fig. 5 — "Comparing Task 1 timings in all NVIDIA cards".
pub fn fig5(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let mut fig = FigureData::new("fig5", "Comparing Task 1 timings in all NVIDIA cards");
    fig.series = sweep_roster_on(&Roster::nvidia(), Task::Track, cfg, harness);
    annotate_ordering(&mut fig);
    fig
}

/// Fig. 6 — "Comparing Tasks 2 and 3 timings in all platforms".
pub fn fig6(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let mut fig = FigureData::new("fig6", "Comparing Tasks 2 and 3 timings in all platforms");
    fig.series = sweep_roster_on(&Roster::paper(), Task::DetectResolve, cfg, harness);
    annotate_ordering(&mut fig);
    annotate_xeon_growth(&mut fig);
    fig
}

/// Fig. 7 — "Comparing Tasks 2 and 3 timings in all NVIDIA cards".
pub fn fig7(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let mut fig = FigureData::new(
        "fig7",
        "Comparing Tasks 2 and 3 timings in all NVIDIA cards",
    );
    fig.series = sweep_roster_on(&Roster::nvidia(), Task::DetectResolve, cfg, harness);
    annotate_ordering(&mut fig);
    fig
}

/// Fig. 8 — "Near linear curve for Task 1 timings on the GTX 880M card":
/// the Task 1 series on the 880M plus MATLAB-style linear/quadratic fits
/// and goodness-of-fit numbers.
pub fn fig8(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let roster = Roster::select([PlatformId::Gtx880m]);
    let series = sweep_roster_on(&roster, Task::Track, cfg, harness);
    fit_figure(
        "fig8",
        "Near linear curve for Task 1 timings on the GTX 880M card",
        series,
    )
}

/// Fig. 9 — "Quadratic (low coefficient) curve for Tasks 2 and 3 timings
/// on the GeForce 9800 GT card".
pub fn fig9(cfg: &SweepConfig, harness: &Harness) -> FigureData {
    let roster = Roster::select([PlatformId::Geforce9800Gt]);
    let series = sweep_roster_on(&roster, Task::DetectResolve, cfg, harness);
    fit_figure(
        "fig9",
        "Quadratic (low coefficient) curve for Tasks 2 and 3 timings on GT9800",
        series,
    )
}

/// Shared fit machinery for Figs. 8 and 9.
fn fit_figure(id: &str, title: &str, series: Vec<Series>) -> FigureData {
    let mut fig = FigureData::new(id, title);
    for s in &series {
        match classify_curve(&s.x, &s.y_ms) {
            Ok((class, linear, quad)) => {
                fig.notes.push(format!("{}: classified {}", s.label, class));
                fig.notes.push(format!("{}: linear    {}", s.label, linear));
                fig.notes.push(format!("{}: quadratic {}", s.label, quad));
                if class != CurveClass::Quadratic {
                    fig.notes.push(format!(
                        "{}: SIMD-like (near-linear) scaling confirmed",
                        s.label
                    ));
                }
            }
            Err(e) => fig.notes.push(format!("{}: fit failed: {e}", s.label)),
        }
        // The verdict depends on the sweep domain (the quadratic term's
        // share grows with n); also classify the paper-scale prefix so the
        // domain dependence is visible in the artifact.
        if s.x.len() > 3 {
            let k = 3;
            if let Ok((class, ..)) = classify_curve(&s.x[..k], &s.y_ms[..k]) {
                fig.notes.push(format!(
                    "{}: over the restricted domain (n ≤ {:.0}): classified {}",
                    s.label,
                    s.x[k - 1],
                    class
                ));
            }
        }
    }
    fig.series = series;
    fig
}

/// The paper calls the multi-core curve "essentially certain to be an
/// exponential curve"; quantify that by comparing polynomial and
/// exponential fits on the Xeon series.
fn annotate_xeon_growth(fig: &mut FigureData) {
    let Some(xeon) = fig.series.iter().find(|s| s.label.contains("Xeon")) else {
        return;
    };
    let quad = fit_poly(&xeon.x, &xeon.y_ms, 2);
    let expo = fit_exponential(&xeon.x, &xeon.y_ms);
    if let (Ok(quad), Ok(expo)) = (quad, expo) {
        let verdict = if expo.gof.sse < quad.gof.sse {
            "exponential fits best (paper: 'essentially certain to be exponential')"
        } else {
            "super-linear polynomial fits best (paper calls it 'possibly exponential')"
        };
        fig.notes.push(format!("Xeon growth: {verdict}"));
        fig.notes.push(format!("Xeon quadratic   {quad}"));
        fig.notes.push(format!("Xeon exponential {expo}"));
    }
}

/// Note who wins at the largest sweep point (the paper's headline: the
/// NVIDIA devices beat the AP, ClearSpeed and Xeon series).
fn annotate_ordering(fig: &mut FigureData) {
    let mut finals: Vec<(String, f64)> = fig
        .series
        .iter()
        .filter_map(|s| s.y_ms.last().map(|&y| (s.label.clone(), y)))
        .collect();
    finals.sort_by(|a, b| a.1.total_cmp(&b.1));
    let order = finals
        .iter()
        .map(|(l, y)| format!("{l} ({y:.3} ms)"))
        .collect::<Vec<_>>()
        .join("  <  ");
    fig.notes
        .push(format!("at the largest sweep point: {order}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    use atm_core::ScanMode;

    fn tiny() -> SweepConfig {
        SweepConfig {
            ns: vec![200, 400, 800],
            seed: 5,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        }
    }

    #[test]
    fn fig5_has_three_nvidia_series() {
        let f = fig5(&tiny(), &Harness::serial());
        assert_eq!(f.series.len(), 3);
        assert!(f.notes.iter().any(|n| n.contains("largest sweep point")));
    }

    #[test]
    fn fig8_classifies_the_880m_curve() {
        let f = fig8(&tiny(), &Harness::serial());
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].label, "GTX 880M");
        assert!(f.notes.iter().any(|n| n.contains("classified")));
        assert!(f.notes.iter().any(|n| n.contains("R²")));
    }

    #[test]
    fn fig9_fits_the_9800_gt_detect_curve() {
        let f = fig9(&tiny(), &Harness::serial());
        assert_eq!(f.series[0].label, "GeForce 9800 GT");
        assert!(f.notes.iter().any(|n| n.contains("quadratic")));
    }

    #[test]
    fn parallel_figure_matches_serial_figure_exactly() {
        let serial = fig6(&tiny(), &Harness::serial());
        let parallel = fig6(&tiny(), &Harness::new(4));
        assert_eq!(serial.notes, parallel.notes);
        assert_eq!(serial.series.len(), parallel.series.len());
        for (s, p) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.y_ms, p.y_ms);
        }
    }

    #[test]
    fn nvidia_beats_the_xeon_in_fig4_ordering() {
        let f = fig4(
            &SweepConfig {
                ns: vec![1_000, 2_000],
                seed: 5,
                reps: 1,
                scan: ScanMode::default(),
                shards: 1,
            },
            &Harness::serial(),
        );
        let xeon = f.series.iter().find(|s| s.label.contains("Xeon")).unwrap();
        let titan = f.series.iter().find(|s| s.label.contains("Titan")).unwrap();
        assert!(
            titan.y_ms.last().unwrap() < xeon.y_ms.last().unwrap(),
            "the paper's headline ordering must hold"
        );
    }
}
