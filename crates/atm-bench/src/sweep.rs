//! Aircraft-count sweeps over backend rosters.

use crate::harness::Harness;
use crate::series::Series;
use atm_core::backends::{Roster, RosterEntry};
use atm_core::{Airfield, AtmConfig, ScanMode};

/// Which task a sweep measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Task 1: tracking & correlation (one period's execution).
    Track,
    /// Tasks 2+3: collision detection & resolution (one execution).
    DetectResolve,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Aircraft counts to sweep.
    pub ns: Vec<usize>,
    /// Seed for the airfields (same fleet per point across platforms).
    pub seed: u64,
    /// Executions averaged per point.
    pub reps: usize,
    /// Conflict-scan implementation (wall-clock knob only — results and
    /// modeled times are identical either way, see DESIGN.md).
    pub scan: ScanMode,
    /// Geographic shard grid side (wall-clock knob only, like `scan` —
    /// see DESIGN.md §9). `1` is the unsharded pipeline.
    pub shards: usize,
}

impl SweepConfig {
    /// The default sweep domain (matches EXPERIMENTS.md).
    pub fn standard() -> Self {
        SweepConfig {
            ns: vec![500, 1_000, 2_000, 4_000, 8_000],
            seed: 2018,
            reps: 2,
            scan: ScanMode::default(),
            shards: 1,
        }
    }

    /// A fast domain for smoke runs (`figures --quick`).
    pub fn quick() -> Self {
        SweepConfig {
            ns: vec![500, 1_000, 2_000],
            seed: 2018,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        }
    }

    /// The [`AtmConfig`] every point of this sweep runs under.
    pub fn atm_config(&self) -> AtmConfig {
        AtmConfig {
            scan: self.scan,
            shards: self.shards,
            ..AtmConfig::with_seed(self.seed)
        }
    }
}

/// Measure one platform at one aircraft count: mean task time in ms.
///
/// Each rep uses a fresh backend instantiated from the roster entry
/// (device clocks and jitter sequences must not leak between points) and
/// an airfield advanced `rep` periods past the seed state, so averaging
/// covers more than one radar picture; Task 1 measures a single period's
/// tracking against a fresh radar picture, Tasks 2+3 a single
/// detection/resolution execution, matching how the paper reports
/// per-task times (averaged per execution).
pub fn measure_point(entry: &RosterEntry, task: Task, n: usize, seed: u64, reps: usize) -> f64 {
    measure_point_scan(entry, task, n, seed, reps, ScanMode::default())
}

/// [`measure_point`] with an explicit conflict-[`ScanMode`].
pub fn measure_point_scan(
    entry: &RosterEntry,
    task: Task,
    n: usize,
    seed: u64,
    reps: usize,
    scan: ScanMode,
) -> f64 {
    measure_point_sharded(entry, task, n, seed, reps, scan, 1)
}

/// [`measure_point_scan`] with an explicit shard grid side
/// ([`AtmConfig::shards`]). Like the scan mode, sharding is a wall-clock
/// knob only: every backend's results and modeled times are bit-identical
/// at any shard count.
pub fn measure_point_sharded(
    entry: &RosterEntry,
    task: Task,
    n: usize,
    seed: u64,
    reps: usize,
    scan: ScanMode,
    shards: usize,
) -> f64 {
    let mut total_ms = 0.0;
    // One shared baseline advanced incrementally: rep `r` measures against
    // the seed field after `r` periods of drift. (Replaying `r` periods
    // from scratch per rep — as earlier revisions did — is O(reps²) in
    // `end_period` calls for the identical per-rep field state.)
    let mut baseline = Airfield::new(
        n,
        AtmConfig {
            scan,
            shards,
            ..AtmConfig::with_seed(seed)
        },
    );
    let cfg = baseline.config().clone();
    for rep in 0..reps.max(1) {
        if rep > 0 {
            baseline.end_period();
        }
        let mut backend = entry.instantiate();
        let mut field = baseline.clone();
        let d = match task {
            Task::Track => {
                let mut radars = field.generate_radar();
                backend.track_correlate(&mut field.aircraft, &mut radars, &cfg)
            }
            Task::DetectResolve => backend.detect_resolve(&mut field.aircraft, &cfg),
        };
        total_ms += d.as_millis_f64();
    }
    total_ms / reps.max(1) as f64
}

/// Sweep a roster of platforms over the configured aircraft counts,
/// serially on the calling thread.
pub fn sweep_roster(roster: &Roster, task: Task, cfg: &SweepConfig) -> Vec<Series> {
    sweep_roster_on(roster, task, cfg, &Harness::serial())
}

/// The order sweep points are claimed in: largest aircraft count first
/// (stable by point index within equal counts).
///
/// Sweep cost grows superlinearly in `n`, so FIFO claiming tail-serialises:
/// the largest points sit at the end of every platform's stripe and the
/// last worker to claim one runs it alone while the rest idle. Claiming
/// by descending `n` approximates LPT scheduling — the heavy points start
/// first and the cheap ones pack around them. Purely a wall-clock choice:
/// results are slotted by point index either way.
pub(crate) fn claim_order(entry_count: usize, ns: &[usize]) -> Vec<usize> {
    let per_entry = ns.len();
    let mut order: Vec<usize> = (0..entry_count * per_entry).collect();
    order.sort_by(|&a, &b| ns[b % per_entry].cmp(&ns[a % per_entry]).then(a.cmp(&b)));
    order
}

/// Sweep a roster of platforms over the configured aircraft counts,
/// fanning every `(platform, n)` point across the harness's workers
/// (largest `n` first — see [`claim_order`]).
///
/// Every point is independent (fresh backend and airfield per point), and
/// the harness slots results by index, so the returned series are
/// identical — element for element — to the serial sweep's.
pub fn sweep_roster_on(
    roster: &Roster,
    task: Task,
    cfg: &SweepConfig,
    harness: &Harness,
) -> Vec<Series> {
    sweep_roster_streamed(roster, task, cfg, harness, |_, _, _| {})
}

/// [`sweep_roster_on`] with a point observer: `on_point(entry, point, y_ms)`
/// fires the moment each `(platform, n)` measurement completes — entry is
/// the roster index, point the position in `cfg.ns` — so a streaming writer
/// can emit partial tables/JSON while the sweep is still running.
///
/// Points arrive in completion order (the largest-`n`-first claim order
/// serially, an interleaving of it in parallel); the observer is never
/// called concurrently with itself. The returned series are identical to
/// [`sweep_roster_on`]'s — streaming is output plumbing, not a result
/// change.
pub fn sweep_roster_streamed(
    roster: &Roster,
    task: Task,
    cfg: &SweepConfig,
    harness: &Harness,
    mut on_point: impl FnMut(usize, usize, f64) + Send,
) -> Vec<Series> {
    let entries = roster.entries();
    let per_entry = cfg.ns.len();
    let order = claim_order(entries.len(), &cfg.ns);
    let y = harness.run_ordered_observed(
        entries.len() * per_entry,
        &order,
        |k| {
            let entry = &entries[k / per_entry];
            let n = cfg.ns[k % per_entry];
            measure_point_sharded(entry, task, n, cfg.seed, cfg.reps, cfg.scan, cfg.shards)
        },
        |k, &y_ms| on_point(k / per_entry, k % per_entry, y_ms),
    );
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| Series {
            label: entry.label.to_owned(),
            x: cfg.ns.iter().map(|&n| n as f64).collect(),
            y_ms: y[i * per_entry..(i + 1) * per_entry].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::backends::PlatformId;

    fn titan() -> RosterEntry {
        *Roster::paper()
            .get(PlatformId::TitanXPascal)
            .expect("titan in paper roster")
    }

    #[test]
    fn rosters_have_the_papers_platforms() {
        let all = Roster::paper();
        assert_eq!(all.len(), 6);
        assert_eq!(all.entries()[0].label, "STARAN AP");
        let nv = Roster::nvidia();
        assert_eq!(nv.len(), 3);
        assert!(nv.entries().iter().all(|e| {
            e.label.contains("GeForce") || e.label.contains("GTX") || e.label.contains("Titan")
        }));
    }

    #[test]
    fn measured_points_are_positive_and_deterministic_for_modeled_backends() {
        let titan = titan();
        let a = measure_point(&titan, Task::Track, 400, 1, 1);
        let b = measure_point(&titan, Task::Track, 400, 1, 1);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_produces_one_series_per_roster_entry() {
        let cfg = SweepConfig {
            ns: vec![200, 400],
            seed: 3,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let series = sweep_roster(&Roster::nvidia(), Task::DetectResolve, &cfg);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.x, vec![200.0, 400.0]);
            assert_eq!(s.y_ms.len(), 2);
            assert!(s.y_ms.iter().all(|&y| y > 0.0));
        }
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial_sweep() {
        let cfg = SweepConfig {
            ns: vec![200, 400, 600],
            seed: 3,
            reps: 2,
            scan: ScanMode::default(),
            shards: 1,
        };
        let serial = sweep_roster(&Roster::paper(), Task::DetectResolve, &cfg);
        let parallel = sweep_roster_on(
            &Roster::paper(),
            Task::DetectResolve,
            &cfg,
            &Harness::new(4),
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.x, p.x);
            assert_eq!(s.y_ms, p.y_ms, "series {} diverged", s.label);
        }
    }

    #[test]
    fn scan_mode_does_not_change_measured_times() {
        let titan = titan();
        for task in [Task::Track, Task::DetectResolve] {
            let naive = measure_point_scan(&titan, task, 500, 7, 2, ScanMode::Naive);
            for scan in [ScanMode::Banded, ScanMode::Grid, ScanMode::Incremental] {
                let fast = measure_point_scan(&titan, task, 500, 7, 2, scan);
                assert_eq!(naive, fast, "task {task:?}, scan {scan:?}");
            }
        }
    }

    #[test]
    fn shard_count_does_not_change_measured_times() {
        let titan = titan();
        for task in [Task::Track, Task::DetectResolve] {
            let one = measure_point_sharded(&titan, task, 500, 7, 2, ScanMode::default(), 1);
            for shards in [2usize, 4] {
                let sharded =
                    measure_point_sharded(&titan, task, 500, 7, 2, ScanMode::default(), shards);
                assert_eq!(one, sharded, "task {task:?}, shards {shards}");
            }
        }
    }

    #[test]
    fn streamed_sweep_reports_every_point_and_matches_materialized() {
        let cfg = SweepConfig {
            ns: vec![200, 400],
            seed: 3,
            reps: 1,
            scan: ScanMode::default(),
            shards: 1,
        };
        let baseline = sweep_roster(&Roster::nvidia(), Task::DetectResolve, &cfg);
        for jobs in [1, 4] {
            let mut points: Vec<(usize, usize, f64)> = Vec::new();
            let series = sweep_roster_streamed(
                &Roster::nvidia(),
                Task::DetectResolve,
                &cfg,
                &Harness::new(jobs),
                |entry, point, y| points.push((entry, point, y)),
            );
            assert_eq!(series, baseline, "jobs={jobs}");
            for &(e, p, y) in &points {
                assert_eq!(y, baseline[e].y_ms[p], "jobs={jobs}");
            }
            let mut keys: Vec<(usize, usize)> = points.iter().map(|&(e, p, _)| (e, p)).collect();
            keys.sort_unstable();
            let expected: Vec<(usize, usize)> =
                (0..3).flat_map(|e| (0..2).map(move |p| (e, p))).collect();
            assert_eq!(keys, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_points_are_claimed_largest_n_first() {
        // 2 platforms × ns [500, 1000, 2000] → point k maps to
        // n = ns[k % 3]; descending n with stable index tiebreak.
        let order = claim_order(2, &[500, 1_000, 2_000]);
        assert_eq!(order, vec![2, 5, 1, 4, 0, 3]);
        // Equal counts degrade to plain FIFO.
        assert_eq!(claim_order(2, &[7, 7]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_rep_mean_is_the_mean_over_advanced_fields() {
        // The warm-up rewrite must still give rep r the field advanced r
        // periods: the 2-rep mean equals the hand-computed mean of the seed
        // field and the once-advanced field, each on a fresh backend.
        let titan = titan();
        let two = measure_point(&titan, Task::DetectResolve, 300, 11, 2);

        let mut baseline = Airfield::new(300, AtmConfig::with_seed(11));
        let cfg = baseline.config().clone();
        let mut rep0 = baseline.clone();
        let d0 = titan.instantiate().detect_resolve(&mut rep0.aircraft, &cfg);
        baseline.end_period();
        let d1 = titan
            .instantiate()
            .detect_resolve(&mut baseline.aircraft, &cfg);
        let expected = (d0.as_millis_f64() + d1.as_millis_f64()) / 2.0;
        assert_eq!(two, expected);
    }

    #[test]
    fn times_increase_with_fleet_size() {
        let titan = titan();
        let small = measure_point(&titan, Task::DetectResolve, 200, 4, 1);
        let large = measure_point(&titan, Task::DetectResolve, 1_000, 4, 1);
        assert!(large > small, "{small} !< {large}");
    }
}
