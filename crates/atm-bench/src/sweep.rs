//! Aircraft-count sweeps over backend rosters.

use crate::series::Series;
use atm_core::backends::{ApBackend, AtmBackend, GpuBackend, XeonModelBackend};
use atm_core::{Airfield, AtmConfig};

/// Which task a sweep measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Task 1: tracking & correlation (one period's execution).
    Track,
    /// Tasks 2+3: collision detection & resolution (one execution).
    DetectResolve,
}

/// A named backend constructor, so sweeps get a *fresh* device per point
/// (device clocks and jitter sequences must not leak between points).
pub struct BackendFactory {
    /// Legend label.
    pub label: &'static str,
    /// Constructor.
    pub make: fn() -> Box<dyn AtmBackend>,
    /// Peak arithmetic throughput proxy in GFLOP/s (lanes × clock × 2),
    /// used by the §7.2 throughput-normalization experiment.
    pub peak_gflops: f64,
}

/// The paper's six-platform roster (Figs. 4 and 6).
pub fn paper_factories() -> Vec<BackendFactory> {
    vec![
        // STARAN: 8192 bit-serial PEs at ~7 MHz ≈ 8192×7e6/32 word ops/s.
        BackendFactory {
            label: "STARAN AP",
            make: || Box::new(ApBackend::staran()),
            peak_gflops: 8_192.0 * 7.0e6 / 32.0 / 1.0e9,
        },
        // CSX600: 2 × 96 PEs × 250 MHz, ~1 FLOP/cycle/PE.
        BackendFactory {
            label: "ClearSpeed CSX600",
            make: || Box::new(ApBackend::clearspeed()),
            peak_gflops: 192.0 * 0.25,
        },
        // Xeon: 16 cores × 3 GHz × 8-wide SIMD FMA ≈ 768 GFLOP/s.
        BackendFactory {
            label: "Intel Xeon 16-core",
            make: || Box::new(XeonModelBackend::new()),
            peak_gflops: 768.0,
        },
        // GPUs: cores × clock × 2 (FMA).
        BackendFactory {
            label: "GeForce 9800 GT",
            make: || Box::new(GpuBackend::geforce_9800_gt()),
            peak_gflops: 112.0 * 1.5 * 2.0,
        },
        BackendFactory {
            label: "GTX 880M",
            make: || Box::new(GpuBackend::gtx_880m()),
            peak_gflops: 1_536.0 * 0.954 * 2.0,
        },
        BackendFactory {
            label: "Titan X (Pascal)",
            make: || Box::new(GpuBackend::titan_x_pascal()),
            peak_gflops: 3_584.0 * 1.417 * 2.0,
        },
    ]
}

/// The NVIDIA-only roster (Figs. 5 and 7).
pub fn nvidia_factories() -> Vec<BackendFactory> {
    paper_factories().into_iter().skip(3).collect()
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Aircraft counts to sweep.
    pub ns: Vec<usize>,
    /// Seed for the airfields (same fleet per point across platforms).
    pub seed: u64,
    /// Executions averaged per point.
    pub reps: usize,
}

impl SweepConfig {
    /// The default sweep domain (matches EXPERIMENTS.md).
    pub fn standard() -> Self {
        SweepConfig { ns: vec![500, 1_000, 2_000, 4_000, 8_000], seed: 2018, reps: 2 }
    }

    /// A fast domain for smoke runs (`figures --quick`).
    pub fn quick() -> Self {
        SweepConfig { ns: vec![500, 1_000, 2_000], seed: 2018, reps: 1 }
    }
}

/// Measure one platform at one aircraft count: mean task time in ms.
///
/// Each rep uses a fresh airfield (same seed — identical fleet) and a
/// fresh backend; Task 1 measures a single period's tracking against a
/// fresh radar picture, Tasks 2+3 a single detection/resolution execution,
/// matching how the paper reports per-task times (averaged per execution).
pub fn measure_point(
    factory: &BackendFactory,
    task: Task,
    n: usize,
    seed: u64,
    reps: usize,
) -> f64 {
    let mut total_ms = 0.0;
    for rep in 0..reps.max(1) {
        let mut backend = (factory.make)();
        let mut field = Airfield::new(n, AtmConfig::with_seed(seed));
        let cfg = field.config().clone();
        // Let later reps see a slightly advanced field (rep periods of
        // drift) so averaging covers more than one radar picture.
        for _ in 0..rep {
            field.end_period();
        }
        let d = match task {
            Task::Track => {
                let mut radars = field.generate_radar();
                backend.track_correlate(&mut field.aircraft, &mut radars, &cfg)
            }
            Task::DetectResolve => backend.detect_resolve(&mut field.aircraft, &cfg),
        };
        total_ms += d.as_millis_f64();
    }
    total_ms / reps.max(1) as f64
}

/// Sweep a roster of platforms over the configured aircraft counts.
pub fn sweep_roster(
    factories: &[BackendFactory],
    task: Task,
    cfg: &SweepConfig,
) -> Vec<Series> {
    factories
        .iter()
        .map(|factory| {
            let x: Vec<f64> = cfg.ns.iter().map(|&n| n as f64).collect();
            let y_ms: Vec<f64> = cfg
                .ns
                .iter()
                .map(|&n| measure_point(factory, task, n, cfg.seed, cfg.reps))
                .collect();
            Series { label: factory.label.to_owned(), x, y_ms }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_have_the_papers_platforms() {
        let all = paper_factories();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].label, "STARAN AP");
        let nv = nvidia_factories();
        assert_eq!(nv.len(), 3);
        assert!(nv.iter().all(|f| {
            f.label.contains("GeForce") || f.label.contains("GTX") || f.label.contains("Titan")
        }));
    }

    #[test]
    fn measured_points_are_positive_and_deterministic_for_modeled_backends() {
        let titan = &nvidia_factories()[2];
        let a = measure_point(titan, Task::Track, 400, 1, 1);
        let b = measure_point(titan, Task::Track, 400, 1, 1);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_produces_one_series_per_factory() {
        let cfg = SweepConfig { ns: vec![200, 400], seed: 3, reps: 1 };
        let series = sweep_roster(&nvidia_factories(), Task::DetectResolve, &cfg);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.x, vec![200.0, 400.0]);
            assert_eq!(s.y_ms.len(), 2);
            assert!(s.y_ms.iter().all(|&y| y > 0.0));
        }
    }

    #[test]
    fn times_increase_with_fleet_size() {
        let titan = &nvidia_factories()[2];
        let small = measure_point(titan, Task::DetectResolve, 200, 4, 1);
        let large = measure_point(titan, Task::DetectResolve, 1_000, 4, 1);
        assert!(large > small, "{small} !< {large}");
    }
}
