//! Aircraft-count sweeps over backend rosters.

use crate::series::Series;
use atm_core::backends::{Roster, RosterEntry};
use atm_core::{Airfield, AtmConfig};

/// Which task a sweep measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Task 1: tracking & correlation (one period's execution).
    Track,
    /// Tasks 2+3: collision detection & resolution (one execution).
    DetectResolve,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Aircraft counts to sweep.
    pub ns: Vec<usize>,
    /// Seed for the airfields (same fleet per point across platforms).
    pub seed: u64,
    /// Executions averaged per point.
    pub reps: usize,
}

impl SweepConfig {
    /// The default sweep domain (matches EXPERIMENTS.md).
    pub fn standard() -> Self {
        SweepConfig {
            ns: vec![500, 1_000, 2_000, 4_000, 8_000],
            seed: 2018,
            reps: 2,
        }
    }

    /// A fast domain for smoke runs (`figures --quick`).
    pub fn quick() -> Self {
        SweepConfig {
            ns: vec![500, 1_000, 2_000],
            seed: 2018,
            reps: 1,
        }
    }
}

/// Measure one platform at one aircraft count: mean task time in ms.
///
/// Each rep uses a fresh airfield (same seed — identical fleet) and a
/// fresh backend instantiated from the roster entry (device clocks and
/// jitter sequences must not leak between points); Task 1 measures a
/// single period's tracking against a fresh radar picture, Tasks 2+3 a
/// single detection/resolution execution, matching how the paper reports
/// per-task times (averaged per execution).
pub fn measure_point(entry: &RosterEntry, task: Task, n: usize, seed: u64, reps: usize) -> f64 {
    let mut total_ms = 0.0;
    for rep in 0..reps.max(1) {
        let mut backend = entry.instantiate();
        let mut field = Airfield::new(n, AtmConfig::with_seed(seed));
        let cfg = field.config().clone();
        // Let later reps see a slightly advanced field (rep periods of
        // drift) so averaging covers more than one radar picture.
        for _ in 0..rep {
            field.end_period();
        }
        let d = match task {
            Task::Track => {
                let mut radars = field.generate_radar();
                backend.track_correlate(&mut field.aircraft, &mut radars, &cfg)
            }
            Task::DetectResolve => backend.detect_resolve(&mut field.aircraft, &cfg),
        };
        total_ms += d.as_millis_f64();
    }
    total_ms / reps.max(1) as f64
}

/// Sweep a roster of platforms over the configured aircraft counts.
pub fn sweep_roster(roster: &Roster, task: Task, cfg: &SweepConfig) -> Vec<Series> {
    roster
        .entries()
        .iter()
        .map(|entry| {
            let x: Vec<f64> = cfg.ns.iter().map(|&n| n as f64).collect();
            let y_ms: Vec<f64> = cfg
                .ns
                .iter()
                .map(|&n| measure_point(entry, task, n, cfg.seed, cfg.reps))
                .collect();
            Series {
                label: entry.label.to_owned(),
                x,
                y_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::backends::PlatformId;

    fn titan() -> RosterEntry {
        *Roster::paper()
            .get(PlatformId::TitanXPascal)
            .expect("titan in paper roster")
    }

    #[test]
    fn rosters_have_the_papers_platforms() {
        let all = Roster::paper();
        assert_eq!(all.len(), 6);
        assert_eq!(all.entries()[0].label, "STARAN AP");
        let nv = Roster::nvidia();
        assert_eq!(nv.len(), 3);
        assert!(nv.entries().iter().all(|e| {
            e.label.contains("GeForce") || e.label.contains("GTX") || e.label.contains("Titan")
        }));
    }

    #[test]
    fn measured_points_are_positive_and_deterministic_for_modeled_backends() {
        let titan = titan();
        let a = measure_point(&titan, Task::Track, 400, 1, 1);
        let b = measure_point(&titan, Task::Track, 400, 1, 1);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_produces_one_series_per_roster_entry() {
        let cfg = SweepConfig {
            ns: vec![200, 400],
            seed: 3,
            reps: 1,
        };
        let series = sweep_roster(&Roster::nvidia(), Task::DetectResolve, &cfg);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.x, vec![200.0, 400.0]);
            assert_eq!(s.y_ms.len(), 2);
            assert!(s.y_ms.iter().all(|&y| y > 0.0));
        }
    }

    #[test]
    fn times_increase_with_fleet_size() {
        let titan = titan();
        let small = measure_point(&titan, Task::DetectResolve, 200, 4, 1);
        let large = measure_point(&titan, Task::DetectResolve, 1_000, 4, 1);
        assert!(large > small, "{small} !< {large}");
    }
}
