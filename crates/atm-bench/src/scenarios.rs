//! Scenario-corpus sweeps: every catalog traffic shape across the paper's
//! platform roster, the full scan-mode × shard matrix, and the cyclic
//! executive's deadline accounting.
//!
//! One [`scenario_figure`] call produces a byte-stable artifact per
//! scenario (`scn-<slug>.json`): the modeled Tasks 2+3 series of each
//! paper platform over the aircraft sweep — with every point verified
//! bit-identical across {naive, banded, grid, incremental} × the shard
//! grids — plus deadline-miss series for the fastest NVIDIA device and the
//! multi-core Xeon, scan-invariance of those miss counts, conflict-volume
//! notes, and the miss-onset fleet size. [`scenario_metrics`] captures one
//! recorded major cycle (`scn-<slug>-metrics.json`). All inputs are
//! deterministically modeled, so both artifacts are byte-identical run to
//! run and across `--jobs`.

use crate::harness::Harness;
use crate::series::{FigureData, Series};
use atm_core::backends::{GpuBackend, PlatformId, Roster};
use atm_core::{fleet_hash, AtmConfig, AtmSimulation, ScanMode, Scenario};
use sim_clock::NullSink;
use telemetry::Recorder;

/// All four scan modes, in the order the matrix is verified.
const SCANS: [ScanMode; 4] = [
    ScanMode::Naive,
    ScanMode::Banded,
    ScanMode::Grid,
    ScanMode::Incremental,
];

/// Scenario-sweep parameters.
#[derive(Clone, Debug)]
pub struct ScenarioSweepConfig {
    /// Aircraft counts for the per-platform modeled series.
    pub ns: Vec<usize>,
    /// Fleet seed (same fleet per point across platforms and combos).
    pub seed: u64,
    /// Shard grid sides verified at every point (DESIGN.md §9).
    pub shard_grids: Vec<usize>,
    /// Aircraft counts for the deadline-miss ladder (full major cycles on
    /// the functional simulator — kept moderate on purpose).
    pub deadline_ns: Vec<usize>,
    /// Fleet size for the telemetry-metrics capture.
    pub metrics_n: usize,
}

impl ScenarioSweepConfig {
    /// The default scenario sweep (matches EXPERIMENTS.md).
    pub fn standard() -> Self {
        ScenarioSweepConfig {
            ns: vec![400, 800, 1_600],
            seed: 2018,
            shard_grids: vec![1, 4],
            deadline_ns: vec![1_000, 2_000, 4_000],
            metrics_n: 400,
        }
    }

    /// A fast domain for smoke runs (`figures --scenario ... --quick`).
    pub fn quick() -> Self {
        ScenarioSweepConfig {
            ns: vec![200, 400],
            seed: 2018,
            shard_grids: vec![1, 4],
            deadline_ns: vec![400],
            metrics_n: 200,
        }
    }

    /// The tiny domain the committed golden fixtures pin down.
    pub fn golden() -> Self {
        ScenarioSweepConfig {
            ns: vec![120, 240],
            seed: 2018,
            shard_grids: vec![1, 4],
            deadline_ns: vec![240],
            metrics_n: 120,
        }
    }
}

/// One platform's point: the modeled Tasks 2+3 time, already verified
/// bit-identical (duration and mutated fleet) across the scan × shard
/// matrix.
fn matrix_point(
    entry: &atm_core::backends::RosterEntry,
    scn: &Scenario,
    n: usize,
    sw: &ScenarioSweepConfig,
) -> f64 {
    let fleet = scn.fleet(n, sw.seed);
    let mut reference: Option<(f64, u64)> = None;
    for scan in SCANS {
        for &shards in &sw.shard_grids {
            let cfg = scn.apply(AtmConfig {
                scan,
                shards,
                ..AtmConfig::with_seed(sw.seed)
            });
            let mut backend = entry.instantiate();
            let mut mutated = fleet.clone();
            let d = backend.detect_resolve(&mut mutated, &cfg).as_millis_f64();
            let h = fleet_hash(&mutated);
            match reference {
                None => reference = Some((d, h)),
                Some(r) => assert_eq!(
                    r,
                    (d, h),
                    "{} on {}: scan {scan:?} × shards {shards} diverged at n={n}",
                    scn.slug(),
                    entry.label
                ),
            }
        }
    }
    reference.expect("matrix is never empty").0
}

/// Deadline misses for one full major cycle of `platform` over the
/// scenario airfield, checked identical between the Grid and Incremental
/// scans (misses depend only on modeled time, which the scan must not
/// move).
fn deadline_point(platform: PlatformId, scn: &Scenario, n: usize, seed: u64) -> u64 {
    let run = |scan: ScanMode| {
        let entry = *Roster::paper().get(platform).expect("platform in roster");
        let base = AtmConfig {
            scan,
            ..AtmConfig::with_seed(seed)
        };
        let field = scn.airfield_with(n, &base);
        let mut sim = AtmSimulation::new(field, entry.instantiate());
        sim.run(1).report.total_misses()
    };
    let grid = run(ScanMode::Grid);
    let incremental = run(ScanMode::Incremental);
    assert_eq!(
        grid,
        incremental,
        "{}: deadline misses moved with the scan mode at n={n}",
        scn.slug()
    );
    grid
}

/// The platforms the deadline ladder charts: the paper's headline pair —
/// the device that never misses and the one that "regularly missed a
/// large number".
const DEADLINE_PLATFORMS: [PlatformId; 2] = [PlatformId::TitanXPascal, PlatformId::XeonMulticore];

/// Sweep one scenario: per-platform modeled series (each point verified
/// across the scan × shard matrix), deadline-miss series, conflict volume
/// and miss onset. Points fan across the harness and are slotted by
/// index, so the figure is byte-identical at any `--jobs`.
pub fn scenario_figure(scn: &Scenario, sw: &ScenarioSweepConfig, harness: &Harness) -> FigureData {
    let mut fig = FigureData::new(
        &format!("scn-{}", scn.slug()),
        &format!("{} — {}", scn.name(), scn.description()),
    );
    fig.y_label = "modeled Tasks 2+3 time (ms)".to_owned();

    let roster = Roster::paper();
    let entries = roster.entries();
    let per_entry = sw.ns.len();
    let y = harness.run(entries.len() * per_entry, |k| {
        matrix_point(&entries[k / per_entry], scn, sw.ns[k % per_entry], sw)
    });
    for (i, entry) in entries.iter().enumerate() {
        fig.series.push(Series {
            label: entry.label.to_owned(),
            x: sw.ns.iter().map(|&n| n as f64).collect(),
            y_ms: y[i * per_entry..(i + 1) * per_entry].to_vec(),
        });
    }
    fig.notes.push(format!(
        "every point verified bit-identical across {} scan modes x shards {:?}",
        SCANS.len(),
        sw.shard_grids
    ));

    // Deadline ladder: misses per major cycle, scan-invariance asserted
    // inside every point. Fan (platform, n) pairs like the series points.
    let per_platform = sw.deadline_ns.len();
    let misses = harness.run(DEADLINE_PLATFORMS.len() * per_platform, |k| {
        deadline_point(
            DEADLINE_PLATFORMS[k / per_platform],
            scn,
            sw.deadline_ns[k % per_platform],
            sw.seed,
        )
    });
    for (i, platform) in DEADLINE_PLATFORMS.iter().enumerate() {
        let entry = *roster.get(*platform).expect("platform in roster");
        let slice = &misses[i * per_platform..(i + 1) * per_platform];
        fig.series.push(Series {
            label: format!("deadline misses — {}", entry.label),
            x: sw.deadline_ns.iter().map(|&n| n as f64).collect(),
            y_ms: slice.iter().map(|&m| m as f64).collect(),
        });
        match sw.deadline_ns.iter().zip(slice).find(|(_, &m)| m > 0) {
            Some((&n, &m)) => fig.notes.push(format!(
                "miss onset ({}): n={n} ({m} misses per major cycle)",
                entry.label
            )),
            None => fig.notes.push(format!(
                "miss onset ({}): none within the sweep",
                entry.label
            )),
        }
    }
    fig.notes
        .push("deadline misses identical between Grid and Incremental scans".to_owned());

    // Conflict volume at the largest sweep size (scan-independent).
    if let Some(&n) = sw.ns.last() {
        let cfg = scn.config(sw.seed);
        let mut fleet = scn.fleet(n, sw.seed);
        let stats = atm_core::detect::detect_resolve_all(&mut fleet, &cfg, &mut NullSink);
        fig.notes.push(format!(
            "conflicts at n={n}: {} critical ({} resolved, {} unresolved), {} pair checks",
            stats.critical_conflicts, stats.resolved, stats.unresolved, stats.pair_checks
        ));
    }
    fig
}

/// One recorded major cycle of the scenario on the Titan X: the telemetry
/// metrics snapshot (`scn-<slug>-metrics.json`). Deterministically
/// modeled, so byte-identical for a given `(n, seed)`.
pub fn scenario_metrics(scn: &Scenario, n: usize, seed: u64) -> String {
    let recorder = Recorder::enabled();
    let field = scn.airfield_with(n, &AtmConfig::with_seed(seed));
    let mut sim = AtmSimulation::new(field, Box::new(GpuBackend::titan_x_pascal()));
    sim.set_recorder(recorder.clone());
    sim.run(1);
    recorder.metrics_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::ScenarioKind;

    #[test]
    fn scenario_figure_has_platform_and_deadline_series() {
        let scn = Scenario::new(ScenarioKind::CrossingFlows);
        let fig = scenario_figure(&scn, &ScenarioSweepConfig::golden(), &Harness::serial());
        assert_eq!(fig.id, "scn-crossing");
        // Six paper platforms + two deadline series.
        assert_eq!(fig.series.len(), 8);
        assert!(fig.series[..6]
            .iter()
            .all(|s| s.y_ms.iter().all(|&y| y > 0.0)));
        assert!(fig
            .series
            .iter()
            .any(|s| s.label.starts_with("deadline misses — Titan")));
        assert!(fig.notes.iter().any(|n| n.contains("bit-identical")));
        assert!(fig.notes.iter().any(|n| n.contains("miss onset")));
        assert!(fig.notes.iter().any(|n| n.contains("conflicts at n=240")));
    }

    #[test]
    fn scenario_figure_is_jobs_invariant() {
        let scn = Scenario::new(ScenarioKind::HotspotSurge);
        let sw = ScenarioSweepConfig::golden();
        let serial = scenario_figure(&scn, &sw, &Harness::serial());
        let parallel = scenario_figure(&scn, &sw, &Harness::new(4));
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn scenario_metrics_are_deterministic() {
        let scn = Scenario::new(ScenarioKind::HoldingStacks);
        let a = scenario_metrics(&scn, 100, 7);
        let b = scenario_metrics(&scn, 100, 7);
        assert_eq!(a, b);
        assert!(a.contains("rt.periods"), "{a}");
    }
}
