//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run --release -p atm-bench --bin figures -- --all
//! cargo run --release -p atm-bench --bin figures -- --fig 4 --fig 8
//! cargo run --release -p atm-bench --bin figures -- --exp deadlines --quick
//! ```
//!
//! Tables print to stdout; JSON series land in `results/` (override with
//! `--out DIR`). `--quick` shrinks the sweep for smoke runs.
//!
//! `--exp measured` renders the measured-vs-modeled side-by-side: the
//! deterministic `TimingKind::Measured` substrates under real host
//! wall-clock next to two modeled references. Because its y-values vary
//! run to run, it is *not* included in `--all` — every `--all` artifact
//! is byte-diffed across the CI knob matrix.
//!
//! `--jobs N` fans the independent sweep/experiment points across N worker
//! threads (default: the host's available parallelism; `--jobs 1` forces
//! the serial code path). `--scan naive|banded|grid|incremental` selects
//! the conflict-scan implementation. Neither knob changes any output byte:
//! results are slotted in serial order and every scan books identical
//! modeled costs — only wall-clock time differs. CI diffs the artifacts
//! across the knob matrix.
//!
//! `--stream` emits Figures 4–9 incrementally: table rows print and JSON
//! series land on disk as their sweep points complete, instead of after
//! the whole sweep. Another pure plumbing knob — the bytes written are
//! identical to the materialized path's, and CI diffs that too.
//!
//! `--scenario SLUG` (repeatable; `all` for the whole catalog) sweeps a
//! scenario-corpus traffic shape — crossing flows, holding stacks, shard
//! hotspots, … (see `atm_core::scenario`) — across the paper roster with
//! every point verified bit-identical over the scan-mode × shard matrix,
//! plus deadline-miss ladders, writing `scn-<slug>.json` and
//! `scn-<slug>-metrics.json`. The matrix is iterated internally, so
//! `--scan`/`--shards` do not apply; `--quick` and `--jobs` do, and the
//! artifacts are byte-identical at any job count.
//!
//! `--trace PATH` and `--metrics PATH` additionally run one major cycle of
//! the full timed simulation on every paper platform with the telemetry
//! recorder attached, then write a Chrome `trace_event` file (load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>) and a metrics snapshot.
//! Every platform in the capture is deterministically modeled, so the same
//! seed produces byte-identical trace and metrics files on every run.

use atm_bench::ablations;
use atm_bench::experiments::{deadlines, determinism, measured_vs_modeled, throughput_normalized};
use atm_bench::figures::{figure, figure_streamed};
use atm_bench::harness::Harness;
use atm_bench::series::FigureData;
use atm_bench::sweep::SweepConfig;
use atm_core::backends::Roster;
use atm_core::{AtmSimulation, ScanMode};
use std::path::PathBuf;
use telemetry::{JsonValue, Recorder};

struct Options {
    figs: Vec<u32>,
    exps: Vec<String>,
    scenarios: Vec<String>,
    out: PathBuf,
    quick: bool,
    stream: bool,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    jobs: Option<usize>,
    scan: ScanMode,
    shards: usize,
}

/// The next argument, or a clean usage error naming the flag that needs it.
fn value_of(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs {what} (try --help)");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        figs: Vec::new(),
        exps: Vec::new(),
        scenarios: Vec::new(),
        out: PathBuf::from("results"),
        quick: false,
        stream: false,
        trace: None,
        metrics: None,
        jobs: None,
        scan: ScanMode::default(),
        shards: 1,
    };
    let mut args = std::env::args().skip(1);
    let mut any = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let v = value_of(&mut args, "--fig", "a number (4..=9)");
                opts.figs.push(v.parse().unwrap_or_else(|_| {
                    eprintln!("--fig needs a number (4..=9), got '{v}'");
                    std::process::exit(2);
                }));
                any = true;
            }
            "--exp" => {
                opts.exps.push(value_of(&mut args, "--exp", "a name"));
                any = true;
            }
            "--scenario" => {
                opts.scenarios
                    .push(value_of(&mut args, "--scenario", "a catalog slug or 'all'"));
                any = true;
            }
            "--all" => {
                opts.figs = vec![4, 5, 6, 7, 8, 9];
                opts.exps = vec![
                    "deadlines".into(),
                    "determinism".into(),
                    "ablations".into(),
                    "normalized".into(),
                ];
                any = true;
            }
            "--out" => opts.out = PathBuf::from(value_of(&mut args, "--out", "a directory")),
            "--trace" => {
                opts.trace = Some(PathBuf::from(value_of(&mut args, "--trace", "a path")));
            }
            "--metrics" => {
                opts.metrics = Some(PathBuf::from(value_of(&mut args, "--metrics", "a path")));
            }
            "--quick" => opts.quick = true,
            "--stream" => opts.stream = true,
            "--jobs" => {
                let v = value_of(&mut args, "--jobs", "a worker count (>= 1)");
                opts.jobs = Some(v.parse().ok().filter(|&j| j >= 1).unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count (>= 1), got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--scan" => {
                let v = value_of(
                    &mut args,
                    "--scan",
                    "'naive', 'banded', 'grid' or 'incremental'",
                );
                opts.scan = match v.as_str() {
                    "naive" => ScanMode::Naive,
                    "banded" => ScanMode::Banded,
                    "grid" => ScanMode::Grid,
                    "incremental" => ScanMode::Incremental,
                    other => {
                        eprintln!(
                            "--scan needs 'naive', 'banded', 'grid' or 'incremental', got '{other}'"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => {
                let v = value_of(&mut args, "--shards", "a shard grid side (1..=32)");
                opts.shards = v
                    .parse()
                    .ok()
                    .filter(|s| (1..=32).contains(s))
                    .unwrap_or_else(|| {
                        eprintln!("--shards needs a shard grid side (1..=32), got '{v}'");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--all] [--fig N]... \
                     [--exp deadlines|determinism|ablations|normalized|measured]... \
                     [--scenario SLUG|all]... \
                     [--quick] [--stream] [--jobs N] [--scan naive|banded|grid|incremental] \
                     [--shards N] \
                     [--out DIR] [--trace PATH] [--metrics PATH]\n\
                     (--exp measured emits host wall-clock and is not part of --all;\n\
                      --scenario sweeps the scan x shard matrix internally, so --scan and\n\
                      --shards do not apply to it — slugs: {})",
                    atm_core::Scenario::catalog()
                        .iter()
                        .map(atm_core::Scenario::slug)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !any {
        opts.figs = vec![4, 5, 6, 7, 8, 9];
        opts.exps = vec![
            "deadlines".into(),
            "determinism".into(),
            "ablations".into(),
            "normalized".into(),
        ];
    }
    opts
}

/// Write `content` to `path`, or exit with a clean error naming the path.
fn write_or_die(path: &std::path::Path, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
}

/// Stream one figure: table rows go to stdout and JSON series to
/// `OUT/figN.json` the moment their sweep points complete. Stdout and the
/// JSON file end up byte-identical to the materialized [`emit`] path.
fn stream_figure(f: u32, sweep: &SweepConfig, harness: &Harness, out: &PathBuf) {
    if !(4..=9).contains(&f) {
        eprintln!("no figure {f} in the paper (4..=9)");
        return;
    }
    std::fs::create_dir_all(out).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    });
    let path = out.join(format!("fig{f}.json"));
    let file = std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    let result = figure_streamed(
        f,
        sweep,
        harness,
        std::io::stdout(),
        std::io::BufWriter::new(file),
    );
    match result {
        Ok(_) => {
            println!();
            println!("  (series written to {})\n", path.display());
        }
        Err(e) => {
            eprintln!("cannot stream figure {f}: {e}");
            std::process::exit(1);
        }
    }
}

fn emit(fig: &FigureData, out: &PathBuf) {
    println!("{fig}");
    std::fs::create_dir_all(out).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    });
    let path = out.join(format!("{}.json", fig.id));
    write_or_die(&path, &fig.to_json());
    println!("  (series written to {})\n", path.display());
}

fn main() {
    let opts = parse_args();
    let harness = match opts.jobs {
        Some(jobs) => Harness::new(jobs),
        None => Harness::default_parallel(),
    };
    let sweep = SweepConfig {
        scan: opts.scan,
        shards: opts.shards,
        ..if opts.quick {
            SweepConfig::quick()
        } else {
            SweepConfig::standard()
        }
    };
    println!(
        "sweep: n = {:?}, seed = {}, reps = {} (jobs = {}, scan = {:?}, shards = {})\n",
        sweep.ns,
        sweep.seed,
        sweep.reps,
        harness.jobs(),
        sweep.scan,
        sweep.shards
    );

    for &f in &opts.figs {
        if opts.stream {
            stream_figure(f, &sweep, &harness, &opts.out);
            continue;
        }
        match figure(f, &sweep, &harness) {
            Some(fig) => emit(&fig, &opts.out),
            None => eprintln!("no figure {f} in the paper (4..=9)"),
        }
    }

    for exp in &opts.exps {
        match exp.as_str() {
            "deadlines" => {
                // The full functional simulation of a major cycle is the
                // cost driver; sweep a representative subset at full size
                // or everything when quick.
                let (cfg, subset): (SweepConfig, Option<&[&str]>) = if opts.quick {
                    (
                        SweepConfig {
                            ns: vec![500, 2_000],
                            ..sweep.clone()
                        },
                        None,
                    )
                } else {
                    (
                        SweepConfig {
                            ns: vec![1_000, 2_000, 4_000, 8_000, 16_000],
                            ..sweep.clone()
                        },
                        Some(&[
                            "Titan X (Pascal)",
                            "GeForce 9800 GT",
                            "STARAN AP",
                            "Intel Xeon 16-core",
                        ]),
                    )
                };
                let (rows, fig) = deadlines(&cfg, subset, &harness);
                emit(&fig, &opts.out);
                println!(
                    "{:<22} {:>8} {:>10} {:>10}",
                    "platform", "n", "misses", "skips"
                );
                for r in &rows {
                    for (i, &n) in r.n.iter().enumerate() {
                        println!(
                            "{:<22} {:>8} {:>10} {:>10}",
                            r.platform, n, r.misses[i], r.skips[i]
                        );
                    }
                }
                println!();
            }
            "determinism" => {
                let n = if opts.quick { 500 } else { 2_000 };
                let (rows, fig) = determinism(n, 2018, 5, opts.scan, &harness);
                emit(&fig, &opts.out);
                println!(
                    "{:<22} {:>10} {:>10}  task1 times (ms)",
                    "platform", "identical", "spread"
                );
                for r in &rows {
                    println!(
                        "{:<22} {:>10} {:>9.3}x  {:?}",
                        r.platform,
                        r.identical,
                        r.spread,
                        r.task1_ms
                            .iter()
                            .map(|t| (t * 1000.0).round() / 1000.0)
                            .collect::<Vec<_>>()
                    );
                }
                println!();
            }
            "normalized" => {
                let fig = throughput_normalized(&sweep, &harness);
                emit(&fig, &opts.out);
            }
            "measured" => {
                // Real host wall-clock next to the modeled references.
                // Deliberately NOT part of --all: measured series vary run
                // to run, and --all's artifacts are byte-diffed in CI.
                let fig = measured_vs_modeled(&sweep, &harness);
                emit(&fig, &opts.out);
            }
            "ablations" => {
                let n = if opts.quick { 400 } else { 2_000 };
                // Claim by measured stage walls when a previous bench run
                // left its artifact next to the figures (static estimates
                // otherwise); either way the output is identical.
                let bench_json = opts.out.join("BENCH_sweep.json");
                let list = ablations::all_measured(n, 2018, &harness, &bench_json);
                println!("== ablations (modeled, n={n}) ==\n");
                println!(
                    "{:<18} {:>12} {:>14} {:>9}",
                    "ablation", "paper (ms)", "alternative", "speedup"
                );
                for a in &list {
                    println!(
                        "{:<18} {:>12.4} {:>14.4} {:>8.2}x",
                        a.id,
                        a.paper_ms,
                        a.alternative_ms,
                        a.speedup()
                    );
                    for note in &a.notes {
                        println!("    {note}");
                    }
                }
                std::fs::create_dir_all(&opts.out).unwrap_or_else(|e| {
                    eprintln!("cannot create {}: {e}", opts.out.display());
                    std::process::exit(1);
                });
                let path = opts.out.join("ablations.json");
                let json = JsonValue::Arr(list.iter().map(|a| a.to_json_value()).collect());
                write_or_die(&path, &json.to_pretty());
                println!("\n  (written to {})\n", path.display());
            }
            other => eprintln!(
                "unknown experiment '{other}' \
                 (deadlines | determinism | ablations | normalized | measured)"
            ),
        }
    }

    if !opts.scenarios.is_empty() {
        run_scenarios(&opts, &harness);
    }

    if opts.trace.is_some() || opts.metrics.is_some() {
        capture_telemetry(&opts, sweep.seed);
    }
}

/// Sweep the requested catalog scenarios: each emits `scn-<slug>.json`
/// (platform series over the verified scan × shard matrix, deadline-miss
/// ladders, conflict notes) and `scn-<slug>-metrics.json` (one recorded
/// major cycle). Everything is deterministically modeled — artifacts are
/// byte-identical run to run and across `--jobs`.
fn run_scenarios(opts: &Options, harness: &Harness) {
    use atm_bench::scenarios::{scenario_figure, scenario_metrics, ScenarioSweepConfig};
    use atm_core::Scenario;

    let sw = if opts.quick {
        ScenarioSweepConfig::quick()
    } else {
        ScenarioSweepConfig::standard()
    };
    let mut scenarios: Vec<Scenario> = Vec::new();
    for req in &opts.scenarios {
        if req == "all" {
            scenarios.extend(Scenario::catalog());
        } else {
            match Scenario::by_slug(req) {
                Some(s) => scenarios.push(s),
                None => {
                    eprintln!(
                        "unknown scenario '{req}' (slugs: {}, or 'all')",
                        Scenario::catalog()
                            .iter()
                            .map(Scenario::slug)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    scenarios.dedup_by_key(|s| s.slug());

    println!(
        "scenario sweep: n = {:?}, deadline ladder = {:?}, seed = {}, shards = {:?}\n",
        sw.ns, sw.deadline_ns, sw.seed, sw.shard_grids
    );
    for scn in &scenarios {
        let fig = scenario_figure(scn, &sw, harness);
        emit(&fig, &opts.out);
        let metrics = scenario_metrics(scn, sw.metrics_n, sw.seed);
        let path = opts.out.join(format!("scn-{}-metrics.json", scn.slug()));
        write_or_die(&path, &metrics);
        println!("  (metrics written to {})\n", path.display());
    }
}

/// One major cycle of the full timed simulation on every paper platform,
/// recorded onto a single telemetry recorder. Each substrate lands on its
/// own trace track: the cyclic executive on `rt-sched`, each simulated GPU
/// on `gpu: <device>`, each associative machine on `ap: <machine>`. All
/// captured platforms are deterministically modeled, so the output is
/// byte-identical for a given seed.
fn capture_telemetry(opts: &Options, seed: u64) {
    let recorder = Recorder::enabled();
    let n = if opts.quick { 300 } else { 1_000 };
    for entry in Roster::paper().entries() {
        let mut sim = AtmSimulation::with_field(n, seed, entry.instantiate());
        sim.set_recorder(recorder.clone());
        sim.run(1);
    }
    println!(
        "telemetry capture: {} spans over one major cycle per platform (n={n}, seed={seed})",
        recorder.span_count()
    );
    if let Some(path) = &opts.trace {
        write_or_die(path, &recorder.chrome_trace());
        println!("  (Chrome trace written to {})", path.display());
    }
    if let Some(path) = &opts.metrics {
        write_or_die(path, &recorder.metrics_json());
        println!("  (metrics written to {})", path.display());
    }
}
