//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run --release -p atm-bench --bin figures -- --all
//! cargo run --release -p atm-bench --bin figures -- --fig 4 --fig 8
//! cargo run --release -p atm-bench --bin figures -- --exp deadlines --quick
//! ```
//!
//! Tables print to stdout; JSON series land in `results/` (override with
//! `--out DIR`). `--quick` shrinks the sweep for smoke runs.

use atm_bench::ablations;
use atm_bench::experiments::{deadlines, determinism, throughput_normalized};
use atm_bench::figures::{fig4, fig5, fig6, fig7, fig8, fig9};
use atm_bench::series::FigureData;
use atm_bench::sweep::SweepConfig;
use std::path::PathBuf;

struct Options {
    figs: Vec<u32>,
    exps: Vec<String>,
    out: PathBuf,
    quick: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        figs: Vec::new(),
        exps: Vec::new(),
        out: PathBuf::from("results"),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    let mut any = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let v = args.next().expect("--fig needs a number (4..=9)");
                opts.figs.push(v.parse().expect("figure number"));
                any = true;
            }
            "--exp" => {
                opts.exps.push(args.next().expect("--exp needs a name"));
                any = true;
            }
            "--all" => {
                opts.figs = vec![4, 5, 6, 7, 8, 9];
                opts.exps =
                    vec![
                    "deadlines".into(),
                    "determinism".into(),
                    "ablations".into(),
                    "normalized".into(),
                ];
                any = true;
            }
            "--out" => opts.out = PathBuf::from(args.next().expect("--out needs a dir")),
            "--quick" => opts.quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--all] [--fig N]... [--exp deadlines|determinism]... \
                     [--quick] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !any {
        opts.figs = vec![4, 5, 6, 7, 8, 9];
        opts.exps = vec![
            "deadlines".into(),
            "determinism".into(),
            "ablations".into(),
            "normalized".into(),
        ];
    }
    opts
}

fn emit(fig: &FigureData, out: &PathBuf) {
    println!("{fig}");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = out.join(format!("{}.json", fig.id));
    std::fs::write(&path, fig.to_json()).expect("write JSON");
    println!("  (series written to {})\n", path.display());
}

fn main() {
    let opts = parse_args();
    let sweep = if opts.quick { SweepConfig::quick() } else { SweepConfig::standard() };
    println!(
        "sweep: n = {:?}, seed = {}, reps = {}\n",
        sweep.ns, sweep.seed, sweep.reps
    );

    for &f in &opts.figs {
        let fig = match f {
            4 => fig4(&sweep),
            5 => fig5(&sweep),
            6 => fig6(&sweep),
            7 => fig7(&sweep),
            8 => fig8(&sweep),
            9 => fig9(&sweep),
            other => {
                eprintln!("no figure {other} in the paper (4..=9)");
                continue;
            }
        };
        emit(&fig, &opts.out);
    }

    for exp in &opts.exps {
        match exp.as_str() {
            "deadlines" => {
                // The full functional simulation of a major cycle is the
                // cost driver; sweep a representative subset at full size
                // or everything when quick.
                let (cfg, subset): (SweepConfig, Option<&[&str]>) = if opts.quick {
                    (SweepConfig { ns: vec![500, 2_000], ..SweepConfig::quick() }, None)
                } else {
                    (
                        SweepConfig {
                            ns: vec![1_000, 2_000, 4_000, 8_000, 16_000],
                            ..SweepConfig::standard()
                        },
                        Some(&[
                            "Titan X (Pascal)",
                            "GeForce 9800 GT",
                            "STARAN AP",
                            "Intel Xeon 16-core",
                        ]),
                    )
                };
                let (rows, fig) = deadlines(&cfg, subset);
                emit(&fig, &opts.out);
                println!("{:<22} {:>8} {:>10} {:>10}", "platform", "n", "misses", "skips");
                for r in &rows {
                    for (i, &n) in r.n.iter().enumerate() {
                        println!(
                            "{:<22} {:>8} {:>10} {:>10}",
                            r.platform, n, r.misses[i], r.skips[i]
                        );
                    }
                }
                println!();
            }
            "determinism" => {
                let n = if opts.quick { 500 } else { 2_000 };
                let (rows, fig) = determinism(n, 2018, 5);
                emit(&fig, &opts.out);
                println!(
                    "{:<22} {:>10} {:>10}  task1 times (ms)",
                    "platform", "identical", "spread"
                );
                for r in &rows {
                    println!(
                        "{:<22} {:>10} {:>9.3}x  {:?}",
                        r.platform,
                        r.identical,
                        r.spread,
                        r.task1_ms.iter().map(|t| (t * 1000.0).round() / 1000.0).collect::<Vec<_>>()
                    );
                }
                println!();
            }
            "normalized" => {
                let fig = throughput_normalized(&sweep);
                emit(&fig, &opts.out);
            }
            "ablations" => {
                let n = if opts.quick { 400 } else { 2_000 };
                let list = ablations::all(n, 2018);
                println!("== ablations (modeled, n={n}) ==\n");
                println!(
                    "{:<18} {:>12} {:>14} {:>9}",
                    "ablation", "paper (ms)", "alternative", "speedup"
                );
                for a in &list {
                    println!(
                        "{:<18} {:>12.4} {:>14.4} {:>8.2}x",
                        a.id, a.paper_ms, a.alternative_ms, a.speedup()
                    );
                    for note in &a.notes {
                        println!("    {note}");
                    }
                }
                std::fs::create_dir_all(&opts.out).expect("create results dir");
                let path = opts.out.join("ablations.json");
                std::fs::write(&path, serde_json::to_string_pretty(&list).unwrap())
                    .expect("write JSON");
                println!("\n  (written to {})\n", path.display());
            }
            other => eprintln!(
                "unknown experiment '{other}' (deadlines | determinism | ablations | normalized)"
            ),
        }
    }
}
